//! The paper's Figure 2 running example: augmenting an *Applicants* table
//! (label: loan approval) from a small lake containing
//! `personal_information`, `credit_profile`, `property_value`, and
//! `loan_history` — where the relationships were produced by dataset
//! discovery and include a spurious connection
//! (`applicants.applicant_id → credit_profile.credit_score`).
//!
//! ```text
//! cargo run --release --example loan_approval
//! ```

use autofeat::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let n = 600usize;
    let mut rng = StdRng::seed_from_u64(2024);

    // Ground truth: approval depends on income and property value.
    let income: Vec<f64> = (0..n).map(|_| 20_000.0 + rng.random_range(0.0..80_000.0)).collect();
    let prop_value: Vec<f64> = (0..n).map(|_| 50_000.0 + rng.random_range(0.0..400_000.0)).collect();
    let approved: Vec<i64> = income
        .iter()
        .zip(&prop_value)
        .map(|(&inc, &pv)| i64::from(inc * 4.0 + pv * 0.8 > 260_000.0))
        .collect();

    let applicants = Table::new(
        "applicants",
        vec![
            ("applicant_id", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "application_date",
                Column::from_strs((0..n).map(|i| Some(format!("2023-{:02}-{:02}", i % 12 + 1, i % 28 + 1))).collect::<Vec<_>>(),
                ),
            ),
            ("loan_approval", Column::from_ints(approved.iter().copied().map(Some).collect::<Vec<_>>())),
        ],
    )
    .unwrap();

    let personal_information = Table::new(
        "personal_information",
        vec![
            ("applicant_id", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            ("income", Column::from_floats(income.iter().copied().map(Some).collect::<Vec<_>>())),
            (
                "marital_status",
                Column::from_strs(
                    (0..n).map(|i| Some(if i % 3 == 0 { "married" } else { "single" })).collect::<Vec<_>>(),
                ),
            ),
        ],
    )
    .unwrap();

    // credit_profile links applicants to properties. Its `credit_score`
    // column happens to overlap numerically with applicant ids — the
    // spurious connection of Figure 2.
    let credit_profile = Table::new(
        "credit_profile",
        vec![
            ("applicant_id", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "credit_score",
                Column::from_ints((0..n).map(|i| Some((i as i64 * 17 + 3) % n as i64)).collect::<Vec<_>>()),
            ),
            ("property_id", Column::from_ints((0..n as i64).map(|i| Some(70_000 + i)).collect::<Vec<_>>())),
        ],
    )
    .unwrap();

    // The transitive table of Figure 2: relevant features two hops away.
    let property_value = Table::new(
        "property_value",
        vec![
            ("property_id", Column::from_ints((0..n as i64).map(|i| Some(70_000 + i)).collect::<Vec<_>>())),
            ("valuation", Column::from_floats(prop_value.iter().copied().map(Some).collect::<Vec<_>>())),
            (
                "region",
                Column::from_strs((0..n).map(|i| Some(format!("r{}", i % 5))).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap();

    let loan_history = Table::new(
        "loan_history",
        vec![
            ("applicant_id", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "past_defaults",
                Column::from_ints((0..n).map(|i| Some(((i * 31) % 7) as i64 / 5)).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap();

    // Data-lake setting: no KFK metadata — run dataset discovery.
    let ctx = SearchContext::from_discovery(
        vec![applicants, personal_information, credit_profile, property_value, loan_history],
        &SchemaMatcher::paper_default(),
        "applicants",
        "loan_approval",
    )
    .expect("context builds");

    println!(
        "Discovered DRG: {} tables, {} join opportunities (multigraph)",
        ctx.drg().n_nodes(),
        ctx.drg().n_edges()
    );
    for e in ctx.drg().edges() {
        println!(
            "  {}.{} <-> {}.{}  (similarity {:.2})",
            ctx.drg().table_name(e.a),
            e.a_column,
            ctx.drg().table_name(e.b),
            e.b_column,
            e.weight
        );
    }

    let discovery = AutoFeat::paper().discover(&ctx).expect("discovery runs");
    println!(
        "\nEvaluated {} joins; pruned {} unjoinable, {} low-quality.",
        discovery.n_joins_evaluated, discovery.n_pruned_unjoinable, discovery.n_pruned_quality
    );
    println!("Top ranked paths:");
    for rp in discovery.top_k(4) {
        println!("  score {:6.3}  {}", rp.score, rp.path);
    }

    let outcome = train_top_k(
        &ctx,
        &discovery,
        &[ModelKind::LightGbm, ModelKind::RandomForest],
        &AutoFeatConfig::paper(),
    )
    .expect("training runs");
    let best = outcome.best_path.expect("found a path");
    println!("\nBest join tree: {}", best.path);
    println!("Selected features: {:?}", best.features);
    for (model, acc) in &outcome.result.accuracy_per_model {
        println!("  {:>12}: accuracy {:.3}", model.name(), acc);
    }
    assert!(
        best.features.iter().any(|f| f.contains("valuation"))
            || best.features.iter().any(|f| f.contains("income")),
        "a truly predictive feature should be selected"
    );
}
