//! Fail-soft discovery over a corrupted lake: generate a snowflake dataset,
//! serialize it to CSV, inject realistic export faults (truncated files,
//! ragged rows, dangling keys, NaN floats, duplicated headers), then run the
//! whole pipeline — lenient ingestion with quarantine, per-path error
//! isolation, NaN-safe ranking — and print the accounting at every layer.
//! Finishes with a request-lifecycle demo: a pathologically slow join is
//! armed and the run is cancelled from another thread, winding down into a
//! ranked partial result instead of erroring.
//!
//! ```text
//! cargo run --release --example fail_soft_lake
//! ```

use std::collections::HashMap;

use autofeat::core::{discovery_health_report, load_lake_dir};
use autofeat::data::csv::{write_csv_str, CsvReadOptions};
use autofeat::datagen::{self, FaultInjector, FaultKind};
use autofeat::prelude::*;

fn main() {
    // ---- 1. Generate a clean snowflake lake and serialize it. ----
    let gt = datagen::generator::generate(&datagen::GroundTruthConfig {
        n_rows: 400,
        ..Default::default()
    });
    let sf = datagen::splitter::split(&gt, &datagen::SnowflakeConfig::default());
    let mut texts: HashMap<String, String> = HashMap::new();
    texts.insert("base".into(), write_csv_str(&sf.base));
    for t in &sf.satellites {
        texts.insert(t.name().to_string(), write_csv_str(t));
    }

    // ---- 2. Corrupt it the way real exports break. ----
    let mut inj = FaultInjector::new(42);
    let corrupted: Vec<(String, String)> = vec![
        ("base".into(), texts["base"].clone()),
        ("s0".into(), texts["s0"].clone()),
        ("s1".into(), inj.inject("s1", &texts["s1"], FaultKind::DanglingKeys)),
        ("s2".into(), inj.inject("s2", &texts["s2"], FaultKind::NanFloats)),
        ("s3".into(), inj.inject("s3", &texts["s3"], FaultKind::TruncatedRows)),
        ("s4".into(), inj.inject("s4", &texts["s4"], FaultKind::RaggedRows)),
    ];
    println!("Injected faults:");
    for f in &inj.manifest {
        println!("  - {:<3} {:?}: {}", f.table, f.kind, f.detail);
    }

    let dir = std::env::temp_dir().join("autofeat_fail_soft_example");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (name, text) in &corrupted {
        std::fs::write(dir.join(format!("{name}.csv")), text).expect("write csv");
    }

    // ---- 3. Lenient ingestion: repair what can be repaired, quarantine ----
    //         what cannot, and account for every file either way.
    let report = load_lake_dir(&dir, &CsvReadOptions::lenient()).expect("lake dir readable");
    println!("\n{}", report.summary());

    // Contrast with strict mode, which refuses any structural damage.
    let strict = load_lake_dir(&dir, &CsvReadOptions::strict()).expect("lake dir readable");
    println!(
        "(strict mode would quarantine {} table(s) instead of {})",
        strict.quarantined.len(),
        report.quarantined.len()
    );

    // ---- 4. Discovery over the survivors, with a deadline. ----
    let kfk: Vec<(String, String, String, String)> = sf
        .kfk
        .iter()
        .map(|e| {
            (
                e.parent_table.clone(),
                e.parent_column.clone(),
                e.child_table.clone(),
                e.child_column.clone(),
            )
        })
        .collect();
    let ctx = SearchContext::from_kfk(report.tables.clone(), &kfk, "base", &sf.label)
        .expect("context builds");
    let config = AutoFeatConfig::paper().with_time_budget(std::time::Duration::from_secs(30));
    let result = AutoFeat::new(config.clone()).discover(&ctx).expect("discovery never aborts");

    println!("\n{}", discovery_health_report(&result));
    println!("\nTop paths over the surviving healthy subtree:");
    for r in result.ranked.iter().take(3) {
        println!("  {:>7.4}  {}  ({} features)", r.score, r.path, r.features.len());
    }

    // ---- 5. Train on what survived. ----
    let out = train_top_k(&ctx, &result, &[ModelKind::RandomForest], &config)
        .expect("training on surviving paths");
    let best = out.best_path.as_ref().map(|p| p.path.to_string()).unwrap_or_default();
    println!("\nTrained on best path `{best}`: accuracy {:.3}", out.result.mean_accuracy());

    // ---- 6. Request lifecycle: cancel a run mid-flight. ----
    //         Arm a pathological 10-second join and cancel from another
    //         thread 50ms in. Cancellation is anytime semantics, not an
    //         error: whatever was ranked before the cancel is returned, the
    //         truncation reason and cancel latency are accounted, and the
    //         same context runs again cleanly after a reset.
    datagen::RuntimeFault {
        table: "s0".into(),
        kind: datagen::RuntimeFaultKind::SlowJoinMs,
        value: 10_000,
    }
    .arm();
    let ctrl = std::sync::Arc::clone(ctx.control());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        ctrl.cancel();
    });
    let t0 = std::time::Instant::now();
    let partial = AutoFeat::new(config).discover(&ctx).expect("cancellation is not an error");
    canceller.join().expect("canceller thread");
    autofeat::data::faults::disarm("s0");
    println!(
        "\nCancelled mid-run after {:?}: {} path(s) still ranked, cancel latency {:?}",
        t0.elapsed(),
        partial.ranked.len(),
        partial.resilience.cancel_latency,
    );
    println!("\n{}", discovery_health_report(&partial));
    ctx.control().reset();

    std::fs::remove_dir_all(&dir).ok();
}
