//! Quickstart: discover features for a toy base table in four steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use autofeat::prelude::*;

fn main() {
    // ---- 1. A tiny lake: a weak base table plus two satellites. ----
    let n = 400usize;
    let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();

    let base = Table::new(
        "customers",
        vec![
            ("customer_id", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "age",
                Column::from_ints((0..n).map(|i| Some(20 + (i as i64 * 7) % 50)).collect::<Vec<_>>()),
            ),
            ("churned", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
        ],
    )
    .unwrap();

    // Directly joinable: usage stats (weak signal).
    let usage = Table::new(
        "usage",
        vec![
            ("customer_id", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            ("plan_id", Column::from_ints((0..n as i64).map(|i| Some(9000 + i)).collect::<Vec<_>>())),
            (
                "minutes",
                Column::from_floats(
                    labels
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| Some(l as f64 * 3.0 + ((i * 13) % 10) as f64))
                        .collect::<Vec<_>>(),
                ),
            ),
        ],
    )
    .unwrap();

    // Two hops away: plan details (strong signal) — only reachable
    // transitively through `usage`.
    let plans = Table::new(
        "plans",
        vec![
            ("plan_id", Column::from_ints((0..n as i64).map(|i| Some(9000 + i)).collect::<Vec<_>>())),
            (
                "support_tickets",
                Column::from_floats(labels.iter().map(|&l| Some(l as f64 * 10.0)).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap();

    // ---- 2. Benchmark setting: known KFK edges. ----
    let ctx = SearchContext::from_kfk(
        vec![base, usage, plans],
        &[
            ("customers".into(), "customer_id".into(), "usage".into(), "customer_id".into()),
            ("usage".into(), "plan_id".into(), "plans".into(), "plan_id".into()),
        ],
        "customers",
        "churned",
    )
    .expect("context builds");

    // ---- 3. Run AutoFeat (τ=0.65, κ=15, Spearman + MRMR). ----
    let engine = AutoFeat::paper();
    let discovery = engine.discover(&ctx).expect("discovery runs");
    println!("Ranked join paths ({} total):", discovery.ranked.len());
    for rp in &discovery.ranked {
        println!("  score {:6.3}  {}  features: {:?}", rp.score, rp.path, rp.features);
    }

    // ---- 4. Train the top-k paths, keep the best one. ----
    let outcome = train_top_k(
        &ctx,
        &discovery,
        &ModelKind::tree_models(),
        &AutoFeatConfig::paper(),
    )
    .expect("training runs");
    let best = outcome.best_path.expect("a path was found");
    println!("\nBest path: {}", best.path);
    println!("Selected features: {:?}", best.features);
    for (model, acc) in &outcome.result.accuracy_per_model {
        println!("  {:>12}: accuracy {:.3}", model.name(), acc);
    }
    println!(
        "Feature-discovery time: {:?}, total: {:?}",
        outcome.result.feature_selection_time, outcome.result.total_time
    );
    assert!(
        best.features.iter().any(|f| f == "plans.support_tickets"),
        "the transitive feature should be discovered"
    );
    println!("\nThe two-hop feature `plans.support_tickets` was discovered transitively.");
}
