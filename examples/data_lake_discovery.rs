//! Data-lake discovery end-to-end on a generated dataset from the paper's
//! evaluation registry: generate `credit`, strip its KFK metadata, plant
//! decoys, rediscover the joinability multigraph, and run AutoFeat.
//!
//! ```text
//! cargo run --release --example data_lake_discovery
//! ```

use autofeat::prelude::*;
use autofeat::{context_from_lake, context_from_snowflake, datagen};

fn main() {
    let spec = datagen::registry::dataset("credit").expect("credit is registered");
    println!(
        "Dataset `{}`: paper shape = {} rows / {} joinable tables / {} features",
        spec.name, spec.paper_rows, spec.paper_joinable_tables, spec.paper_features
    );

    // ---- Benchmark setting (known KFK snowflake). ----
    let sf = spec.build_snowflake();
    println!(
        "\nBenchmark setting: {} satellites, max join-tree depth {}",
        sf.satellites.len(),
        sf.max_depth()
    );
    let ctx_kfk = context_from_snowflake(&sf).expect("context builds");
    let d_kfk = AutoFeat::paper().discover(&ctx_kfk).expect("discovery");
    println!(
        "  KFK DRG: {} edges; {} joins evaluated; top path: {}",
        ctx_kfk.drg().n_edges(),
        d_kfk.n_joins_evaluated,
        d_kfk.ranked.first().map(|r| r.path.to_string()).unwrap_or_default()
    );

    // ---- Data-lake setting (discovered multigraph with decoys). ----
    let lake = spec.build_lake();
    let matcher = SchemaMatcher::paper_default();
    let ctx_lake = context_from_lake(&lake, &matcher).expect("context builds");
    println!(
        "\nData-lake setting: discovery found {} join opportunities over {} tables",
        ctx_lake.drg().n_edges(),
        ctx_lake.drg().n_nodes()
    );
    let d_lake = AutoFeat::paper().discover(&ctx_lake).expect("discovery");
    println!(
        "  {} joins evaluated; pruned {} unjoinable + {} low-quality; truncated: {}",
        d_lake.n_joins_evaluated,
        d_lake.n_pruned_unjoinable,
        d_lake.n_pruned_quality,
        d_lake.truncated
    );

    // ---- Train and compare the two settings. ----
    let models = [ModelKind::LightGbm, ModelKind::RandomForest];
    let cfg = AutoFeatConfig::paper();
    let out_kfk = train_top_k(&ctx_kfk, &d_kfk, &models, &cfg).expect("train kfk");
    let out_lake = train_top_k(&ctx_lake, &d_lake, &models, &cfg).expect("train lake");
    println!("\n{:<18} {:>10} {:>10}", "", "benchmark", "data lake");
    println!(
        "{:<18} {:>10.3} {:>10.3}",
        "mean accuracy",
        out_kfk.result.mean_accuracy(),
        out_lake.result.mean_accuracy()
    );
    println!(
        "{:<18} {:>10} {:>10}",
        "tables joined", out_kfk.result.n_tables_joined, out_lake.result.n_tables_joined
    );
    println!(
        "{:<18} {:>9.2}s {:>9.2}s",
        "discovery time",
        d_kfk.elapsed.as_secs_f64(),
        d_lake.elapsed.as_secs_f64()
    );
    println!(
        "\nDeep-planted features found (benchmark): {:?}",
        out_kfk.best_path.as_ref().map(|p| &p.features)
    );
}
