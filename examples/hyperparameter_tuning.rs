//! Dynamic hyper-parameter tuning and beam pruning — the paper's
//! future-work features, implemented: sweep τ/κ with a cheap validation
//! model, then run discovery with the tuned configuration and an
//! aggressive frontier beam on the data-lake setting.
//!
//! ```text
//! cargo run --release --example hyperparameter_tuning
//! ```

use autofeat::core::tuning::{tune, TuningGrid};
use autofeat::prelude::*;
use autofeat::{context_from_lake, datagen};

fn main() {
    let spec = datagen::registry::dataset("credit").expect("registered");
    let lake = spec.build_lake();
    let ctx = context_from_lake(&lake, &SchemaMatcher::paper_default()).expect("context");

    // ---- 1. Tune τ and κ on the lake. ----
    let grid = TuningGrid::default();
    let tuned = tune(&ctx, &AutoFeatConfig::paper(), &grid).expect("tuning runs");
    println!("Tuning trace (τ, κ → accuracy, fs seconds):");
    for t in &tuned.trials {
        println!("  τ={:<5} κ={:<3} → {:.3} acc, {:.4}s", t.tau, t.kappa, t.accuracy, t.fs_secs);
    }
    println!(
        "\nChosen: τ = {}, κ = {} (fastest within {:.0}% of the best accuracy)",
        tuned.config.tau,
        tuned.config.kappa,
        grid.tolerance * 100.0
    );

    // ---- 2. Compare exhaustive BFS vs. a beam of 4 with the tuned config. ----
    for beam in [None, Some(4usize)] {
        let cfg = AutoFeatConfig { beam_width: beam, ..tuned.config.clone() };
        let discovery = AutoFeat::new(cfg.clone()).discover(&ctx).expect("discovery");
        let out = train_top_k(&ctx, &discovery, &[ModelKind::LightGbm], &cfg).expect("train");
        println!(
            "beam {:>4}: {:>4} joins evaluated, fs {:.4}s, accuracy {:.3}, {} tables joined",
            beam.map(|b| b.to_string()).unwrap_or_else(|| "off".into()),
            discovery.n_joins_evaluated,
            discovery.elapsed.as_secs_f64(),
            out.result.mean_accuracy(),
            out.result.n_tables_joined,
        );
    }
}
