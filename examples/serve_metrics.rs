//! Operator's view of a resident service: a [`DiscoveryService`] under
//! synthetic concurrent load with the TCP stats listener enabled, scraped
//! live the way a monitoring agent would.
//!
//! ```text
//! cargo run --release --example serve_metrics
//! ```
//!
//! Demonstrates the whole telemetry surface (DESIGN.md §3k): the always-on
//! metrics registry (latency quantiles, outcome counters, cache gauges),
//! the `GET /metrics` Prometheus-style exposition, `/healthz`, split
//! [`ServiceStats`], and the structured request log — dumped to stderr at
//! shutdown because this example sets `AUTOFEAT_REQUEST_LOG=-`.

use std::io::{Read, Write};
use std::thread;
use std::time::Duration;

use autofeat::prelude::*;

/// base(k, target) plus a few satellites — small enough that a request
/// takes milliseconds, so the example finishes in a couple of seconds.
fn synthetic_lake(n: usize, n_sat: usize) -> SearchContext {
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "target",
                Column::from_ints((0..n as i64).map(|i| Some((i * 7) % 2)).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap();
    let mut tables = vec![base];
    let mut kfk: Vec<(String, String, String, String)> = Vec::new();
    for j in 0..n_sat {
        let name = format!("sat{j}");
        tables.push(
            Table::new(
                name.clone(),
                vec![
                    ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                    (
                        "f",
                        Column::from_floats(
                            (0..n).map(|i| Some(((i * (3 + j)) % 17) as f64)).collect::<Vec<_>>(),
                        ),
                    ),
                ],
            )
            .unwrap(),
        );
        kfk.push(("base".into(), "k".into(), name, "k".into()));
    }
    SearchContext::from_kfk(tables, &kfk, "base", "target").unwrap()
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to stats listener");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: example\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response.split_once("\r\n\r\n").map(|(_, body)| body.to_string()).unwrap_or(response)
}

fn main() {
    // Dump the structured request log to stderr when the service shuts
    // down (an operator would usually point this at a file path).
    std::env::set_var("AUTOFEAT_REQUEST_LOG", "-");

    // ---- 1. A resident service with its stats listener. ----
    let service =
        DiscoveryService::new(synthetic_lake(300, 6), AutoFeatConfig::default().with_cache(true));
    let mut listener = service.serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr();
    println!("stats listener on http://{addr}  (GET /metrics, /metrics.json, /healthz)");

    // ---- 2. Synthetic load: concurrent clients with mixed outcomes. ----
    thread::scope(|s| {
        for c in 0..3 {
            let service = &service;
            s.spawn(move || {
                for i in 0..4 {
                    let req = if (c + i) % 4 == 3 {
                        // Every fourth request is deadline-starved, so the
                        // truncated outcome counter moves too.
                        DiscoveryRequest::new().with_time_budget(Duration::ZERO)
                    } else {
                        DiscoveryRequest::new()
                    };
                    service.submit(&req).expect("request serves");
                }
            });
        }
        // ---- 3. Scrape live, mid-load, like a monitoring agent. ----
        thread::sleep(Duration::from_millis(30));
        println!("\n--- live /healthz ---\n{}", http_get(addr, "/healthz").trim_end());
    });

    // ---- 4. The full exposition, once the load has drained. ----
    let scrape = http_get(addr, "/metrics");
    println!("\n--- /metrics (filtered to the headline series) ---");
    for line in scrape.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("autofeat_request")
                || l.starts_with("autofeat_cache_hit")
                || l.starts_with("autofeat_cache_resident")
                || l.starts_with("autofeat_in_flight")
                || l.starts_with("autofeat_peak_in_flight"))
    }) {
        println!("  {line}");
    }

    let stats = service.stats();
    println!(
        "\nServiceStats: served={} (ok={}, truncated={}, cancelled={}, error={}), \
         rejected={}, peak_in_flight={}",
        stats.requests_served,
        stats.requests_ok,
        stats.requests_truncated,
        stats.requests_cancelled,
        stats.requests_error,
        stats.requests_rejected,
        stats.peak_in_flight,
    );
    let log = service.request_log();
    println!("request log holds {} records; latest: {}", log.len(), log.last().unwrap().render_line());

    // ---- 5. Shutdown: healthz flips to 503, the request log dumps. ----
    service.shutdown();
    println!("\n--- /healthz after shutdown ---\n{}", http_get(addr, "/healthz").trim_end());
    listener.stop();
}
