//! A miniature of the paper's Figure 4: run AutoFeat against BASE, ARDA,
//! MAB, JoinAll, and JoinAll+F on one generated dataset and print the
//! comparison table (accuracy, feature-selection time, total time, tables
//! joined).
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use autofeat::prelude::*;
use autofeat::{context_from_snowflake, datagen};

fn print_row(r: &MethodResult) {
    println!(
        "{:<10} {:>9.3} {:>12.2}s {:>10.2}s {:>8} {:>9}",
        r.method,
        r.mean_accuracy(),
        r.feature_selection_time.as_secs_f64(),
        r.total_time.as_secs_f64(),
        r.n_tables_joined,
        r.n_features,
    );
}

fn main() {
    let spec = datagen::registry::dataset("credit").expect("registered");
    let sf = spec.build_snowflake();
    let ctx = context_from_snowflake(&sf).expect("context builds");
    let models = [ModelKind::LightGbm, ModelKind::RandomForest];
    let seed = 7;

    println!(
        "{:<10} {:>9} {:>13} {:>11} {:>8} {:>9}",
        "method", "accuracy", "fs time", "total", "#tables", "#features"
    );

    // BASE — the floor.
    print_row(&run_base(&ctx, &models, seed).expect("base runs"));

    // AutoFeat.
    let cfg = AutoFeatConfig::paper().with_seed(seed);
    let engine = AutoFeat::new(cfg.clone());
    let discovery = engine.discover(&ctx).expect("discovery runs");
    let out = train_top_k(&ctx, &discovery, &models, &cfg).expect("training runs");
    print_row(&out.result);

    // ARDA (single-hop + RIFS).
    print_row(&run_arda(&ctx, &models, &ArdaConfig::default()).expect("arda runs"));

    // MAB (UCB over same-name join candidates).
    print_row(&run_mab(&ctx, &models, &MabConfig::default()).expect("mab runs"));

    // JoinAll / JoinAll+F (with the Eq. 3 feasibility guard).
    match run_join_all(&ctx, &models, &JoinAllConfig::default()).expect("join-all runs") {
        Some(r) => print_row(&r),
        None => println!("{:<10} (skipped: ordering count exceeds budget)", "JoinAll"),
    }
    match run_join_all(
        &ctx,
        &models,
        &JoinAllConfig { filter: true, ..Default::default() },
    )
    .expect("join-all+f runs")
    {
        Some(r) => print_row(&r),
        None => println!("{:<10} (skipped)", "JoinAll+F"),
    }

    println!(
        "\nAutoFeat best path: {}",
        out.best_path.map(|p| p.path.to_string()).unwrap_or_else(|| "(none)".into())
    );
}
