//! The tentpole guarantee of the dictionary-encoded key domain: attaching
//! (or dropping) per-column [`KeyDict`]s changes **how** join indexes are
//! built — counting-sort over dense `u32` codes vs. hashing full keys —
//! but never **what** discovery produces. Results must be bit-identical
//! between the coded and hashed paths, across physical row permutations,
//! worker-thread counts, and cached vs. uncached execution; and code
//! assignment itself must be a pure function of column *content*, not
//! layout.

use autofeat::prelude::*;

mod common;
use common::{assert_bit_identical, dictless_twin, lake_ctx_permuted};

fn discover(ctx: &SearchContext, seed: u64, threads: usize, cache: bool) -> DiscoveryResult {
    AutoFeat::new(
        AutoFeatConfig::default()
            .with_seed(seed)
            .with_threads(threads)
            .with_cache(cache),
    )
    .discover(ctx)
    .unwrap()
}

#[test]
fn dict_codes_are_permutation_stable() {
    // The same multiset of keys in three physical orders must get the same
    // value → code mapping: codes are assigned by content (stable hash with
    // a total-order tiebreak), not by first appearance.
    let vals: Vec<Option<i64>> = (0..120).map(|i| Some(i % 37)).collect();
    let strides = [1usize, 7, 113];
    let dicts: Vec<KeyDict> = strides
        .iter()
        .map(|&s| {
            let permuted: Vec<Option<i64>> =
                (0..vals.len()).map(|i| vals[(i * s) % vals.len()]).collect();
            let t = Table::new("t", vec![("k", Column::from_ints(permuted))])
                .unwrap()
                .with_key_dicts();
            t.key_dict_at(0).unwrap().as_ref().clone()
        })
        .collect();
    for d in &dicts[1..] {
        assert_eq!(d.len(), dicts[0].len(), "distinct-key count must match");
        for code in 0..dicts[0].len() as u32 {
            assert_eq!(
                d.key_at(code),
                dicts[0].key_at(code),
                "code {code} must map to the same key in every layout"
            );
        }
    }
}

#[test]
fn ingest_attaches_metadata_and_twin_strips_it() {
    let ctx = lake_ctx_permuted(120, 1);
    for name in ctx.table_names() {
        let t = ctx.table(name).unwrap();
        assert!(t.has_key_meta(), "{name}: from_kfk must attach key metadata");
        assert!(t.key_meta_bytes() > 0, "{name}: metadata must be accounted");
    }
    let twin = dictless_twin(&ctx);
    for name in twin.table_names() {
        let t = twin.table(name).unwrap();
        assert!(!t.has_key_meta(), "{name}: twin must have no key metadata");
        assert_eq!(t.key_meta_bytes(), 0, "{name}: stripped meta costs nothing");
    }
}

#[test]
fn coded_and_hashed_discovery_are_bit_identical() {
    // Strides are odd ⇒ coprime to the satellite row counts: distinct
    // physical layouts of the same logical lake. The hashed single-thread
    // uncached run is the reference; every coded configuration must match.
    for stride in [1usize, 7, 113] {
        let ctx = lake_ctx_permuted(120, stride);
        let hashed = dictless_twin(&ctx);
        for seed in [7u64, 42] {
            let reference = discover(&hashed, seed, 1, false);
            assert!(
                !reference.ranked.is_empty(),
                "stride {stride}, seed {seed}: search must rank paths for the \
                 comparison to mean anything"
            );
            for threads in [1usize, 4] {
                for cache in [false, true] {
                    let coded = discover(&ctx, seed, threads, cache);
                    assert_bit_identical(
                        &reference,
                        &coded,
                        &format!(
                            "stride {stride}, seed {seed}, {threads} thread(s), \
                             cache={cache}, coded vs hashed"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn coded_results_are_layout_independent() {
    // Same logical lake, different physical row orders, dicts attached:
    // the coded path must be as layout-blind as the hashed one.
    let reference = discover(&lake_ctx_permuted(120, 1), 42, 2, true);
    for stride in [7usize, 113] {
        let permuted = discover(&lake_ctx_permuted(120, stride), 42, 2, true);
        assert_bit_identical(&reference, &permuted, &format!("stride {stride}, coded"));
    }
}
