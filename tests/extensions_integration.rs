//! Integration tests for the extension features: beam pruning, dynamic
//! tuning, LSH-accelerated discovery, the streaming selector, the join-tree
//! trainer, and the relational ops working together.

use autofeat::core::tuning::{tune, TuningGrid};
use autofeat::data::ops::{filter, group_by, sort_by, Aggregate, Order};
use autofeat::graph::Drg;
use autofeat::metrics::streaming::StreamingSelector;
use autofeat::prelude::*;
use autofeat::{context_from_lake, context_from_snowflake, datagen};

fn credit_lake() -> datagen::lake::Lake {
    datagen::registry::dataset("credit").unwrap().build_lake()
}

#[test]
fn beam_pruning_reduces_joins_without_losing_the_lake() {
    let ctx = context_from_lake(&credit_lake(), &SchemaMatcher::paper_default()).unwrap();
    let wide = AutoFeat::paper().discover(&ctx).unwrap();
    let cfg = AutoFeatConfig { beam_width: Some(3), ..AutoFeatConfig::paper() };
    let narrow = AutoFeat::new(cfg.clone()).discover(&ctx).unwrap();
    assert!(narrow.n_joins_evaluated <= wide.n_joins_evaluated);
    // The beam must still find *some* useful features.
    assert!(!narrow.selected_features.is_empty());
    let out = train_top_k(&ctx, &narrow, &[ModelKind::LightGbm], &cfg).unwrap();
    assert!(out.result.mean_accuracy() > 0.6);
}

#[test]
fn tuning_picks_a_configuration_from_the_grid() {
    let spec = datagen::registry::dataset("credit").unwrap();
    let ctx = context_from_snowflake(&spec.build_snowflake()).unwrap();
    let grid = TuningGrid {
        taus: vec![0.5, 0.65],
        kappas: vec![5, 15],
        ..Default::default()
    };
    let out = tune(&ctx, &AutoFeatConfig::paper(), &grid).unwrap();
    assert_eq!(out.trials.len(), 4);
    assert!(grid.taus.contains(&out.config.tau));
    // The tuned config must still discover paths.
    let d = AutoFeat::new(out.config).discover(&ctx).unwrap();
    assert!(!d.ranked.is_empty());
}

#[test]
fn lsh_discovery_agrees_with_full_matching_on_key_edges() {
    let lake = credit_lake();
    let refs: Vec<&Table> = lake.tables.iter().collect();
    let matcher = SchemaMatcher::paper_default();
    let full = Drg::from_discovery(&refs, &matcher);
    let lsh = Drg::from_discovery_lsh(&refs, &matcher);
    // Every KFK-style (same-name, full-overlap) edge found by the full
    // matcher must also be found via LSH.
    let key_edges = |g: &Drg| -> Vec<(String, String)> {
        g.edges()
            .iter()
            .filter(|e| e.a_column == e.b_column && e.weight > 0.9)
            .map(|e| {
                let mut pair = (
                    format!("{}.{}", g.table_name(e.a), e.a_column),
                    format!("{}.{}", g.table_name(e.b), e.b_column),
                );
                if pair.0 > pair.1 {
                    std::mem::swap(&mut pair.0, &mut pair.1);
                }
                pair
            })
            .collect()
    };
    let full_keys = key_edges(&full);
    let lsh_keys = key_edges(&lsh);
    for k in &full_keys {
        assert!(lsh_keys.contains(k), "LSH missed key edge {k:?}");
    }
}

#[test]
fn streaming_selector_matches_pipeline_semantics_end_to_end() {
    // Feed a base feature, then two batches; verify R_sel growth mirrors
    // what AutoFeat's inline pipeline would do.
    let n = 300;
    let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
    let sig: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
    let noise: Vec<f64> = (0..n).map(|i| ((i * 17) % 7) as f64).collect();
    // CMIM's max-based penalty rejects exact duplicates regardless of how
    // many unrelated features sit in R_sel (MRMR's |S|-average dilutes it).
    let mut sel = StreamingSelector::new(
        labels,
        Some(RelevanceMethod::Spearman),
        Some(RedundancyMethod::Cmim),
        15,
    );
    sel.seed("base_noise", &noise);
    let first = sel.offer(&[("t1.sig".into(), sig.clone())]);
    assert_eq!(first.selected.len(), 1);
    let second = sel.offer(&[("t2.sig_copy".into(), sig)]);
    assert!(second.selected.is_empty(), "copy of selected feature rejected");
    assert_eq!(sel.selected_names(), vec!["base_noise", "t1.sig"]);
}

#[test]
fn relational_ops_compose_with_the_lake() {
    let lake = credit_lake();
    let base = lake.base();
    // Sort by the label, filter one class, group by it.
    let sorted = sort_by(base, "target", Order::Descending).unwrap();
    assert_eq!(sorted.n_rows(), base.n_rows());
    let positives = filter(base, "target", |v| v.as_f64() == Some(1.0)).unwrap();
    assert!(positives.n_rows() > 0);
    assert!(positives.n_rows() < base.n_rows());
    let grouped = group_by(base, "target", &[("target", Aggregate::Count)]).unwrap();
    assert_eq!(grouped.n_rows(), 2);
    let total: f64 = (0..2)
        .map(|i| grouped.value("target_count", i).unwrap().as_f64().unwrap())
        .sum();
    assert_eq!(total as usize, base.n_rows());
}

#[test]
fn dot_export_of_a_discovered_lake_renders() {
    let ctx = context_from_lake(&credit_lake(), &SchemaMatcher::paper_default()).unwrap();
    let dot = autofeat::graph::to_dot(ctx.drg());
    assert!(dot.contains("graph drg {"));
    assert!(dot.contains("base"));
    // Discovered edges are dashed.
    assert!(dot.contains("style=dashed"));
}

#[test]
fn cross_validation_on_an_augmented_table() {
    let spec = datagen::registry::dataset("credit").unwrap();
    let ctx = context_from_snowflake(&spec.build_snowflake()).unwrap();
    let discovery = AutoFeat::paper().discover(&ctx).unwrap();
    let best = &discovery.ranked[0];
    let table =
        autofeat::core::materialize_path(&ctx, ctx.base_table(), &best.path, 0).unwrap();
    let features: Vec<&str> = best.features.iter().map(String::as_str).collect();
    let m = autofeat::data::encode::to_matrix(&table, &features, "target").unwrap();
    let accs =
        autofeat::ml::cross_validate(&m, 4, || ModelKind::RandomForest.build(0)).unwrap();
    assert_eq!(accs.len(), 4);
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    assert!(mean > 0.6, "CV mean on augmented features = {mean}");
}
