//! End-to-end acceptance tests for structured run tracing: tracing never
//! perturbs results, counter totals are invariant across worker thread
//! counts, trace counters agree with the health report, phase self-times
//! telescope to the run's wall clock, and the JSON layout matches the
//! checked-in `trace.schema.json`.

mod common;

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use autofeat::prelude::*;
use common::{assert_bit_identical, lake_ctx};

/// Tracing resolution reads process-global environment variables
/// (`AUTOFEAT_TRACE`, `AUTOFEAT_THREADS`), so every test in this binary
/// that runs discovery serializes on this lock — otherwise an env-mutating
/// test could silently turn tracing on for a concurrently running
/// "untraced" run.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn discover(threads: usize, traced: bool) -> DiscoveryResult {
    // Fresh context per run: the lake-wide join-index cache is per-context,
    // so a fresh one makes cache hit/miss counters deterministic.
    let ctx = lake_ctx(60);
    AutoFeat::new(
        AutoFeatConfig::paper()
            .with_seed(42)
            .with_threads(threads)
            .with_trace(traced),
    )
    .discover(&ctx)
    .expect("discovery runs")
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("autofeat_trace_{}_{tag}.json", std::process::id()))
}

#[test]
fn traced_and_untraced_runs_are_bit_identical() {
    let _g = lock();
    let untraced = discover(2, false);
    let traced = discover(2, true);
    assert!(untraced.trace.is_none(), "tracing must be opt-in");
    assert!(traced.trace.is_some(), "with_trace(true) attaches a RunTrace");
    assert_bit_identical(&untraced, &traced, "traced vs untraced");
}

#[test]
fn counter_totals_invariant_across_thread_counts() {
    let _g = lock();
    let r1 = discover(1, true);
    let r4 = discover(4, true);
    assert_eq!(r1.threads_used, 1);
    assert_eq!(r4.threads_used, 4);
    assert_bit_identical(&r1, &r4, "1 vs 4 worker threads");
    let (t1, t4) = (r1.trace.unwrap(), r4.trace.unwrap());
    assert_eq!(
        t1.counters, t4.counters,
        "every counter total must be thread-count invariant"
    );
    assert_eq!(
        t1.events, t4.events,
        "events come from sequential sections only, so the log is identical"
    );
}

#[test]
fn trace_counters_match_result_and_health_report() {
    let _g = lock();
    let r = discover(2, true);
    let trace = r.trace.as_ref().expect("traced run");
    let c = |name: &str| trace.counter(name).unwrap_or(0) as usize;

    assert_eq!(c("discover.joins_evaluated"), r.n_joins_evaluated);
    assert_eq!(c("discover.pruned_unjoinable"), r.n_pruned_unjoinable);
    assert_eq!(c("discover.pruned_quality"), r.n_pruned_quality);
    assert_eq!(c("discover.pruned_similarity"), r.n_pruned_similarity);
    assert_eq!(c("discover.pruned_budget"), r.n_pruned_budget);
    assert_eq!(c("discover.paths_ranked"), r.ranked.len());
    assert_eq!(c("discover.features_selected"), r.selected_features.len());
    assert_eq!(c("discover.hop_failures"), r.failures.len());
    assert!(c("discover.joins_evaluated") > 0, "fixture evaluates joins");

    // Cache counters equal the result's CacheStats (fresh context: the
    // delta the result carries is the cache's lifetime totals).
    let cache = r.cache.as_ref().expect("cache enabled by default");
    assert_eq!(trace.counter("cache.hits").unwrap_or(0), cache.hits);
    assert_eq!(trace.counter("cache.misses").unwrap_or(0), cache.misses);
    // Per-entry build-time histogram: one observation per cache miss.
    let (_, builds) = trace
        .dists
        .iter()
        .find(|(n, _)| n == "cache.index_build_secs")
        .expect("index build-time distribution recorded");
    assert_eq!(builds.count, cache.misses);

    // The health report prints the same numbers it always did — the trace
    // agrees with it by construction (same source variables).
    let report = discovery_health_report(&r);
    assert!(
        report.contains(&format!("{} join(s) evaluated", c("discover.joins_evaluated"))),
        "{report}"
    );
    assert!(
        report.contains(&format!(
            "join-index cache: {} hit(s), {} miss(es)",
            cache.hits, cache.misses
        )),
        "{report}"
    );
    assert!(report.contains("phase timings:"), "{report}");
}

#[test]
fn governance_trace_counters_match_cache_stats() {
    let _g = lock();
    let ctx = lake_ctx(60);
    let budgeted = |budget: u64| {
        AutoFeat::new(
            AutoFeatConfig::paper()
                .with_seed(42)
                .with_threads(2)
                .with_trace(true)
                .with_cache_budget_bytes(budget),
        )
        .discover(&ctx)
        .expect("discovery runs")
    };
    // Determine the working set, then re-run budgeted below it. The first
    // run is unbounded (budget far above any residency this lake needs).
    let full = budgeted(u64::MAX);
    let full_stats = full.cache.as_ref().expect("cache stats");
    let trace = full.trace.as_ref().expect("traced");
    // Fresh cache, unbounded: peak growth over the run IS the final peak.
    assert_eq!(
        trace.counter("cache.peak_resident_bytes").unwrap_or(0),
        full_stats.peak_resident_bytes,
        "fresh-cache run: peak counter equals the absolute peak"
    );
    assert_eq!(trace.counter("cache.evictions").unwrap_or(0), 0);
    assert_eq!(trace.counter("cache.admission_rejected").unwrap_or(0), 0);

    // Shrinking the budget on the populated cache: the eviction burst and
    // every admission denial must appear in both the trace counters and
    // the run's CacheStats delta, with identical totals.
    let r = budgeted(full_stats.resident_bytes / 2);
    let stats = r.cache.as_ref().expect("cache stats");
    let trace = r.trace.as_ref().expect("traced");
    assert!(stats.evictions > 0, "budget shrink must evict");
    assert!(stats.rejections > 0, "sub-working-set budget must deny");
    assert_eq!(trace.counter("cache.evictions").unwrap_or(0), stats.evictions);
    assert_eq!(
        trace.counter("cache.evicted_bytes").unwrap_or(0),
        stats.evicted_bytes
    );
    assert_eq!(
        trace.counter("cache.admission_rejected").unwrap_or(0),
        stats.rejections
    );
    // Build-per-miss contract survives governance: denied entries rebuild,
    // and each rebuild is one miss and one build-time observation.
    let (_, builds) = trace
        .dists
        .iter()
        .find(|(n, _)| n == "cache.index_build_secs")
        .expect("index build-time distribution recorded");
    assert_eq!(builds.count, stats.misses);
    // The health report surfaces the same governance numbers.
    let report = discovery_health_report(&r);
    assert!(
        report.contains(&format!(
            "{} eviction(s) ({} bytes), {} admission rejection(s)",
            stats.evictions, stats.evicted_bytes, stats.rejections
        )),
        "{report}"
    );
}

#[test]
fn phase_self_times_telescope_to_elapsed() {
    let _g = lock();
    let r = discover(2, true);
    let trace = r.trace.as_ref().expect("traced run");
    let root = trace.phase("discover").expect("root discover phase");
    assert_eq!(root.count, 1);
    let sum = trace.self_time_total();
    // Acceptance bound: self-times sum to within 10% of the measured
    // elapsed time (plus a small absolute slack for sub-millisecond runs,
    // where 10% of the total is below timer granularity).
    let diff = r.elapsed.abs_diff(sum);
    let bound = std::cmp::max(r.elapsed / 10, Duration::from_millis(2));
    assert!(
        diff <= bound,
        "self-time sum {sum:?} vs elapsed {:?} (diff {diff:?} > bound {bound:?})",
        r.elapsed
    );
}

#[test]
fn trace_path_writes_json_matching_checked_in_schema() {
    let _g = lock();
    let path = tmp_path("config");
    let _ = std::fs::remove_file(&path);
    let ctx = lake_ctx(60);
    let r = AutoFeat::new(
        AutoFeatConfig::paper()
            .with_seed(42)
            .with_threads(2)
            .with_trace_path(&path),
    )
    .discover(&ctx)
    .expect("discovery runs");
    assert!(r.trace.is_some(), "trace_path implies tracing");

    let json = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    assert!(json.contains(&format!("\"schema_version\": {}", autofeat::obs::TRACE_SCHEMA_VERSION)));

    // Schema-stability check: every top-level property the checked-in
    // schema declares must be present in the emitted JSON, and the schema
    // must not have drifted to declare fields the emitter doesn't produce.
    let schema = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("trace.schema.json"),
    )
    .expect("trace.schema.json at the repository root");
    for field in [
        "schema_version",
        "generator",
        "wall_secs",
        "phases",
        "counters",
        "distributions",
        "events",
        "events_dropped",
    ] {
        let quoted = format!("\"{field}\"");
        assert!(json.contains(&quoted), "emitted JSON missing {quoted}");
        assert!(schema.contains(&quoted), "trace.schema.json missing {quoted}");
    }
    // Phase-object layout is part of the stable schema too.
    for field in ["name", "path", "count", "wall_secs", "cpu_secs", "self_secs", "children"] {
        assert!(
            schema.contains(&format!("\"{field}\"")),
            "trace.schema.json missing phase field \"{field}\""
        );
    }
    assert!(json.contains("\"path\": \"discover\""), "root phase serialized");
}

#[test]
fn env_var_enables_tracing_across_thread_counts() {
    let _g = lock();
    let path = tmp_path("env");
    let _ = std::fs::remove_file(&path);
    std::env::set_var("AUTOFEAT_TRACE", &path);

    // Thread counts are explicit here: AUTOFEAT_THREADS resolves once per
    // process (OnceLock), so mid-process set_var cannot steer it — the CI
    // resilience job covers the env path by running whole suites under
    // AUTOFEAT_THREADS=1 and =4.
    let r1 = discover(1, false); // trace from env
    let r4 = discover(4, false);

    std::env::remove_var("AUTOFEAT_TRACE");
    let written = std::fs::metadata(&path).is_ok();
    let _ = std::fs::remove_file(&path);

    assert!(written, "AUTOFEAT_TRACE must produce a trace file");
    assert_eq!(r1.threads_used, 1);
    assert_eq!(r4.threads_used, 4);
    assert!(r1.trace.is_some() && r4.trace.is_some(), "env var enables tracing");
    assert_bit_identical(&r1, &r4, "env-traced 1 vs 4 threads");
    assert_eq!(
        r1.trace.unwrap().counters,
        r4.trace.unwrap().counters,
        "env-configured runs keep counter invariance"
    );
}
