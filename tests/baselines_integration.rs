//! Integration: every baseline runs on the same dataset and the paper's
//! qualitative orderings hold on deep-signal data.

use autofeat::prelude::*;
use autofeat::{context_from_snowflake, datagen};

fn ctx() -> SearchContext {
    let spec = datagen::registry::dataset("credit").unwrap();
    context_from_snowflake(&spec.build_snowflake()).unwrap()
}

#[test]
fn all_methods_produce_results() {
    let c = ctx();
    let models = [ModelKind::RandomForest];
    let base = run_base(&c, &models, 1).unwrap();
    let arda = run_arda(&c, &models, &ArdaConfig::default()).unwrap();
    let mab = run_mab(&c, &models, &MabConfig::default()).unwrap();
    let ja = run_join_all(&c, &models, &JoinAllConfig::default()).unwrap();
    let jaf = run_join_all(&c, &models, &JoinAllConfig { filter: true, ..Default::default() })
        .unwrap();
    for r in [&base, &arda, &mab] {
        assert!(r.mean_accuracy() > 0.0, "{} produced zero accuracy", r.method);
    }
    assert!(ja.is_some() && jaf.is_some(), "credit's KFK snowflake is JoinAll-feasible");
}

#[test]
fn autofeat_beats_single_hop_arda_on_deep_signal() {
    let c = ctx();
    let models = [ModelKind::RandomForest];
    let cfg = AutoFeatConfig::paper().with_seed(5);
    let discovery = AutoFeat::new(cfg.clone()).discover(&c).unwrap();
    let af = train_top_k(&c, &discovery, &models, &cfg).unwrap();
    let arda = run_arda(&c, &models, &ArdaConfig::default()).unwrap();
    // The strongest features are ≥ 2 hops deep; ARDA can only reach depth 1.
    assert!(
        af.result.mean_accuracy() >= arda.mean_accuracy(),
        "AutoFeat ({:.3}) should not lose to ARDA ({:.3}) on deep-signal data",
        af.result.mean_accuracy(),
        arda.mean_accuracy()
    );
}

#[test]
fn autofeat_feature_selection_is_faster_than_model_based_baselines() {
    let c = ctx();
    let models = [ModelKind::RandomForest];
    let cfg = AutoFeatConfig::paper();
    let discovery = AutoFeat::new(cfg.clone()).discover(&c).unwrap();
    let arda = run_arda(&c, &models, &ArdaConfig::default()).unwrap();
    let mab = run_mab(&c, &models, &MabConfig::default()).unwrap();
    // The headline claim: heuristic ranking beats model-execution-based
    // selection on feature-selection time.
    assert!(
        discovery.elapsed < arda.feature_selection_time,
        "AutoFeat FS ({:?}) should beat ARDA FS ({:?})",
        discovery.elapsed,
        arda.feature_selection_time
    );
    assert!(
        discovery.elapsed < mab.feature_selection_time,
        "AutoFeat FS ({:?}) should beat MAB FS ({:?})",
        discovery.elapsed,
        mab.feature_selection_time
    );
}

#[test]
fn join_all_is_skipped_on_explosive_schemata() {
    // The school dataset is a 16-satellite star: once the joins are not
    // 1:1, the ordering count is 16! ≈ 2·10^13, far over budget.
    let spec = datagen::registry::dataset("school").unwrap();
    let c = context_from_snowflake(&spec.build_snowflake()).unwrap();
    let drg = c.drg();
    let base = drg.node("base").unwrap();
    let count = autofeat::graph::traversal::join_all_path_count(drg, base);
    assert!(count > 1e13, "16! expected, got {count}");
    let r = run_join_all(
        &c,
        &[ModelKind::RandomForest],
        &JoinAllConfig { max_orderings: 1e7, ..Default::default() },
    )
    .unwrap();
    assert!(r.is_none(), "JoinAll must be skipped on school");
}

#[test]
fn mab_joins_fewer_tables_than_autofeat_explores() {
    let c = ctx();
    let mab = run_mab(&c, &[ModelKind::RandomForest], &MabConfig::default()).unwrap();
    // MAB accepts only reward-improving joins; it never joins everything.
    assert!(mab.n_tables_joined < c.n_tables() - 1);
}
