//! The tentpole guarantee of the parallel frontier evaluation: a full
//! AutoFeat search is **bit-identical at any worker-thread count** — the
//! same ranked paths, the same score bits, the same selected features, the
//! same report counters — for any seed, in any process.

use autofeat::prelude::*;

/// A snowflake-ish lake with duplicate join keys (so representative picks
/// matter), a transitive chain, a fan-out of siblings, and an unjoinable
/// table — enough structure to exercise every pruning branch.
fn lake_ctx(n: usize) -> SearchContext {
    let labels: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 2).collect();
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "b0",
                Column::from_floats((0..n).map(|i| Some(((i * 29) % 23) as f64)).collect::<Vec<_>>()),
            ),
            ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    // 3 rows per key, feature values differ per duplicate: picks observable.
    let dup_keys: Vec<Option<i64>> = (0..(n * 3) as i64).map(|i| Some(i / 3)).collect();
    let s1 = Table::new(
        "s1",
        vec![
            ("k", Column::from_ints(dup_keys.clone())),
            ("k2", Column::from_ints((0..(n * 3) as i64).map(|i| Some(500 + i / 3)).collect::<Vec<_>>())),
            (
                "f1",
                Column::from_floats(
                    (0..(n * 3) as i64).map(|i| Some(((i * 13) % 41) as f64)).collect::<Vec<_>>(),
                ),
            ),
        ],
    )
    .unwrap();
    let s2 = Table::new(
        "s2",
        vec![
            ("k2", Column::from_ints((0..n as i64).map(|i| Some(500 + i)).collect::<Vec<_>>())),
            (
                "deep",
                Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap();
    let sib = Table::new(
        "sib",
        vec![
            ("k", Column::from_ints(dup_keys)),
            (
                "g",
                Column::from_floats(
                    (0..(n * 3) as i64).map(|i| Some(((i * 5) % 17) as f64)).collect::<Vec<_>>(),
                ),
            ),
        ],
    )
    .unwrap();
    // Keys never match the base: the unjoinable-pruning branch.
    let orphan = Table::new(
        "orphan",
        vec![
            ("k", Column::from_ints((9000..9000 + n as i64).map(Some).collect::<Vec<_>>())),
            ("h", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    SearchContext::from_kfk(
        vec![base, s1, s2, sib, orphan],
        &[
            ("base".into(), "k".into(), "s1".into(), "k".into()),
            ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ("base".into(), "k".into(), "sib".into(), "k".into()),
            ("base".into(), "k".into(), "orphan".into(), "k".into()),
        ],
        "base",
        "target",
    )
    .unwrap()
}

/// Everything except the informational `threads_used`/`elapsed` fields must
/// match to the bit.
fn assert_bit_identical(a: &DiscoveryResult, b: &DiscoveryResult, what: &str) {
    assert_eq!(a.ranked.len(), b.ranked.len(), "{what}: ranked length");
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(x.path, y.path, "{what}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{what}: score bits of {}",
            x.path
        );
        assert_eq!(x.features, y.features, "{what}: features of {}", x.path);
    }
    assert_eq!(a.n_joins_evaluated, b.n_joins_evaluated, "{what}");
    assert_eq!(a.n_pruned_unjoinable, b.n_pruned_unjoinable, "{what}");
    assert_eq!(a.n_pruned_quality, b.n_pruned_quality, "{what}");
    assert_eq!(a.truncated, b.truncated, "{what}");
    assert_eq!(a.truncation, b.truncation, "{what}");
    assert_eq!(a.failures.len(), b.failures.len(), "{what}");
    assert_eq!(a.selected_features, b.selected_features, "{what}");
}

#[test]
fn search_is_bit_identical_across_thread_counts_and_seeds() {
    let ctx = lake_ctx(150);
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, avail];
    counts.sort_unstable();
    counts.dedup();
    for seed in [7u64, 42, 1234] {
        let reference = AutoFeat::new(
            AutoFeatConfig::default().with_seed(seed).with_threads(1),
        )
        .discover(&ctx)
        .unwrap();
        assert!(
            !reference.ranked.is_empty(),
            "seed {seed}: search must find paths for the comparison to mean anything"
        );
        assert!(reference.n_pruned_unjoinable >= 1, "orphan must be pruned");
        for &threads in &counts {
            let r = AutoFeat::new(
                AutoFeatConfig::default().with_seed(seed).with_threads(threads),
            )
            .discover(&ctx)
            .unwrap();
            assert_eq!(r.threads_used, threads);
            assert_bit_identical(&reference, &r, &format!("seed {seed}, {threads} thread(s)"));
        }
    }
}

#[test]
fn env_thread_override_matches_explicit_config() {
    // AUTOFEAT_THREADS is honoured when config.threads == 0, and the result
    // is the same as asking for that count explicitly.
    let ctx = lake_ctx(100);
    let explicit = AutoFeat::new(AutoFeatConfig::default().with_threads(2))
        .discover(&ctx)
        .unwrap();
    std::env::set_var("AUTOFEAT_THREADS", "2");
    let via_env = AutoFeat::new(AutoFeatConfig::default()).discover(&ctx).unwrap();
    std::env::remove_var("AUTOFEAT_THREADS");
    assert_eq!(via_env.threads_used, 2);
    assert_bit_identical(&explicit, &via_env, "env override vs explicit");
}

#[test]
fn truncated_search_is_thread_count_independent_too() {
    // max_joins truncation happens on the deterministic enumeration order,
    // before the parallel fan-out — so even a truncated search is
    // bit-identical across thread counts.
    let ctx = lake_ctx(120);
    let cfg = |t: usize| AutoFeatConfig {
        max_joins: 3,
        ..AutoFeatConfig::default().with_threads(t)
    };
    let one = AutoFeat::new(cfg(1)).discover(&ctx).unwrap();
    assert!(one.truncated, "max_joins=3 must truncate this lake");
    for threads in [2usize, 4] {
        let r = AutoFeat::new(cfg(threads)).discover(&ctx).unwrap();
        assert_bit_identical(&one, &r, &format!("truncated, {threads} thread(s)"));
    }
}
