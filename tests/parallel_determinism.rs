//! The tentpole guarantee of the parallel frontier evaluation: a full
//! AutoFeat search is **bit-identical at any worker-thread count** — the
//! same ranked paths, the same score bits, the same selected features, the
//! same report counters — for any seed, in any process.

use autofeat::prelude::*;

mod common;
use common::{assert_bit_identical, lake_ctx};

#[test]
fn search_is_bit_identical_across_thread_counts_and_seeds() {
    let ctx = lake_ctx(150);
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, avail];
    counts.sort_unstable();
    counts.dedup();
    for seed in [7u64, 42, 1234] {
        let reference = AutoFeat::new(
            AutoFeatConfig::default().with_seed(seed).with_threads(1),
        )
        .discover(&ctx)
        .unwrap();
        assert!(
            !reference.ranked.is_empty(),
            "seed {seed}: search must find paths for the comparison to mean anything"
        );
        assert!(reference.n_pruned_unjoinable >= 1, "orphan must be pruned");
        for &threads in &counts {
            let r = AutoFeat::new(
                AutoFeatConfig::default().with_seed(seed).with_threads(threads),
            )
            .discover(&ctx)
            .unwrap();
            assert_eq!(r.threads_used, threads);
            assert_bit_identical(&reference, &r, &format!("seed {seed}, {threads} thread(s)"));
        }
    }
}

#[test]
fn auto_thread_resolution_matches_explicit_config() {
    // `threads == 0` defers to the process-wide worker count (AUTOFEAT_THREADS
    // or the available parallelism, resolved once and cached) — and whatever
    // it resolves to, the result is bit-identical to asking for that count
    // explicitly. The CI resilience job runs the suite under
    // AUTOFEAT_THREADS=1 and =4, so both env paths are covered there.
    let ctx = lake_ctx(100);
    let resolved = autofeat::data::parallel::n_workers();
    let explicit = AutoFeat::new(AutoFeatConfig::default().with_threads(resolved))
        .discover(&ctx)
        .unwrap();
    let auto = AutoFeat::new(AutoFeatConfig::default()).discover(&ctx).unwrap();
    assert_eq!(auto.threads_used, resolved);
    assert_bit_identical(&explicit, &auto, "auto resolution vs explicit");
}

#[test]
fn truncated_search_is_thread_count_independent_too() {
    // max_joins truncation happens on the deterministic enumeration order,
    // before the parallel fan-out — so even a truncated search is
    // bit-identical across thread counts.
    let ctx = lake_ctx(120);
    let cfg = |t: usize| AutoFeatConfig {
        max_joins: 3,
        ..AutoFeatConfig::default().with_threads(t)
    };
    let one = AutoFeat::new(cfg(1)).discover(&ctx).unwrap();
    assert!(one.truncated, "max_joins=3 must truncate this lake");
    for threads in [2usize, 4] {
        let r = AutoFeat::new(cfg(threads)).discover(&ctx).unwrap();
        assert_bit_identical(&one, &r, &format!("truncated, {threads} thread(s)"));
    }
}
