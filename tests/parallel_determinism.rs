//! The tentpole guarantee of the parallel frontier evaluation: a full
//! AutoFeat search is **bit-identical at any worker-thread count** — the
//! same ranked paths, the same score bits, the same selected features, the
//! same report counters — for any seed, in any process.

use autofeat::prelude::*;

mod common;
use common::{assert_bit_identical, lake_ctx};

#[test]
fn search_is_bit_identical_across_thread_counts_and_seeds() {
    let ctx = lake_ctx(150);
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, avail];
    counts.sort_unstable();
    counts.dedup();
    for seed in [7u64, 42, 1234] {
        let reference = AutoFeat::new(
            AutoFeatConfig::default().with_seed(seed).with_threads(1),
        )
        .discover(&ctx)
        .unwrap();
        assert!(
            !reference.ranked.is_empty(),
            "seed {seed}: search must find paths for the comparison to mean anything"
        );
        assert!(reference.n_pruned_unjoinable >= 1, "orphan must be pruned");
        for &threads in &counts {
            let r = AutoFeat::new(
                AutoFeatConfig::default().with_seed(seed).with_threads(threads),
            )
            .discover(&ctx)
            .unwrap();
            assert_eq!(r.threads_used, threads);
            assert_bit_identical(&reference, &r, &format!("seed {seed}, {threads} thread(s)"));
        }
    }
}

#[test]
fn env_thread_override_matches_explicit_config() {
    // AUTOFEAT_THREADS is honoured when config.threads == 0, and the result
    // is the same as asking for that count explicitly.
    let ctx = lake_ctx(100);
    let explicit = AutoFeat::new(AutoFeatConfig::default().with_threads(2))
        .discover(&ctx)
        .unwrap();
    std::env::set_var("AUTOFEAT_THREADS", "2");
    let via_env = AutoFeat::new(AutoFeatConfig::default()).discover(&ctx).unwrap();
    std::env::remove_var("AUTOFEAT_THREADS");
    assert_eq!(via_env.threads_used, 2);
    assert_bit_identical(&explicit, &via_env, "env override vs explicit");
}

#[test]
fn truncated_search_is_thread_count_independent_too() {
    // max_joins truncation happens on the deterministic enumeration order,
    // before the parallel fan-out — so even a truncated search is
    // bit-identical across thread counts.
    let ctx = lake_ctx(120);
    let cfg = |t: usize| AutoFeatConfig {
        max_joins: 3,
        ..AutoFeatConfig::default().with_threads(t)
    };
    let one = AutoFeat::new(cfg(1)).discover(&ctx).unwrap();
    assert!(one.truncated, "max_joins=3 must truncate this lake");
    for threads in [2usize, 4] {
        let r = AutoFeat::new(cfg(threads)).discover(&ctx).unwrap();
        assert_bit_identical(&one, &r, &format!("truncated, {threads} thread(s)"));
    }
}
