//! The tentpole guarantee of the lake-wide join-index cache: discovery with
//! the cache on is **bit-identical** to discovery with it off — across
//! seeds, worker-thread counts, and right-table row permutations — and a
//! repeat run through the same `(table, join column)` entries actually hits
//! the cache instead of rebuilding.

use autofeat::prelude::*;

mod common;
use common::{assert_bit_identical, lake_ctx, lake_ctx_permuted};

fn discover(ctx: &SearchContext, seed: u64, threads: usize, cache: bool) -> DiscoveryResult {
    AutoFeat::new(
        AutoFeatConfig::default()
            .with_seed(seed)
            .with_threads(threads)
            .with_cache(cache),
    )
    .discover(ctx)
    .unwrap()
}

#[test]
fn cached_discovery_is_bit_identical_across_seeds_threads_and_permutations() {
    // Strides are odd ⇒ coprime to the satellite row counts (3n and n,
    // n = 120): three distinct physical layouts of the same logical lake.
    for stride in [1usize, 7, 113] {
        let ctx = lake_ctx_permuted(120, stride);
        for seed in [7u64, 42, 1234] {
            let reference = discover(&ctx, seed, 1, false);
            assert!(
                !reference.ranked.is_empty(),
                "stride {stride}, seed {seed}: search must rank paths for the \
                 comparison to mean anything"
            );
            for threads in [1usize, 2, 4] {
                let cached = discover(&ctx, seed, threads, true);
                assert!(cached.cache.is_some(), "cache stats must be reported");
                assert_bit_identical(
                    &reference,
                    &cached,
                    &format!("stride {stride}, seed {seed}, {threads} thread(s), cached"),
                );
            }
        }
    }
}

#[test]
fn row_permutations_do_not_change_cached_results() {
    // Representative picks are content-addressed and the cache memoizes
    // per-(table, column) indexes — neither may couple results to the
    // physical row order of the satellites.
    let reference = discover(&lake_ctx(120), 42, 2, true);
    for stride in [7usize, 113] {
        let permuted = discover(&lake_ctx_permuted(120, stride), 42, 2, true);
        assert_bit_identical(&reference, &permuted, &format!("stride {stride}"));
    }
}

#[test]
fn second_run_hits_cache_without_rebuilding() {
    let ctx = lake_ctx(100);
    let engine = AutoFeat::new(AutoFeatConfig::default());
    let first = engine.discover(&ctx).unwrap();
    let s1 = first.cache.expect("cache on by default");
    assert!(s1.misses > 0, "cold run must build indexes");
    assert_eq!(s1.hits, 0, "nothing resident on the first run");
    assert!(s1.entries > 0);
    assert!(s1.resident_bytes > 0);

    let second = engine.discover(&ctx).unwrap();
    let s2 = second.cache.expect("cache on by default");
    assert_eq!(s2.misses, 0, "warm run must not rebuild anything");
    assert!(s2.hits > 0, "warm run must hit the cache");
    assert_eq!(s2.entries, s1.entries, "occupancy unchanged");
    assert_eq!(s2.resident_bytes, s1.resident_bytes);
    assert_bit_identical(&first, &second, "cold vs warm run");
}

#[test]
fn second_join_through_same_table_column_hits() {
    // Unit-level check straight on the cache: two joins through the same
    // (table, column) build once and hit once.
    let ctx = lake_ctx(60);
    let cache = LakeIndexCache::new();
    let base = ctx.base_table();
    let sat = ctx.table("s1").unwrap();
    let a = cache
        .left_join_normalized(base, sat, "k", "k", "s1", 7)
        .unwrap();
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
    let b = cache
        .left_join_normalized(base, sat, "k", "k", "s1", 7)
        .unwrap();
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    assert_eq!(a.table, b.table, "hit must reproduce the miss bit-for-bit");
}
