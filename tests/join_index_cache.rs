//! The tentpole guarantee of the lake-wide join-index cache: discovery with
//! the cache on is **bit-identical** to discovery with it off — across
//! seeds, worker-thread counts, right-table row permutations, and **byte
//! budgets** (memory governance changes what the cache retains, never what
//! any join produces) — and a repeat run through the same `(table, join
//! column)` entries actually hits the cache instead of rebuilding.

use autofeat::prelude::*;

mod common;
use common::{assert_bit_identical, lake_ctx, lake_ctx_permuted, wide_uniform_ctx};

fn discover(ctx: &SearchContext, seed: u64, threads: usize, cache: bool) -> DiscoveryResult {
    AutoFeat::new(
        AutoFeatConfig::default()
            .with_seed(seed)
            .with_threads(threads)
            .with_cache(cache),
    )
    .discover(ctx)
    .unwrap()
}

fn discover_budgeted(
    ctx: &SearchContext,
    seed: u64,
    threads: usize,
    budget: u64,
) -> DiscoveryResult {
    AutoFeat::new(
        AutoFeatConfig::default()
            .with_seed(seed)
            .with_threads(threads)
            .with_cache(true)
            .with_cache_budget_bytes(budget),
    )
    .discover(ctx)
    .unwrap()
}

#[test]
fn cached_discovery_is_bit_identical_across_seeds_threads_and_permutations() {
    // Strides are odd ⇒ coprime to the satellite row counts (3n and n,
    // n = 120): three distinct physical layouts of the same logical lake.
    for stride in [1usize, 7, 113] {
        let ctx = lake_ctx_permuted(120, stride);
        for seed in [7u64, 42, 1234] {
            let reference = discover(&ctx, seed, 1, false);
            assert!(
                !reference.ranked.is_empty(),
                "stride {stride}, seed {seed}: search must rank paths for the \
                 comparison to mean anything"
            );
            for threads in [1usize, 2, 4] {
                let cached = discover(&ctx, seed, threads, true);
                assert!(cached.cache.is_some(), "cache stats must be reported");
                assert_bit_identical(
                    &reference,
                    &cached,
                    &format!("stride {stride}, seed {seed}, {threads} thread(s), cached"),
                );
            }
        }
    }
}

#[test]
fn row_permutations_do_not_change_cached_results() {
    // Representative picks are content-addressed and the cache memoizes
    // per-(table, column) indexes — neither may couple results to the
    // physical row order of the satellites.
    let reference = discover(&lake_ctx(120), 42, 2, true);
    for stride in [7usize, 113] {
        let permuted = discover(&lake_ctx_permuted(120, stride), 42, 2, true);
        assert_bit_identical(&reference, &permuted, &format!("stride {stride}"));
    }
}

#[test]
fn second_run_hits_cache_without_rebuilding() {
    let ctx = lake_ctx(100);
    let engine = AutoFeat::new(AutoFeatConfig::default());
    let first = engine.discover(&ctx).unwrap();
    let s1 = first.cache.expect("cache on by default");
    assert!(s1.misses > 0, "cold run must build indexes");
    assert_eq!(s1.hits, 0, "nothing resident on the first run");
    assert!(s1.entries > 0);
    assert!(s1.resident_bytes > 0);

    let second = engine.discover(&ctx).unwrap();
    let s2 = second.cache.expect("cache on by default");
    assert_eq!(s2.misses, 0, "warm run must not rebuild anything");
    assert!(s2.hits > 0, "warm run must hit the cache");
    assert_eq!(s2.entries, s1.entries, "occupancy unchanged");
    assert_eq!(s2.resident_bytes, s1.resident_bytes);
    assert_bit_identical(&first, &second, "cold vs warm run");
}

/// The working-set footprint of a lake: resident bytes after one unbounded
/// cached run on a fresh clone of the context.
fn working_set_bytes(ctx: &SearchContext, seed: u64) -> u64 {
    let r = discover(ctx, seed, 1, true);
    let stats = r.cache.expect("cache stats present");
    assert!(stats.resident_bytes > 0, "unbounded run must retain indexes");
    stats.resident_bytes
}

#[test]
fn budgeted_discovery_is_bit_identical_across_seeds_threads_and_permutations() {
    // A budget below the working set forces real governance decisions
    // (denials, partial retention) in every run; results must still match
    // the uncached reference bit-for-bit. Note each discover() call gets a
    // fresh context: budgets govern retention *within* a shared cache, and
    // a fresh cache makes every run face the same governance pressure.
    let full = working_set_bytes(&lake_ctx(120), 42);
    for budget in [full / 2, 0] {
        for stride in [1usize, 7] {
            for seed in [7u64, 42] {
                let reference = discover(&lake_ctx_permuted(120, stride), seed, 1, false);
                assert!(!reference.ranked.is_empty(), "discovery must rank paths");
                for threads in [1usize, 4] {
                    let budgeted = discover_budgeted(
                        &lake_ctx_permuted(120, stride),
                        seed,
                        threads,
                        budget,
                    );
                    assert_bit_identical(
                        &reference,
                        &budgeted,
                        &format!(
                            "budget {budget}, stride {stride}, seed {seed}, \
                             {threads} thread(s)"
                        ),
                    );
                    let unbounded = discover(&lake_ctx_permuted(120, stride), seed, threads, true);
                    assert_bit_identical(
                        &unbounded,
                        &budgeted,
                        &format!("unbounded vs budget {budget}, stride {stride}, seed {seed}"),
                    );
                }
            }
        }
    }
}

#[test]
fn budgeted_peak_resident_never_exceeds_budget() {
    let full = working_set_bytes(&lake_ctx(120), 42);
    for budget in [full / 4, full / 2, 3 * full / 4] {
        for threads in [1usize, 4] {
            let ctx = lake_ctx(120);
            // Two runs: the first faces a cold cache, the second re-applies
            // the budget to a populated one — the peak must hold in both.
            for run in 0..2 {
                let r = discover_budgeted(&ctx, 42, threads, budget);
                let stats = r.cache.expect("cache stats present");
                assert_eq!(stats.budget_bytes, Some(budget));
                assert!(
                    stats.peak_resident_bytes <= budget,
                    "run {run}, budget {budget}, {threads} thread(s): peak \
                     {} exceeds budget",
                    stats.peak_resident_bytes
                );
                assert!(stats.resident_bytes <= budget);
            }
        }
    }
}

#[test]
fn budget_application_evicts_deterministically_across_thread_counts() {
    // Uniform satellite sizes make governance arithmetic schedule-free:
    // how many indexes fit a budget — and how many evictions a budget
    // application needs — cannot depend on the worker count, even though
    // *which* indexes win admission may. Joins-served totals are exact.
    let mut per_threads = Vec::new();
    for threads in [1usize, 4] {
        let ctx = wide_uniform_ctx(10, 60, 3);
        // Unbounded run fills the cache with every satellite's index.
        let full = discover(&ctx, 42, threads, true);
        let full_stats = full.cache.expect("stats");
        // Budgeted run on the now-populated cache: applying the budget
        // evicts coldest-first down to it, then the run serves survivors.
        let budget = full_stats.resident_bytes / 2;
        let budgeted = discover_budgeted(&ctx, 42, threads, budget);
        let stats = budgeted.cache.expect("stats");
        assert!(stats.evictions > 0, "{threads} thread(s): shrink must evict");
        assert!(stats.peak_resident_bytes <= budget);
        assert_bit_identical(&full, &budgeted, &format!("{threads} thread(s)"));
        per_threads.push((
            full_stats.hits,
            full_stats.misses,
            full_stats.evictions,
            stats.hits + stats.misses,
            stats.evictions,
            stats.evicted_bytes,
        ));
    }
    assert_eq!(
        per_threads[0], per_threads[1],
        "governance counters must be invariant across thread counts"
    );
}

#[test]
fn second_join_through_same_table_column_hits() {
    // Unit-level check straight on the cache: two joins through the same
    // (table, column) build once and hit once.
    let ctx = lake_ctx(60);
    let cache = LakeIndexCache::new();
    let base = ctx.base_table();
    let sat = ctx.table("s1").unwrap();
    let a = cache
        .left_join_normalized(base, sat, "k", "k", "s1", 7)
        .unwrap();
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
    let b = cache
        .left_join_normalized(base, sat, "k", "k", "s1", 7)
        .unwrap();
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    assert_eq!(a.table, b.table, "hit must reproduce the miss bit-for-bit");
}
