//! Concurrent serving: many client threads against one [`DiscoveryService`].
//!
//! The serving contract (DESIGN.md §3i): a request's result is bit-identical
//! whether served solo or interleaved with any mix of other requests, the
//! per-request governance counters sum exactly to the shared cache's global
//! counters, request-scoped traces never absorb a sibling's increments, and
//! fault domains isolate services that happen to share table names.

mod common;

use std::thread;
use std::time::Duration;

use autofeat::data::faults::TableFaults;
use autofeat::prelude::*;

use common::{assert_bit_identical, lake_ctx};

/// The mixed request workload: configurations that change the search
/// (kappa, top-k, seed) and the execution strategy (threads), but never the
/// result's determinism. Deadlines are deliberately absent — they are wall
/// clock dependent and belong to the lifecycle tests, not identity tests.
fn mixed_specs() -> Vec<(&'static str, AutoFeatConfig)> {
    let mut narrow = AutoFeatConfig::default().with_cache(true);
    narrow.top_k = 1;
    vec![
        ("default", AutoFeatConfig::default().with_cache(true)),
        ("paper-serial", AutoFeatConfig::paper().with_cache(true).with_threads(1).with_seed(7)),
        ("kappa1", AutoFeatConfig::default().with_cache(true).with_kappa(1).with_seed(99)),
        ("wide-fanout", AutoFeatConfig::paper().with_cache(true).with_threads(4)),
        ("top1", narrow),
    ]
}

fn request(cfg: &AutoFeatConfig) -> DiscoveryRequest {
    DiscoveryRequest::new().with_config(cfg.clone())
}

/// N client threads replaying the mixed workload concurrently must produce,
/// request for request, results bit-identical to the same specs served solo
/// — on the same service, so the solo runs also warm the shared cache and
/// the concurrent runs hit it (identity must hold warm or cold).
#[test]
fn concurrent_mixed_requests_are_bit_identical_to_solo() {
    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default());
    let specs = mixed_specs();
    let solo: Vec<DiscoveryResult> =
        specs.iter().map(|(_, cfg)| service.submit(&request(cfg)).unwrap()).collect();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    thread::scope(|s| {
        for t in 0..CLIENTS {
            let (service, specs, solo) = (&service, &specs, &solo);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let i = (t + r) % specs.len();
                    let got = service.submit(&request(&specs[i].1)).unwrap();
                    assert_bit_identical(&solo[i], &got, specs[i].0);
                }
            });
        }
    });
    assert_eq!(
        service.stats().requests_served,
        (specs.len() + CLIENTS * ROUNDS) as u64,
        "every submit completed and was counted"
    );
    assert_eq!(service.stats().in_flight, 0);
}

/// Per-request cache counters are attributed, not snapshotted: across any
/// concurrent interleaving, the hit/miss/build counters on each result sum
/// *exactly* to the shared cache's global totals — nothing double-counted,
/// nothing dropped, nothing leaked from a sibling.
#[test]
fn per_request_cache_counters_sum_to_shared_cache_totals() {
    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default().with_cache(true));
    let before = service.context().lake_cache().stats();
    assert_eq!((before.hits, before.misses), (0, 0), "fresh cache");

    const CLIENTS: usize = 6;
    const ROUNDS: usize = 2;
    let results: Vec<DiscoveryResult> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let service = &service;
                s.spawn(move || {
                    (0..ROUNDS)
                        .map(|r| {
                            let cfg = AutoFeatConfig::default()
                                .with_cache(true)
                                .with_seed((t * ROUNDS + r) as u64);
                            service.submit(&request(&cfg)).unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    let per_request: Vec<&CacheStats> =
        results.iter().map(|r| r.cache.as_ref().expect("cache enabled")).collect();
    let global = service.context().lake_cache().stats();
    let sum = |f: fn(&CacheStats) -> u64| per_request.iter().map(|c| f(c)).sum::<u64>();
    assert_eq!(sum(|c| c.hits), global.hits, "hits attribute exactly");
    assert_eq!(sum(|c| c.misses), global.misses, "misses attribute exactly");
    assert_eq!(sum(|c| c.rejections), global.rejections, "no budget: zero, but exact");
    assert_eq!(sum(|c| c.evictions), global.evictions, "no budget: zero, but exact");
    assert_eq!(
        per_request.iter().map(|c| c.build_time).sum::<Duration>(),
        global.build_time,
        "build time attributes exactly"
    );
    assert!(global.hits > 0, "a warm shared cache must serve hits");
    assert!(global.misses > 0, "the cold start must register misses");
    // Occupancy is a property of the shared cache, reported as-is.
    for c in &per_request {
        assert_eq!(c.entries, global.entries, "occupancy is global, not attributed");
    }
}

/// Tracing under concurrency: each request's trace must account for exactly
/// its own activity. If a scope bled between threads, some request's
/// counters would absorb a sibling's increments and these per-request
/// identities (trace counter == the result's own field) could not all hold.
#[test]
fn concurrent_traces_attribute_only_their_own_request() {
    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default());
    let specs = mixed_specs();
    let solo: Vec<DiscoveryResult> = specs
        .iter()
        .map(|(_, cfg)| service.submit(&request(&cfg.clone().with_trace(true))).unwrap())
        .collect();

    const CLIENTS: usize = 6;
    let results: Vec<(usize, DiscoveryResult)> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (service, specs) = (&service, &specs);
                s.spawn(move || {
                    let i = t % specs.len();
                    let cfg = specs[i].1.clone().with_trace(true);
                    (i, service.submit(&request(&cfg)).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, r) in &results {
        let what = specs[*i].0;
        let trace = r.trace.as_ref().expect("traced request");
        let cache = r.cache.as_ref().expect("cache enabled in every spec");
        assert_eq!(
            trace.counter("discover.joins_evaluated").unwrap_or(0),
            r.n_joins_evaluated as u64,
            "{what}: trace counts its own joins"
        );
        assert_eq!(
            trace.counter("cache.hits").unwrap_or(0),
            cache.hits,
            "{what}: trace cache hits match the request's attribution"
        );
        assert_eq!(
            trace.counter("cache.misses").unwrap_or(0),
            cache.misses,
            "{what}: trace cache misses match the request's attribution"
        );
        // The search itself is deterministic, so the search-side counters
        // must also equal the solo run's (cache hit/miss splits may differ
        // between warm and cold runs; the search counters may not).
        assert_bit_identical(&solo[*i], r, what);
        assert_eq!(
            trace.counter("discover.joins_evaluated"),
            solo[*i].trace.as_ref().unwrap().counter("discover.joins_evaluated"),
            "{what}: deterministic trace counters match solo"
        );
    }
}

/// Two services over lakes with identical table names: a fault armed on one
/// service's domain fires only there. The sibling service — running
/// concurrently, joining a table of the same name — never sees it.
#[test]
fn fault_domains_isolate_services_with_identical_table_names() {
    let poisoned = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default());
    let healthy = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default());
    let reference = healthy.submit(&DiscoveryRequest::new()).unwrap();

    poisoned
        .context()
        .fault_domain()
        .arm("s1", TableFaults { panic_on_row: Some(0), slow_join_ms: None });

    let (sick, fine) = thread::scope(|s| {
        let a = s.spawn(|| poisoned.submit(&DiscoveryRequest::new()).unwrap());
        let b = s.spawn(|| healthy.submit(&DiscoveryRequest::new()).unwrap());
        (a.join().unwrap(), b.join().unwrap())
    });

    assert!(
        sick.failures.iter().any(|f| f.error.contains("panic"))
            || sick.resilience.worker_panics >= 1,
        "the armed domain fires in its own service: {sick:?}"
    );
    assert!(fine.failures.is_empty(), "sibling service untouched: {:?}", fine.failures);
    assert_bit_identical(&reference, &fine, "healthy service beside a poisoned one");

    // Disarming (here: via the domain handle) heals the poisoned service.
    poisoned.context().fault_domain().disarm("s1");
    let healed = poisoned.submit(&DiscoveryRequest::new()).unwrap();
    assert!(healed.failures.is_empty(), "{:?}", healed.failures);
}

/// Shutdown under load: in-flight requests wind down to valid (possibly
/// truncated) results, later submits return immediately as cancelled, and
/// nothing errors or hangs.
#[test]
fn shutdown_under_concurrent_load_degrades_gracefully() {
    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default());
    const CLIENTS: usize = 4;
    thread::scope(|s| {
        for _ in 0..CLIENTS {
            let service = &service;
            s.spawn(move || {
                // Every result is Ok: completed runs have no truncation,
                // interrupted ones carry the cancelled reason — never Err.
                let r = service.submit(&DiscoveryRequest::new()).unwrap();
                assert!(
                    r.truncation.is_none() || r.truncation == Some(TruncationReason::Cancelled),
                    "unexpected truncation under shutdown: {:?}",
                    r.truncation
                );
            });
        }
        service.shutdown();
    });
    let late = service.submit(&DiscoveryRequest::new()).unwrap();
    assert_eq!(late.truncation, Some(TruncationReason::Cancelled), "post-shutdown submit");
    assert_eq!(service.stats().in_flight, 0);
}
