//! Anytime semantics of the request lifecycle: deadlines and cancellation
//! truncate a run into a valid, ranked partial result — never an `Err`,
//! never a process abort — the truncation reason is visible in the health
//! report, cancellation latency is bounded, and injected worker panics stay
//! isolated per path at every thread count.

use std::sync::Arc;
use std::time::Duration;

use autofeat::core::discovery_health_report;
use autofeat::data::faults;
use autofeat::datagen::{RuntimeFault, RuntimeFaultKind};
use autofeat::prelude::*;

mod common;
use common::{assert_bit_identical, lake_ctx};

/// Whatever survived truncation must still be a well-formed ranking:
/// NaN-safe non-increasing scores and non-empty join paths. (Empty feature
/// sets are legal — a gateway join can rank without contributing features.)
fn assert_valid_ranking(r: &DiscoveryResult, what: &str) {
    for w in r.ranked.windows(2) {
        assert!(
            w[0].score >= w[1].score || w[0].score.is_nan() || w[1].score.is_nan(),
            "{what}: ranking out of order: {} then {}",
            w[0].score,
            w[1].score
        );
        assert!(
            !w[0].score.is_nan() || w[1].score.is_nan(),
            "{what}: NaN-scored path ranked above a finite one"
        );
    }
    for p in &r.ranked {
        assert!(!p.path.is_empty(), "{what}: ranked path with no hops");
    }
}

/// base(k, target) — {prefix}_sat(k, signal): tiny lake whose satellite
/// carries a unique name, so process-global runtime faults armed against it
/// cannot leak into concurrently running tests.
fn prefixed_ctx(prefix: &str, n: usize) -> SearchContext {
    let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
    let base = Table::new(
        format!("{prefix}_base"),
        vec![
            ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    let sat = Table::new(
        format!("{prefix}_sat"),
        vec![
            ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "signal",
                Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap();
    SearchContext::from_kfk(
        vec![base, sat],
        &[(format!("{prefix}_base"), "k".into(), format!("{prefix}_sat"), "k".into())],
        format!("{prefix}_base"),
        "target",
    )
    .unwrap()
}

#[test]
fn every_deadline_yields_a_valid_possibly_truncated_ranking() {
    let ctx = lake_ctx(150);
    // ∞ (no budget): the reference — and repeatable bit-identically.
    let unbounded =
        AutoFeat::new(AutoFeatConfig::default().with_seed(7)).discover(&ctx).unwrap();
    assert!(!unbounded.ranked.is_empty());
    assert_eq!(unbounded.truncation, None);
    assert_eq!(unbounded.resilience, ResilienceStats::default());
    let again = AutoFeat::new(AutoFeatConfig::default().with_seed(7)).discover(&ctx).unwrap();
    assert_bit_identical(&unbounded, &again, "no deadline, repeated");

    for ms in [0u64, 5, 50] {
        let cfg = AutoFeatConfig::default()
            .with_seed(7)
            .with_time_budget(Duration::from_millis(ms));
        let r = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert_valid_ranking(&r, &format!("budget {ms}ms"));
        if ms == 0 {
            assert!(
                matches!(r.truncation, Some(TruncationReason::DeadlineExceeded { .. })),
                "zero budget must truncate: {:?}",
                r.truncation
            );
            assert!(r.ranked.is_empty(), "nothing can be evaluated in 0ms");
        }
        if r.truncation.is_some() {
            let health = discovery_health_report(&r);
            assert!(
                health.contains("truncated: time budget exhausted during"),
                "truncation reason missing from health report:\n{health}"
            );
        }
    }
}

#[test]
fn cancel_from_another_thread_is_bounded_and_reported() {
    let ctx = prefixed_ctx("rsl_cancel", 200);
    // A join that would take ~10s: the run can only finish via the cancel.
    RuntimeFault {
        table: "rsl_cancel_sat".into(),
        kind: RuntimeFaultKind::SlowJoinMs,
        value: 10_000,
    }
    .arm();
    let ctrl = Arc::clone(ctx.control());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        ctrl.cancel();
    });
    let r = AutoFeat::new(AutoFeatConfig::default()).discover(&ctx).unwrap();
    canceller.join().unwrap();
    faults::disarm("rsl_cancel_sat");

    assert_eq!(r.truncation, Some(TruncationReason::Cancelled));
    let latency = r.resilience.cancel_latency.expect("cancel was observed mid-run");
    assert!(
        latency < Duration::from_millis(250),
        "cancel must cut the slow join short, latency {latency:?}"
    );
    let health = discovery_health_report(&r);
    assert!(health.contains("truncated: cancelled"), "{health}");
    assert!(health.contains("cancel latency"), "{health}");

    // Anytime, not terminal: reset the control and the same context runs to
    // a healthy completion.
    ctx.control().reset();
    let healed = AutoFeat::new(AutoFeatConfig::default()).discover(&ctx).unwrap();
    assert_eq!(healed.truncation, None);
    assert!(!healed.ranked.is_empty());
}

#[test]
fn injected_panic_never_aborts_at_any_thread_count() {
    for threads in [1usize, 4] {
        let ctx = prefixed_ctx(&format!("rsl_panic{threads}"), 150);
        RuntimeFault {
            table: format!("rsl_panic{threads}_sat"),
            kind: RuntimeFaultKind::PanicOnRow,
            value: 0,
        }
        .arm();
        let r = AutoFeat::new(AutoFeatConfig::default().with_threads(threads))
            .discover(&ctx)
            .unwrap();
        faults::disarm(&format!("rsl_panic{threads}_sat"));
        assert!(
            r.failures.iter().any(|f| f.error.contains("panic"))
                || r.resilience.worker_panics >= 1,
            "panic must be isolated and accounted ({threads} threads): {r:?}"
        );
        assert_eq!(r.truncation, None, "a panic is a path failure, not a truncation");
        let health = discovery_health_report(&r);
        assert!(health.contains("hop failure(s) isolated"), "{health}");
    }
}

#[test]
fn deadline_truncation_is_deterministic_under_a_pinned_clock_free_path() {
    // The degradation ladder's first rung is decided by configuration alone
    // (total budget < 1s), so two runs with the same tight budget make the
    // same sample-shrink decision even if their wall clocks drift.
    let ctx = lake_ctx(400);
    let cfg = || {
        AutoFeatConfig::default().with_seed(3).with_time_budget(Duration::from_millis(900))
    };
    let a = AutoFeat::new(cfg()).discover(&ctx).unwrap();
    let b = AutoFeat::new(cfg()).discover(&ctx).unwrap();
    assert!(
        a.resilience.degradations.contains(&"shrunk sample"),
        "sub-second budget must engage rung 1: {:?}",
        a.resilience.degradations
    );
    assert_eq!(
        a.resilience.degradations.contains(&"shrunk sample"),
        b.resilience.degradations.contains(&"shrunk sample"),
        "rung 1 is config-driven, not clock-driven"
    );
}
