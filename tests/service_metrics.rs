//! Concurrent consistency of the service telemetry layer (DESIGN.md §3k):
//! N clients producing mixed outcomes must leave `ServiceStats`, the
//! metrics registry, and the structured request log in exact agreement;
//! snapshots taken *during* load must never tear (a histogram count always
//! equals its own bucket sum, counters only move forward); and the TCP
//! stats listener must serve parseable Prometheus text under load.

mod common;

use std::thread;
use std::time::Duration;

use autofeat::prelude::*;

use common::lake_ctx;

/// Every client plays the same hand: one ok request, one deadline-starved
/// request, one cancelled-before-run request, and one rejected request.
const PER_CLIENT: (u64, u64, u64, u64) = (1, 1, 1, 1); // (ok, truncated, cancelled, rejected)

fn play_mixed_hand(service: &DiscoveryService) {
    service.submit(&DiscoveryRequest::new()).expect("ok request");
    let starved = service
        .submit(&DiscoveryRequest::new().with_time_budget(Duration::ZERO))
        .expect("starved request still returns a partial");
    assert!(starved.truncation.is_some());
    let prepared = service.prepare(&DiscoveryRequest::new()).expect("prepare");
    prepared.control().cancel();
    prepared.run().expect("cancelled request still returns a partial");
    assert!(service.submit(&DiscoveryRequest::new().with_base("ghost")).is_err());
}

#[test]
fn concurrent_mixed_outcomes_reconcile_exactly() {
    let n_clients = 4u64;
    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default().with_cache(true));
    thread::scope(|s| {
        for _ in 0..n_clients {
            s.spawn(|| play_mixed_hand(&service));
        }
    });

    let (ok, truncated, cancelled, rejected) = PER_CLIENT;
    let stats = service.stats();
    assert_eq!(stats.requests_ok, n_clients * ok);
    assert_eq!(stats.requests_truncated, n_clients * truncated);
    assert_eq!(stats.requests_cancelled, n_clients * cancelled);
    assert_eq!(stats.requests_error, 0);
    assert_eq!(stats.requests_rejected, n_clients * rejected);
    assert_eq!(stats.requests_served, n_clients * (ok + truncated + cancelled));
    assert_eq!(stats.in_flight, 0);
    assert!(stats.peak_in_flight >= 1 && stats.peak_in_flight <= n_clients);

    // The registry tells the same story, number for number.
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("autofeat_requests_ok_total"), Some(stats.requests_ok));
    assert_eq!(snap.counter("autofeat_requests_truncated_total"), Some(stats.requests_truncated));
    assert_eq!(snap.counter("autofeat_requests_cancelled_total"), Some(stats.requests_cancelled));
    assert_eq!(snap.counter("autofeat_requests_error_total"), Some(0));
    assert_eq!(snap.counter("autofeat_requests_rejected_total"), Some(stats.requests_rejected));
    let latency = snap.histogram("autofeat_request_latency_seconds").expect("latency histogram");
    assert_eq!(latency.count, stats.requests_served, "one observation per completion");
    assert_eq!(latency.count, latency.buckets.iter().sum::<u64>());

    // The request log holds every completion (cap not reached), and its
    // per-outcome tallies sum exactly to the registry totals.
    let log = service.request_log();
    assert_eq!(log.len() as u64, stats.requests_served);
    assert_eq!(service.request_log_dropped(), 0);
    let count = |o: RequestOutcome| log.iter().filter(|r| r.outcome == o).count() as u64;
    assert_eq!(count(RequestOutcome::Ok), stats.requests_ok);
    assert_eq!(count(RequestOutcome::Truncated), stats.requests_truncated);
    assert_eq!(count(RequestOutcome::Cancelled), stats.requests_cancelled);
    let mut ids: Vec<u64> = log.iter().map(|r| r.id).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "log ids ascend in completion order");
    ids.dedup();
    assert_eq!(ids.len() as u64, stats.requests_served, "ids are unique");

    // Per-request cache attribution (PR 7) survives the telemetry layer:
    // the log records' cache deltas sum exactly to the shared cache's
    // global counters, because this service's requests are its only users.
    let hit_sum: u64 = log.iter().map(|r| r.cache_hits).sum();
    let miss_sum: u64 = log.iter().map(|r| r.cache_misses).sum();
    assert_eq!(hit_sum, stats.cache.hits, "log cache hits sum to the global counter");
    assert_eq!(miss_sum, stats.cache.misses, "log cache misses sum to the global counter");
}

#[test]
fn snapshot_during_load_never_tears() {
    let n_clients = 3;
    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default().with_cache(true));
    let outcome_sum = |snap: &autofeat::obs::MetricsSnapshot| -> u64 {
        ["ok", "truncated", "cancelled", "error"]
            .iter()
            .filter_map(|o| snap.counter(&format!("autofeat_requests_{o}_total")))
            .sum()
    };
    thread::scope(|s| {
        let clients: Vec<_> = (0..n_clients)
            .map(|_| {
                s.spawn(|| {
                    for _ in 0..3 {
                        play_mixed_hand(&service);
                    }
                })
            })
            .collect();
        let mut prev_latency = 0u64;
        let mut prev_outcomes = 0u64;
        while !clients.iter().all(|c| c.is_finished()) {
            let snap = service.metrics_snapshot();
            if let Some(h) = snap.histogram("autofeat_request_latency_seconds") {
                // Tear-freedom by construction: a histogram's count IS its
                // bucket sum, even mid-observation.
                assert_eq!(h.count, h.buckets.iter().sum::<u64>());
                assert!(h.count >= prev_latency, "histogram only grows");
                prev_latency = h.count;
                let outcomes = outcome_sum(&snap);
                assert!(outcomes >= prev_outcomes, "counters only grow");
                prev_outcomes = outcomes;
                // A snapshot reads the latency histogram before the outcome
                // counters (registration order), and every request observes
                // latency before bumping its counter — so the counters may
                // run ahead of the histogram by however many requests
                // complete during the snapshot itself, but the histogram can
                // never outrun the counters past the requests in flight.
                assert!(
                    h.count <= outcomes + n_clients as u64,
                    "latency count {} outran outcome sum {} past the client count",
                    h.count,
                    outcomes
                );
            }
        }
    });
    // Quiescent: exact agreement.
    let snap = service.metrics_snapshot();
    let h = snap.histogram("autofeat_request_latency_seconds").expect("latency");
    assert_eq!(h.count, outcome_sum(&snap));
    assert_eq!(h.count, service.stats().requests_served);
}

#[test]
fn stats_listener_serves_parseable_metrics_under_load() {
    use std::io::{Read, Write};

    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default().with_cache(true));
    let mut listener = service.serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr();
    let http_get = |path: &str| -> (String, String) {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    };

    thread::scope(|s| {
        let workers: Vec<_> =
            (0..2).map(|_| s.spawn(|| play_mixed_hand(&service))).collect();
        // Scrape while requests are in flight.
        while !workers.iter().all(|w| w.is_finished()) {
            let (head, body) = http_get("/metrics");
            assert!(head.starts_with("HTTP/1.0 200"), "{head}");
            for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
                let (_, value) = line.rsplit_once(' ').expect("name value");
                assert!(value.parse::<f64>().is_ok(), "unparseable: {line}");
            }
        }
    });

    let (_, body) = http_get("/metrics");
    for series in [
        "autofeat_request_latency_seconds_p50",
        "autofeat_request_latency_seconds_p99",
        "autofeat_requests_ok_total",
        "autofeat_requests_truncated_total",
        "autofeat_cache_resident_bytes",
        "autofeat_cache_hit_ratio",
        "autofeat_in_flight",
    ] {
        assert!(body.contains(series), "scrape missing {series}:\n{body}");
    }
    let (head, json) = http_get("/metrics.json");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(json.contains("\"schema_version\""));
    assert!(json.contains("autofeat_request_latency_seconds"));

    let (head, _) = http_get("/healthz");
    assert!(head.starts_with("HTTP/1.0 200"), "healthy while serving: {head}");
    service.shutdown();
    let (head, _) = http_get("/healthz");
    assert!(head.starts_with("HTTP/1.0 503"), "unhealthy after shutdown: {head}");
    listener.stop();
}

#[test]
fn request_log_ring_caps_and_counts_drops() {
    let service = DiscoveryService::new(lake_ctx(24), AutoFeatConfig::default());
    let extra = 10u64;
    // Deadline-starved requests complete almost immediately, so overflowing
    // the ring stays cheap.
    for _ in 0..(REQUEST_LOG_CAP as u64 + extra) {
        service
            .submit(&DiscoveryRequest::new().with_time_budget(Duration::ZERO))
            .expect("starved request returns a partial");
    }
    let log = service.request_log();
    assert_eq!(log.len(), REQUEST_LOG_CAP, "ring never exceeds its cap");
    assert_eq!(service.request_log_dropped(), extra);
    assert_eq!(log.first().expect("non-empty").id, extra + 1, "oldest records evicted first");
    assert_eq!(log.last().expect("non-empty").id, REQUEST_LOG_CAP as u64 + extra);
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("autofeat_request_log_dropped_total"), Some(extra));
    assert_eq!(
        snap.counter("autofeat_requests_truncated_total"),
        Some(REQUEST_LOG_CAP as u64 + extra),
        "drops lose log records, never counter increments"
    );
}
