//! Fault-injection harness: serialize a generated lake, corrupt it in seven
//! known ways, and assert the fail-soft pipeline — lenient ingestion with
//! quarantine, per-path error isolation, NaN-safe ranking — runs discovery
//! to completion with accurate accounting and healthy paths still ranked.

use std::collections::HashMap;

use autofeat::core::{discovery_health_report, load_lake_dir, SearchContext};
use autofeat::data::csv::{write_csv_str, CsvReadOptions};
use autofeat::datagen::{self, FaultInjector, FaultKind, RuntimeFault, RuntimeFaultKind};
use autofeat::prelude::*;

/// Build a snowflake lake, corrupt it, and write it to a temp dir.
///
/// Faults injected (all seven kinds):
/// * `s1` — dangling join keys (its subtree becomes unjoinable);
/// * `s3` — truncated export (file cut mid-row);
/// * `s4` — ragged rows;
/// * `x_empty` — copy of `s2` with every data row dropped;
/// * `x_nan` — copy of `s2` with NaN floats;
/// * `x_allnull` — copy of `s2` with one column blanked;
/// * `x_dup` — copy of `s0` with a duplicated header.
///
/// `base`, `s0`, `s2` stay healthy.
struct CorruptedLake {
    dir: std::path::PathBuf,
    /// KFK edges, including edges wiring the `x_*` copies in like their
    /// originals.
    kfk: Vec<(String, String, String, String)>,
    label: String,
    injector: FaultInjector,
    n_files: usize,
}

fn build_corrupted_lake(tag: &str) -> CorruptedLake {
    let gt = datagen::generator::generate(&datagen::GroundTruthConfig {
        n_rows: 240,
        ..Default::default()
    });
    let sf = datagen::splitter::split(&gt, &datagen::SnowflakeConfig::default());
    let mut texts: HashMap<String, String> = HashMap::new();
    texts.insert("base".into(), write_csv_str(&sf.base));
    for t in &sf.satellites {
        texts.insert(t.name().to_string(), write_csv_str(t));
    }

    let mut inj = FaultInjector::new(7);
    let corrupt =
        |inj: &mut FaultInjector, texts: &HashMap<String, String>, src: &str, out: &str, kind| {
            inj.inject(out, &texts[src], kind)
        };
    let mut files: Vec<(String, String)> = vec![
        ("base".into(), texts["base"].clone()),
        ("s0".into(), texts["s0"].clone()),
        ("s2".into(), texts["s2"].clone()),
        ("s1".into(), corrupt(&mut inj, &texts, "s1", "s1", FaultKind::DanglingKeys)),
        ("s3".into(), corrupt(&mut inj, &texts, "s3", "s3", FaultKind::TruncatedRows)),
        ("s4".into(), corrupt(&mut inj, &texts, "s4", "s4", FaultKind::RaggedRows)),
        ("x_empty".into(), corrupt(&mut inj, &texts, "s2", "x_empty", FaultKind::EmptyTable)),
        ("x_nan".into(), corrupt(&mut inj, &texts, "s2", "x_nan", FaultKind::NanFloats)),
        (
            "x_allnull".into(),
            corrupt(&mut inj, &texts, "s2", "x_allnull", FaultKind::AllNullColumn),
        ),
        ("x_dup".into(), corrupt(&mut inj, &texts, "s0", "x_dup", FaultKind::DuplicateHeader)),
    ];
    files.sort_by(|a, b| a.0.cmp(&b.0));

    let dir = std::env::temp_dir().join(format!("autofeat_fault_lake_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, text) in &files {
        std::fs::write(dir.join(format!("{name}.csv")), text).unwrap();
    }

    // KFK edges: the snowflake's own, plus the x_* copies attached exactly
    // where their source tables attach.
    let mut kfk: Vec<(String, String, String, String)> = sf
        .kfk
        .iter()
        .map(|e| {
            (
                e.parent_table.clone(),
                e.parent_column.clone(),
                e.child_table.clone(),
                e.child_column.clone(),
            )
        })
        .collect();
    let edge_of = |child: &str| {
        sf.kfk
            .iter()
            .find(|e| e.child_table == child)
            .expect("satellite has a parent edge")
            .clone()
    };
    for (copy, src) in [("x_empty", "s2"), ("x_nan", "s2"), ("x_allnull", "s2"), ("x_dup", "s0")] {
        let e = edge_of(src);
        kfk.push((e.parent_table, e.parent_column, copy.to_string(), e.child_column));
    }

    CorruptedLake {
        dir,
        kfk,
        label: sf.label.clone(),
        injector: inj,
        n_files: files.len(),
    }
}

#[test]
fn corrupted_lake_loads_with_accurate_quarantine_accounting() {
    let lake = build_corrupted_lake("load");
    let dir = &lake.dir;
    assert_eq!(lake.injector.manifest.len(), 7, "all seven fault kinds injected");

    let report = load_lake_dir(dir, &CsvReadOptions::lenient()).unwrap();
    // Every file is accounted for: loaded or quarantined, nothing dropped
    // silently.
    assert_eq!(report.tables.len() + report.quarantined.len(), lake.n_files);
    assert!(report.quarantined.iter().all(|q| !q.reason.is_empty()));

    let loaded: Vec<&str> = report.tables.iter().map(|t| t.name()).collect();
    // The healthy core must load, and load *clean*.
    for healthy in ["base", "s0", "s2"] {
        assert!(loaded.contains(&healthy), "{healthy} missing: {loaded:?}");
        assert!(
            !report.diagnostics.iter().any(|(n, _)| n == healthy),
            "{healthy} should need no repairs"
        );
    }
    // Well-formed corruptions (dangling keys, NaN floats, blanked column,
    // empty table) are not *file* defects: they load without quarantine.
    for wellformed in ["s1", "x_nan", "x_allnull", "x_empty"] {
        assert!(loaded.contains(&wellformed), "{wellformed} missing: {loaded:?}");
    }
    let x_empty = report.tables.iter().find(|t| t.name() == "x_empty").unwrap();
    assert_eq!(x_empty.n_rows(), 0);

    // Structural corruptions are caught: the truncated file is repaired (or
    // rejected), the duplicated header renamed.
    let diagnosed: Vec<&str> = report.diagnostics.iter().map(|(n, _)| n.as_str()).collect();
    let quarantined: Vec<&str> =
        report.quarantined.iter().map(|q| q.name.as_str()).collect();
    for structural in ["s3", "s4", "x_dup"] {
        assert!(
            diagnosed.contains(&structural) || quarantined.contains(&structural),
            "{structural} must be diagnosed or quarantined (diagnosed: {diagnosed:?}, \
             quarantined: {quarantined:?})"
        );
    }
    if let Some((_, d)) = report.diagnostics.iter().find(|(n, _)| n == "x_dup") {
        assert!(d.n_renamed_headers >= 1);
    }

    // Strict mode quarantines at least as much as lenient.
    let strict = load_lake_dir(dir, &CsvReadOptions::strict()).unwrap();
    assert!(strict.quarantined.len() >= report.quarantined.len());
    assert!(strict.quarantined.iter().any(|q| q.name == "x_dup"));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn discovery_over_corrupted_lake_completes_and_ranks_healthy_paths() {
    let lake = build_corrupted_lake("discover");
    let report = load_lake_dir(&lake.dir, &CsvReadOptions::lenient()).unwrap();

    // Benchmark setting over whatever survived ingestion. KFK edges may
    // reference quarantined tables; discovery must skip those hops, not die.
    let ctx =
        SearchContext::from_kfk(report.tables.clone(), &lake.kfk, "base", &lake.label).unwrap();
    let result = AutoFeat::paper().discover(&ctx).unwrap();

    // Healthy paths are still found and ranked.
    assert!(!result.ranked.is_empty(), "healthy subtree must yield paths");
    assert!(
        result.ranked.iter().any(|p| p.path.last_table() == Some("s0")
            || p.path.last_table() == Some("s2")),
        "a path through the healthy core must be ranked"
    );
    // The dangling-key table was evaluated and pruned as unjoinable — not
    // crashed on, not silently skipped.
    assert!(result.n_pruned_unjoinable >= 1, "{result:?}");
    // No truncation: the faults must not abort exploration.
    assert_eq!(result.truncation, None);
    // Scores of everything ranked are comparable (the NaN-safe ordering put
    // non-finite scores last, if any).
    for w in result.ranked.windows(2) {
        assert!(
            !w[0].score.is_nan() || w[1].score.is_nan(),
            "NaN-scored path ranked above a finite one"
        );
    }

    // The health report renders the whole story without panicking.
    let health = discovery_health_report(&result);
    assert!(health.contains("discovery:"), "{health}");

    // End to end: training on the top paths still works.
    let out = train_top_k(
        &ctx,
        &result,
        &[ModelKind::RandomForest],
        &AutoFeatConfig::paper(),
    )
    .unwrap();
    assert!(out.result.mean_accuracy() > 0.0);

    std::fs::remove_dir_all(&lake.dir).ok();
}

/// A minimal base + single-satellite lake whose tables carry `prefix`-unique
/// names, so armed runtime faults (keyed by table name, process-global)
/// cannot leak into concurrently running tests.
fn renamed_single_satellite_ctx(prefix: &str) -> (SearchContext, usize) {
    let gt = datagen::generator::generate(&datagen::GroundTruthConfig {
        n_rows: 120,
        ..Default::default()
    });
    let sf = datagen::splitter::split(
        &gt,
        &datagen::SnowflakeConfig { n_satellites: 1, ..Default::default() },
    );
    let dir = std::env::temp_dir().join(format!("autofeat_fault_{prefix}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(format!("{prefix}_base.csv")), write_csv_str(&sf.base)).unwrap();
    std::fs::write(
        dir.join(format!("{prefix}_s0.csv")),
        write_csv_str(&sf.satellites[0]),
    )
    .unwrap();
    let report = load_lake_dir(&dir, &CsvReadOptions::lenient()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let n_rows = sf.satellites[0].n_rows();
    let kfk: Vec<(String, String, String, String)> = sf
        .kfk
        .iter()
        .map(|e| {
            (
                format!("{prefix}_base"),
                e.parent_column.clone(),
                format!("{prefix}_s0"),
                e.child_column.clone(),
            )
        })
        .collect();
    let ctx = SearchContext::from_kfk(
        report.tables.clone(),
        &kfk,
        format!("{prefix}_base"),
        sf.label.clone(),
    )
    .unwrap();
    (ctx, n_rows)
}

#[test]
fn planned_runtime_panic_is_isolated_and_heals_on_disarm() {
    let (ctx, n_rows) = renamed_single_satellite_ctx("rtpanic");
    let mut inj = FaultInjector::new(11);
    let fault = inj.plan_runtime("rtpanic_s0", RuntimeFaultKind::PanicOnRow, n_rows);
    assert!((fault.value as usize) < n_rows);
    fault.arm();

    // The armed panic fires inside a worker; the run must complete with the
    // failure isolated and accounted, never abort the process.
    let result = AutoFeat::paper().discover(&ctx).unwrap();
    assert!(
        result.failures.iter().any(|f| f.error.contains("panic"))
            || result.resilience.worker_panics >= 1,
        "the injected panic must surface as an isolated failure: {result:?}"
    );
    assert!(result.ranked.is_empty(), "the only path is poisoned");

    autofeat::data::faults::disarm("rtpanic_s0");
    let healed = AutoFeat::paper().discover(&ctx).unwrap();
    assert!(healed.failures.is_empty(), "{:?}", healed.failures);
    assert_eq!(healed.resilience.worker_panics, 0);
    assert!(!healed.ranked.is_empty(), "disarming heals the lake");
}

#[test]
fn planned_slow_join_trips_the_deadline_not_an_error() {
    let (ctx, _) = renamed_single_satellite_ctx("rtslow");
    // A join far slower than the budget: the deadline must truncate the run
    // (anytime semantics), not error it, and the slow join's sleep must be
    // interruptible rather than running to completion.
    RuntimeFault { table: "rtslow_s0".into(), kind: RuntimeFaultKind::SlowJoinMs, value: 2_000 }
        .arm();
    let cfg = AutoFeatConfig::paper().with_time_budget(std::time::Duration::from_millis(40));
    let t0 = std::time::Instant::now();
    let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
    let elapsed = t0.elapsed();
    autofeat::data::faults::disarm("rtslow_s0");
    assert!(
        matches!(result.truncation, Some(TruncationReason::DeadlineExceeded { .. })),
        "expected deadline truncation, got {:?}",
        result.truncation
    );
    assert!(
        elapsed < std::time::Duration::from_millis(1_500),
        "slow join must be interrupted, not slept through: {elapsed:?}"
    );
    let health = discovery_health_report(&result);
    assert!(health.contains("time budget exhausted"), "{health}");
}

#[test]
fn every_fault_kind_alone_never_breaks_discovery() {
    // One fault at a time, applied to the single satellite of a minimal
    // lake: discovery must return Ok for every kind.
    for kind in FaultKind::all() {
        let gt = datagen::generator::generate(&datagen::GroundTruthConfig {
            n_rows: 120,
            ..Default::default()
        });
        let sf = datagen::splitter::split(
            &gt,
            &datagen::SnowflakeConfig { n_satellites: 1, ..Default::default() },
        );
        let mut inj = FaultInjector::new(13);
        let corrupted = inj.inject("s0", &write_csv_str(&sf.satellites[0]), kind);

        let dir = std::env::temp_dir().join(format!("autofeat_fault_single_{kind:?}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("base.csv"), write_csv_str(&sf.base)).unwrap();
        std::fs::write(dir.join("s0.csv"), corrupted).unwrap();

        let report = load_lake_dir(&dir, &CsvReadOptions::lenient()).unwrap();
        assert!(
            report.tables.iter().any(|t| t.name() == "base"),
            "base must survive ({kind:?})"
        );
        let kfk: Vec<(String, String, String, String)> = sf
            .kfk
            .iter()
            .map(|e| {
                (
                    e.parent_table.clone(),
                    e.parent_column.clone(),
                    e.child_table.clone(),
                    e.child_column.clone(),
                )
            })
            .collect();
        let ctx =
            SearchContext::from_kfk(report.tables.clone(), &kfk, "base", &sf.label).unwrap();
        // The point of the harness: no fault kind may panic or hard-error
        // the discovery loop.
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        let _ = discovery_health_report(&result);
        std::fs::remove_dir_all(&dir).ok();
    }
}
