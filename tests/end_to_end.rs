//! Cross-crate integration: the full AutoFeat pipeline on generated
//! datasets from the evaluation registry, in both schema settings.

use autofeat::prelude::*;
use autofeat::{context_from_lake, context_from_snowflake, datagen};

fn credit_spec() -> datagen::DatasetSpec {
    datagen::registry::dataset("credit").expect("credit registered")
}

#[test]
fn benchmark_setting_autofeat_beats_base() {
    let spec = credit_spec();
    let sf = spec.build_snowflake();
    let ctx = context_from_snowflake(&sf).unwrap();
    let models = [ModelKind::RandomForest];

    let base = run_base(&ctx, &models, 7).unwrap();

    let cfg = AutoFeatConfig::paper().with_seed(7);
    let discovery = AutoFeat::new(cfg.clone()).discover(&ctx).unwrap();
    assert!(!discovery.ranked.is_empty(), "discovery must find paths in a KFK snowflake");
    let out = train_top_k(&ctx, &discovery, &models, &cfg).unwrap();

    assert!(
        out.result.mean_accuracy() > base.mean_accuracy() + 0.1,
        "AutoFeat ({:.3}) must clearly beat BASE ({:.3}) when the signal is planted deep",
        out.result.mean_accuracy(),
        base.mean_accuracy()
    );
}

#[test]
fn benchmark_setting_discovers_deep_features() {
    let spec = credit_spec();
    let sf = spec.build_snowflake();
    let max_depth = sf.max_depth();
    assert!(max_depth >= 2, "credit snowflake should be multi-hop");
    // The strongest informative feature lives at max depth.
    let deep_table = sf.placement.get("inf_0").unwrap().clone();
    assert_eq!(sf.depth[&deep_table], max_depth);

    let ctx = context_from_snowflake(&sf).unwrap();
    let discovery = AutoFeat::paper().discover(&ctx).unwrap();
    // Transitivity: some selected feature must come from a table at depth
    // ≥ 2 (only reachable via multi-hop joins). Note the *specific* deepest
    // informative column may legitimately be dropped when a shallower
    // redundant image of it (a planted `red_*` copy) was selected first —
    // that is the redundancy analysis doing its job.
    let deep_selected = discovery.selected_features.iter().any(|f| {
        f.split('.').next().is_some_and(|t| sf.depth.get(t).copied().unwrap_or(0) >= 2)
    });
    assert!(
        deep_selected,
        "features from depth ≥ 2 should be selected: {:?}",
        discovery.selected_features
    );
    // And the label signal must be captured: either an informative feature
    // or one of its redundant images appears among the selections.
    let signal_selected = discovery
        .selected_features
        .iter()
        .any(|f| f.contains("inf_") || f.contains("red_"));
    assert!(
        signal_selected,
        "no signal-carrying feature selected: {:?}",
        discovery.selected_features
    );
}

#[test]
fn data_lake_setting_runs_and_is_denser() {
    let spec = credit_spec();
    let sf = spec.build_snowflake();
    let kfk_edges = sf.build_drg().n_edges();
    let lake = spec.build_lake();
    let ctx = context_from_lake(&lake, &SchemaMatcher::paper_default()).unwrap();
    assert!(
        ctx.drg().n_edges() >= kfk_edges,
        "lake discovery should find at least the true edges: {} vs {kfk_edges}",
        ctx.drg().n_edges()
    );
    let discovery = AutoFeat::paper().discover(&ctx).unwrap();
    assert!(!discovery.ranked.is_empty());
    let out = train_top_k(
        &ctx,
        &discovery,
        &[ModelKind::RandomForest],
        &AutoFeatConfig::paper(),
    )
    .unwrap();
    assert!(out.result.mean_accuracy() > 0.6);
}

#[test]
fn star_schema_school_limits_depth_to_one() {
    let spec = datagen::registry::dataset("school").unwrap();
    let sf = spec.build_snowflake();
    let ctx = context_from_snowflake(&sf).unwrap();
    let discovery = AutoFeat::paper().discover(&ctx).unwrap();
    assert!(
        discovery.ranked.iter().all(|r| r.path.len() == 1),
        "a star schema has only single-hop paths"
    );
}

#[test]
fn ranking_prefers_paths_with_informative_features() {
    let spec = credit_spec();
    let sf = spec.build_snowflake();
    let ctx = context_from_snowflake(&sf).unwrap();
    let discovery = AutoFeat::paper().discover(&ctx).unwrap();
    // The best-ranked path must carry at least one selected feature.
    let best = &discovery.ranked[0];
    assert!(
        !best.features.is_empty(),
        "top-ranked path should contribute features: {}",
        best.path
    );
    // Scores are non-increasing.
    for w in discovery.ranked.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let spec = credit_spec();
    let sf = spec.build_snowflake();
    let ctx = context_from_snowflake(&sf).unwrap();
    let cfg = AutoFeatConfig::paper().with_seed(3);
    let a = AutoFeat::new(cfg.clone()).discover(&ctx).unwrap();
    let b = AutoFeat::new(cfg.clone()).discover(&ctx).unwrap();
    assert_eq!(a.ranked.len(), b.ranked.len());
    let ta = train_top_k(&ctx, &a, &[ModelKind::LightGbm], &cfg).unwrap();
    let tb = train_top_k(&ctx, &b, &[ModelKind::LightGbm], &cfg).unwrap();
    assert_eq!(ta.result.accuracy_per_model, tb.result.accuracy_per_model);
}
