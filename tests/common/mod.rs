//! Shared fixtures and assertions for the integration tests.
//!
//! Each test binary compiles this module independently and typically uses a
//! subset of it, so dead-code lints are suppressed at the module level.
#![allow(dead_code)]

use autofeat::prelude::*;

/// A snowflake-ish lake with duplicate join keys (so representative picks
/// matter), a transitive chain, a fan-out of siblings, and an unjoinable
/// table — enough structure to exercise every pruning branch.
pub fn lake_ctx(n: usize) -> SearchContext {
    lake_ctx_permuted(n, 1)
}

/// [`lake_ctx`] with every satellite's rows reordered by the permutation
/// `i ↦ (i * stride) mod m` (`stride` must be coprime to every satellite's
/// row count; any odd stride is, since row counts here are `3n` and `n`
/// with even `n`). `stride == 1` is the identity layout. Representative
/// picks are content-addressed, so discovery results must be bit-identical
/// across strides.
pub fn lake_ctx_permuted(n: usize, stride: usize) -> SearchContext {
    let permute = |m: usize| -> Vec<usize> {
        let p: Vec<usize> = (0..m).map(|i| (i * stride) % m).collect();
        let mut seen = vec![false; m];
        for &i in &p {
            assert!(!seen[i], "stride {stride} is not coprime to {m}");
            seen[i] = true;
        }
        p
    };
    let ints = |vals: &[i64], order: &[usize]| {
        Column::from_ints(order.iter().map(|&i| Some(vals[i])).collect::<Vec<_>>())
    };
    let floats = |vals: &[f64], order: &[usize]| {
        Column::from_floats(order.iter().map(|&i| Some(vals[i])).collect::<Vec<_>>())
    };

    let labels: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 2).collect();
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            (
                "b0",
                Column::from_floats((0..n).map(|i| Some(((i * 29) % 23) as f64)).collect::<Vec<_>>()),
            ),
            ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    // 3 rows per key, feature values differ per duplicate: picks observable.
    let m3 = n * 3;
    let p3 = permute(m3);
    let p1 = permute(n);
    let dup_keys: Vec<i64> = (0..m3 as i64).map(|i| i / 3).collect();
    let s1 = Table::new(
        "s1",
        vec![
            ("k", ints(&dup_keys, &p3)),
            ("k2", ints(&(0..m3 as i64).map(|i| 500 + i / 3).collect::<Vec<_>>(), &p3)),
            ("f1", floats(&(0..m3 as i64).map(|i| ((i * 13) % 41) as f64).collect::<Vec<_>>(), &p3)),
        ],
    )
    .unwrap();
    let s2 = Table::new(
        "s2",
        vec![
            ("k2", ints(&(0..n as i64).map(|i| 500 + i).collect::<Vec<_>>(), &p1)),
            ("deep", floats(&labels.iter().map(|&l| l as f64).collect::<Vec<_>>(), &p1)),
        ],
    )
    .unwrap();
    let sib = Table::new(
        "sib",
        vec![
            ("k", ints(&dup_keys, &p3)),
            ("g", floats(&(0..m3 as i64).map(|i| ((i * 5) % 17) as f64).collect::<Vec<_>>(), &p3)),
        ],
    )
    .unwrap();
    // Keys never match the base: the unjoinable-pruning branch.
    let orphan = Table::new(
        "orphan",
        vec![
            ("k", ints(&(9000..9000 + n as i64).collect::<Vec<_>>(), &p1)),
            ("h", floats(&(0..n).map(|i| i as f64).collect::<Vec<_>>(), &p1)),
        ],
    )
    .unwrap();
    SearchContext::from_kfk(
        vec![base, s1, s2, sib, orphan],
        &[
            ("base".into(), "k".into(), "s1".into(), "k".into()),
            ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ("base".into(), "k".into(), "sib".into(), "k".into()),
            ("base".into(), "k".into(), "orphan".into(), "k".into()),
        ],
        "base",
        "target",
    )
    .unwrap()
}

/// A *uniform* wide lake: `n_sat` sibling satellites off the base table,
/// every satellite the same shape (`n_rows * dup` rows, `dup` duplicate
/// rows per key, one feature column) — so every join index has the same
/// byte footprint. Memory-governance tests need uniform entry sizes: with
/// them, how many indexes fit a budget (and how many evictions a budget
/// shrink takes) is a pure function of the budget, independent of *which*
/// entries the thread schedule admitted first.
pub fn wide_uniform_ctx(n_sat: usize, n_rows: usize, dup: usize) -> SearchContext {
    let labels: Vec<i64> = (0..n_rows as i64).map(|i| (i * 7) % 2).collect();
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n_rows as i64).map(Some).collect::<Vec<_>>())),
            (
                "b0",
                Column::from_floats(
                    (0..n_rows).map(|i| Some(((i * 29) % 23) as f64)).collect::<Vec<_>>(),
                ),
            ),
            ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    let mut tables = vec![base];
    let mut kfk: Vec<(String, String, String, String)> = Vec::new();
    for j in 0..n_sat {
        let name = format!("sat{j:02}");
        let m = n_rows * dup;
        let keys: Vec<Option<i64>> = (0..m as i64).map(|i| Some(i / dup as i64)).collect();
        let vals: Vec<Option<f64>> =
            (0..m).map(|i| Some(((i * (13 + j) + j * 7) % 101) as f64)).collect();
        tables.push(
            Table::new(
                name.clone(),
                vec![("k", Column::from_ints(keys)), ("f", Column::from_floats(vals))],
            )
            .unwrap(),
        );
        kfk.push(("base".into(), "k".into(), name, "k".into()));
    }
    SearchContext::from_kfk(tables, &kfk, "base", "target").unwrap()
}

/// The same lake with all ingest key metadata (dictionaries + row
/// fingerprints) stripped, forcing every join index onto the hashed
/// fallback path. Dict-determinism tests compare discovery over a context
/// against its dictless twin bit-for-bit.
pub fn dictless_twin(ctx: &SearchContext) -> SearchContext {
    let tables: Vec<Table> = ctx
        .table_names()
        .iter()
        .map(|n| ctx.table(n).unwrap().clone().strip_key_meta())
        .collect();
    SearchContext::new(tables, ctx.drg().clone(), ctx.base_name(), ctx.label()).unwrap()
}

/// Everything except the informational `threads_used`/`elapsed`/`cache`
/// fields must match to the bit.
pub fn assert_bit_identical(a: &DiscoveryResult, b: &DiscoveryResult, what: &str) {
    assert_eq!(a.ranked.len(), b.ranked.len(), "{what}: ranked length");
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(x.path, y.path, "{what}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{what}: score bits of {}",
            x.path
        );
        assert_eq!(x.features, y.features, "{what}: features of {}", x.path);
    }
    assert_eq!(a.n_joins_evaluated, b.n_joins_evaluated, "{what}");
    assert_eq!(a.n_pruned_unjoinable, b.n_pruned_unjoinable, "{what}");
    assert_eq!(a.n_pruned_quality, b.n_pruned_quality, "{what}");
    assert_eq!(a.n_pruned_similarity, b.n_pruned_similarity, "{what}");
    assert_eq!(a.n_pruned_budget, b.n_pruned_budget, "{what}");
    assert_eq!(a.truncated, b.truncated, "{what}");
    assert_eq!(a.truncation, b.truncation, "{what}");
    assert_eq!(a.failures.len(), b.failures.len(), "{what}");
    assert_eq!(a.selected_features, b.selected_features, "{what}");
}
