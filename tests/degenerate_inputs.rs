//! Degenerate discovery inputs must yield a clean `DiscoveryResult` (or a
//! typed error) — never a panic: empty base table, single-class label,
//! all-null candidate columns, constant features.

use autofeat::prelude::*;

fn kfk_ctx(tables: Vec<Table>) -> SearchContext {
    SearchContext::from_kfk(
        tables,
        &[("base".into(), "k".into(), "ext".into(), "k".into())],
        "base",
        "target",
    )
    .unwrap()
}

fn int_col(vals: Vec<Option<i64>>) -> Column {
    Column::from_ints(vals)
}

#[test]
fn empty_base_table_discovers_cleanly() {
    let base = Table::new(
        "base",
        vec![("k", int_col(vec![])), ("target", int_col(vec![]))],
    )
    .unwrap();
    let ext = Table::new(
        "ext",
        vec![
            ("k", int_col((0..10).map(Some).collect())),
            ("f", Column::from_floats((0..10).map(|i| Some(i as f64)).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    let ctx = kfk_ctx(vec![base, ext]);
    let r = AutoFeat::paper().discover(&ctx).unwrap();
    // A join against zero base rows is *vacuous*, not unjoinable: there is
    // no evidence the keys mismatch (`match_ratio()` is `None`), so it must
    // not be counted as a pruned-unjoinable path. It contributes no
    // features either way.
    assert_eq!(r.n_pruned_unjoinable, 0);
    assert!(r.selected_features.is_empty());
    assert!(r.ranked.iter().all(|p| p.features.is_empty()));
    assert!(r.failures.is_empty());
}

#[test]
fn single_class_label_discovers_cleanly() {
    let n = 60i64;
    let base = Table::new(
        "base",
        vec![
            ("k", int_col((0..n).map(Some).collect())),
            // Every row has the same class.
            ("target", int_col(vec![Some(1); n as usize])),
        ],
    )
    .unwrap();
    let ext = Table::new(
        "ext",
        vec![
            ("k", int_col((0..n).map(Some).collect())),
            ("f", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    let ctx = kfk_ctx(vec![base, ext]);
    // Correlation against a constant label is NaN everywhere; selection must
    // filter, ranking must stay total, and the run must complete.
    let r = AutoFeat::paper().discover(&ctx).unwrap();
    assert_eq!(r.failures.len(), 0);
    for rp in &r.ranked {
        assert!(!rp.score.is_nan() || r.ranked.len() == 1, "NaN-only ranking");
    }
}

#[test]
fn all_null_candidate_column_is_quality_pruned() {
    let n = 80i64;
    let base = Table::new(
        "base",
        vec![
            ("k", int_col((0..n).map(Some).collect())),
            ("target", int_col((0..n).map(|i| Some(i % 2)).collect())),
        ],
    )
    .unwrap();
    let ext = Table::new(
        "ext",
        vec![
            ("k", int_col((0..n).map(Some).collect())),
            // The candidate feature is null in every row.
            ("f", Column::from_floats(vec![None; n as usize])),
        ],
    )
    .unwrap();
    let ctx = kfk_ctx(vec![base, ext]);
    let r = AutoFeat::paper().discover(&ctx).unwrap();
    // Completeness of the joined-in columns is far below τ = 0.65.
    assert_eq!(r.n_pruned_quality, 1);
    assert!(r.ranked.is_empty());
    assert!(r.failures.is_empty());
}

#[test]
fn base_with_only_label_column_discovers() {
    let n = 50i64;
    let base = Table::new(
        "base",
        vec![
            ("k", int_col((0..n).map(Some).collect())),
            ("target", int_col((0..n).map(|i| Some(i % 2)).collect())),
        ],
    )
    .unwrap();
    let ext = Table::new(
        "ext",
        vec![
            ("k", int_col((0..n).map(Some).collect())),
            (
                "f",
                Column::from_floats((0..n).map(|i| Some((i % 2) as f64)).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap();
    let ctx = kfk_ctx(vec![base, ext]);
    let r = AutoFeat::paper().discover(&ctx).unwrap();
    assert_eq!(r.ranked.len(), 1);
    assert!(r.selected_features.iter().any(|f| f == "ext.f"));
}

#[test]
fn disconnected_base_yields_empty_result() {
    let n = 30i64;
    let base = Table::new(
        "base",
        vec![
            ("k", int_col((0..n).map(Some).collect())),
            ("target", int_col((0..n).map(|i| Some(i % 2)).collect())),
        ],
    )
    .unwrap();
    // No KFK edges at all.
    let ctx = SearchContext::from_kfk(vec![base], &[], "base", "target").unwrap();
    let r = AutoFeat::paper().discover(&ctx).unwrap();
    assert!(r.ranked.is_empty());
    assert_eq!(r.n_joins_evaluated, 0);
    assert_eq!(r.truncation, None);
    assert!(r.failures.is_empty());
}
