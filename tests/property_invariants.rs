//! Property-based tests (proptest) over the core data structures and
//! invariants of the pipeline.

use autofeat::data::join::left_join_normalized;
use autofeat::data::sample::{stratified_sample, train_test_split};
use autofeat::metrics::discretize::{discretize_equal_frequency, Discretized};
use autofeat::metrics::entropy::entropy;
use autofeat::metrics::mi::mutual_information;
use autofeat::metrics::ranks::average_ranks;
use autofeat::metrics::relevance::{pearson_correlation, spearman_correlation};
use autofeat::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn int_column(values: &[i64]) -> Column {
    Column::from_ints(values.iter().map(|&v| Some(v)).collect::<Vec<_>>())
}

proptest! {
    /// A normalized left join always preserves the left row count exactly,
    /// whatever the key multiplicities on either side.
    #[test]
    fn left_join_preserves_row_count(
        left_keys in prop::collection::vec(0i64..20, 1..60),
        right_keys in prop::collection::vec(0i64..20, 0..120),
        seed in 0u64..1000,
    ) {
        let left = Table::new("l", vec![("k", int_column(&left_keys))]).unwrap();
        let rvals: Vec<Option<f64>> = right_keys.iter().map(|&k| Some(k as f64)).collect();
        let right = Table::new(
            "r",
            vec![("k", int_column(&right_keys)), ("v", Column::from_floats(rvals))],
        )
        .unwrap();
        let out = left_join_normalized(&left, &right, "k", "k", "r", seed).unwrap();
        prop_assert_eq!(out.table.n_rows(), left.n_rows());
    }

    /// After a normalized join, each matched row's value comes from a right
    /// row with the same key (representative consistency).
    #[test]
    fn join_values_match_their_key(
        keys in prop::collection::vec(0i64..10, 1..40),
        seed in 0u64..100,
    ) {
        let left = Table::new("l", vec![("k", int_column(&keys))]).unwrap();
        // Right: value = key * 100 for every duplicate, so any
        // representative satisfies v = k*100.
        let rkeys: Vec<i64> = (0..10).flat_map(|k| vec![k, k, k]).collect();
        let rvals: Vec<Option<i64>> = rkeys.iter().map(|&k| Some(k * 100)).collect();
        let right = Table::new(
            "r",
            vec![("k", int_column(&rkeys)), ("v", Column::from_ints(rvals))],
        )
        .unwrap();
        let out = left_join_normalized(&left, &right, "k", "k", "r", seed).unwrap();
        for i in 0..out.table.n_rows() {
            if let Value::Int(v) = out.table.value("r.v", i).unwrap() {
                let k = match out.table.value("k", i).unwrap() {
                    Value::Int(k) => k,
                    other => panic!("unexpected key {other:?}"),
                };
                prop_assert_eq!(v, k * 100);
            }
        }
    }

    /// Stratified splitting partitions rows exactly and disjointly.
    #[test]
    fn split_partitions_exactly(
        n_pos in 2usize..50,
        n_neg in 2usize..50,
        frac in 0.1f64..0.5,
        seed in 0u64..100,
    ) {
        let labels: Vec<Option<bool>> = (0..n_pos).map(|_| Some(true))
            .chain((0..n_neg).map(|_| Some(false))).collect();
        let ids: Vec<Option<i64>> = (0..(n_pos + n_neg) as i64).map(Some).collect();
        let t = Table::new("t", vec![
            ("id", Column::from_ints(ids)),
            ("y", Column::from_bools(labels)),
        ]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = train_test_split(&t, "y", frac, &mut rng).unwrap();
        prop_assert_eq!(s.train.n_rows() + s.test.n_rows(), n_pos + n_neg);
        prop_assert!(s.train.n_rows() > 0);
    }

    /// Stratified sampling never returns more rows than the table has and
    /// keeps every class present.
    #[test]
    fn stratified_sample_keeps_classes(
        n_pos in 1usize..40,
        n_neg in 1usize..40,
        frac in 0.05f64..1.0,
        seed in 0u64..100,
    ) {
        let labels: Vec<Option<bool>> = (0..n_pos).map(|_| Some(true))
            .chain((0..n_neg).map(|_| Some(false))).collect();
        let ids: Vec<Option<i64>> = (0..(n_pos + n_neg) as i64).map(Some).collect();
        let t = Table::new("t", vec![
            ("id", Column::from_ints(ids)),
            ("y", Column::from_bools(labels)),
        ]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = stratified_sample(&t, "y", frac, &mut rng).unwrap();
        prop_assert!(s.n_rows() <= t.n_rows());
        let col = s.column("y").unwrap();
        let pos = (0..col.len()).filter(|&i| col.get_f64(i) == Some(1.0)).count();
        prop_assert!(pos >= 1, "positive class vanished");
        prop_assert!(s.n_rows() - pos >= 1, "negative class vanished");
    }

    /// Entropy is bounded by log2(number of bins).
    #[test]
    fn entropy_bounded_by_log_bins(codes in prop::collection::vec(0i64..8, 1..200)) {
        let d = Discretized::from_codes(codes.iter().map(|&c| Some(c)));
        let h = entropy(&d);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (d.n_bins.max(1) as f64).log2() + 1e-9, "H={h}, bins={}", d.n_bins);
    }

    /// Mutual information is symmetric and bounded by min(H(X), H(Y)).
    #[test]
    fn mi_symmetric_and_bounded(
        x in prop::collection::vec(0i64..5, 10..150),
        ys in prop::collection::vec(0i64..5, 10..150),
    ) {
        let n = x.len().min(ys.len());
        let dx = Discretized::from_codes(x[..n].iter().map(|&c| Some(c)));
        let dy = Discretized::from_codes(ys[..n].iter().map(|&c| Some(c)));
        let mi_xy = mutual_information(&dx, &dy);
        let mi_yx = mutual_information(&dy, &dx);
        prop_assert!((mi_xy - mi_yx).abs() < 1e-9);
        prop_assert!(mi_xy >= 0.0);
        prop_assert!(mi_xy <= entropy(&dx).min(entropy(&dy)) + 1e-9);
    }

    /// Correlations stay within [-1, 1] for arbitrary finite inputs.
    #[test]
    fn correlations_bounded(
        pairs in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..100),
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let p = pearson_correlation(&x, &y);
        let s = spearman_correlation(&x, &y);
        prop_assert!((-1.0..=1.0).contains(&p), "pearson {p}");
        prop_assert!((-1.0..=1.0).contains(&s), "spearman {s}");
    }

    /// Average ranks are a permutation-respecting assignment: they sum to
    /// n(n+1)/2 for distinct finite inputs.
    #[test]
    fn ranks_sum_invariant(values in prop::collection::hash_set(-1000i64..1000, 1..80)) {
        let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
        let ranks = average_ranks(&v);
        let sum: f64 = ranks.iter().sum();
        let n = v.len() as f64;
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Equal-frequency discretization is monotone: larger values never get
    /// smaller bin codes.
    #[test]
    fn discretization_is_monotone(values in prop::collection::vec(-1e9f64..1e9, 2..200)) {
        let d = discretize_equal_frequency(&values, 8);
        let mut pairs: Vec<(f64, u32)> = values
            .iter()
            .zip(&d.codes)
            .map(|(&v, c)| (v, c.unwrap()))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// MinHash's Jaccard estimate tracks the exact Jaccard within the
    /// sketch's sampling error.
    #[test]
    fn minhash_tracks_exact_jaccard(
        overlap in 0usize..400,
        extra_a in 1usize..200,
        extra_b in 1usize..200,
    ) {
        use autofeat::discovery::MinHash;
        use std::collections::HashSet;
        let hash = |v: u64| autofeat::discovery::value_sim::stable_hash(&v.to_le_bytes());
        let a_vals: Vec<u64> = (0..(overlap + extra_a) as u64).collect();
        let b_vals: Vec<u64> = (0..overlap as u64)
            .chain(1_000_000..(1_000_000 + extra_b as u64))
            .collect();
        let sa: HashSet<u64> = a_vals.iter().map(|&v| hash(v)).collect();
        let sb: HashSet<u64> = b_vals.iter().map(|&v| hash(v)).collect();
        let exact = autofeat::discovery::value_sim::jaccard(&sa, &sb);
        let ma = MinHash::from_hashes(256, sa.iter().copied());
        let mb = MinHash::from_hashes(256, sb.iter().copied());
        let est = ma.jaccard(&mb);
        // 256 slots ⇒ σ ≈ sqrt(J(1−J)/256) ≤ 0.032; allow 6σ.
        prop_assert!((est - exact).abs() < 0.2, "est {est} vs exact {exact}");
    }

    /// group_by count aggregates partition the table: counts over a
    /// non-null column sum to its non-null cells.
    #[test]
    fn group_by_counts_partition(
        keys in prop::collection::vec(0i64..6, 1..80),
    ) {
        use autofeat::data::ops::{group_by, Aggregate};
        let vals: Vec<Option<f64>> = keys.iter().map(|&k| Some(k as f64)).collect();
        let t = Table::new("t", vec![
            ("g", int_column(&keys)),
            ("x", Column::from_floats(vals)),
        ]).unwrap();
        let g = group_by(&t, "g", &[("x", Aggregate::Count)]).unwrap();
        let total: f64 = (0..g.n_rows())
            .map(|i| g.value("x_count", i).unwrap().as_f64().unwrap())
            .sum();
        prop_assert_eq!(total as usize, keys.len());
        // One group per distinct key.
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(g.n_rows(), distinct.len());
    }

    /// Tree classifiers only ever predict labels they saw at fit time.
    #[test]
    fn tree_predictions_stay_in_label_set(
        labels in prop::collection::vec(0i64..4, 10..60),
        queries in prop::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        use autofeat::ml::eval::Classifier;
        use autofeat::ml::tree::{DecisionTree, TreeConfig};
        let x: Vec<f64> = (0..labels.len()).map(|i| i as f64).collect();
        let m = autofeat::data::encode::Matrix {
            feature_names: vec!["x".into()],
            cols: vec![x],
            labels: labels.clone(),
            n_rows: labels.len(),
        };
        let mut t = DecisionTree::new(TreeConfig::default(), 0);
        t.fit(&m).unwrap();
        for q in queries {
            let p = t.predict_row(&[q]);
            prop_assert!(labels.contains(&p), "predicted unseen label {p}");
        }
    }

    /// CSV roundtrip preserves integer tables exactly.
    #[test]
    fn csv_roundtrip_ints(rows in prop::collection::vec((-1000i64..1000, -1000i64..1000), 1..50)) {
        let a: Vec<Option<i64>> = rows.iter().map(|r| Some(r.0)).collect();
        let b: Vec<Option<i64>> = rows.iter().map(|r| Some(r.1)).collect();
        let t = Table::new("t", vec![
            ("a", Column::from_ints(a)),
            ("b", Column::from_ints(b)),
        ]).unwrap();
        let text = autofeat::data::csv::write_csv_str(&t);
        let back = autofeat::data::csv::read_csv_str("t", &text).unwrap();
        prop_assert_eq!(back, t);
    }
}
