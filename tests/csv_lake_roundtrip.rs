//! Integration: persist a generated lake to CSV files, read it back, and
//! run the full data-lake pipeline on the reloaded tables — exercising the
//! CSV reader/writer, type inference, discovery, and Algorithm 1 together.

use autofeat::data::csv::{read_csv, write_csv};
use autofeat::prelude::*;
use autofeat::{context_from_lake, datagen};

#[test]
fn csv_roundtrip_preserves_pipeline_behaviour() {
    let gt = datagen::generator::generate(&datagen::GroundTruthConfig {
        n_rows: 300,
        ..Default::default()
    });
    let sf = datagen::splitter::split(&gt, &datagen::SnowflakeConfig::default());
    let lake = datagen::lake::corrupt_to_lake(&sf, &datagen::LakeConfig::default());

    // Persist every table.
    let dir = std::env::temp_dir().join("autofeat_csv_lake");
    std::fs::create_dir_all(&dir).unwrap();
    for t in &lake.tables {
        write_csv(t, dir.join(format!("{}.csv", t.name()))).unwrap();
    }

    // Reload.
    let mut reloaded = Vec::new();
    for t in &lake.tables {
        let back = read_csv(dir.join(format!("{}.csv", t.name()))).unwrap();
        assert_eq!(back.n_rows(), t.n_rows(), "row count for {}", t.name());
        assert_eq!(back.n_cols(), t.n_cols(), "col count for {}", t.name());
        reloaded.push(back);
    }

    // Rerun the lake pipeline on the reloaded tables.
    let reloaded_lake = datagen::lake::Lake {
        tables: reloaded,
        base_name: lake.base_name.clone(),
        label: lake.label.clone(),
    };
    let ctx = context_from_lake(&reloaded_lake, &SchemaMatcher::paper_default()).unwrap();
    let discovery = AutoFeat::paper().discover(&ctx).unwrap();
    assert!(
        !discovery.ranked.is_empty(),
        "reloaded lake should still yield join paths"
    );

    let out = train_top_k(
        &ctx,
        &discovery,
        &[ModelKind::RandomForest],
        &AutoFeatConfig::paper(),
    )
    .unwrap();
    assert!(out.result.mean_accuracy() > 0.5);

    std::fs::remove_dir_all(&dir).ok();
}
