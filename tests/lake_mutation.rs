//! Incremental lake mutation: any add/remove sequence over a live
//! discovery-built [`SearchContext`] must leave the lake — DRG and
//! discovery results alike — **bit-identical** to a fresh
//! [`SearchContext::from_discovery`] over the final table set, and a
//! resident [`DiscoveryService`] must keep serving coherent snapshots
//! while the mutations land. Runs under both `AUTOFEAT_THREADS=1` and
//! `=4` in CI.

mod common;

use std::sync::Barrier;
use std::thread;

use autofeat::graph::Drg;
use autofeat::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Fixtures: a base table plus a pool of candidate satellites covering every
// edge-provenance flavour — value+name joinable, value-only (different
// name, overlapping domain), name-only (same name, disjoint domain — the
// recall case the all-pairs fallback used to lose under LSH), and
// unjoinable noise.
// ---------------------------------------------------------------------------

const N: i64 = 30;

fn base_table() -> Table {
    Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..N).map(Some).collect::<Vec<_>>())),
            (
                "target",
                Column::from_ints((0..N).map(|i| Some((i * 7) % 2)).collect::<Vec<_>>()),
            ),
        ],
    )
    .unwrap()
}

/// The mutation pool, indexed 0..6. Each entry is a distinct table name.
fn pool_table(i: usize) -> Table {
    let ints = |lo: i64, hi: i64| Column::from_ints((lo..hi).map(Some).collect::<Vec<_>>());
    let feats =
        |mul: i64| Column::from_floats((0..N).map(|v| Some((v * mul) as f64)).collect::<Vec<_>>());
    match i {
        // Name + value joinable to base.k.
        0 => Table::new("p0", vec![("k", ints(0, N)), ("a", feats(3))]).unwrap(),
        // Partial value overlap, same name.
        1 => Table::new("p1", vec![("k", ints(5, N + 5)), ("b", feats(5))]).unwrap(),
        // Different name, overlapping value domain: instance-driven edge.
        2 => Table::new("p2", vec![("key_id", ints(0, N)), ("c", feats(7))]).unwrap(),
        // Same name, tiny value overlap (5/30, jaccard ≈ 0.09): a
        // name-driven edge the LSH bands alone catch only by luck — the
        // hybrid name pass must produce it deterministically.
        3 => Table::new("p3", vec![("k", ints(25, 25 + N)), ("d", feats(11))]).unwrap(),
        // Unjoinable noise: different name AND disjoint domain.
        4 => Table::new("p4", vec![("z", ints(5000, 5000 + N)), ("e", feats(13))]).unwrap(),
        // Joins p2's domain through its own key column name.
        5 => Table::new("p5", vec![("key_id", ints(10, N + 10)), ("f", feats(17))]).unwrap(),
        _ => panic!("pool index out of range: {i}"),
    }
}

fn pool_name(i: usize) -> &'static str {
    ["p0", "p1", "p2", "p3", "p4", "p5"][i]
}

fn fresh_ctx(members: &[usize]) -> SearchContext {
    let mut tables = vec![base_table()];
    tables.extend(members.iter().map(|&i| pool_table(i)));
    SearchContext::from_discovery(tables, &SchemaMatcher::paper_default(), "base", "target")
        .unwrap()
}

/// Canonical edge multiset: endpoints by *name* (node ids are
/// order-sensitive), weights by bit pattern.
fn canonical_edges(drg: &Drg) -> Vec<(String, String, String, String, u64)> {
    let mut out: Vec<_> = drg
        .edges()
        .iter()
        .map(|e| {
            (
                drg.table_name(e.a).to_string(),
                e.a_column.clone(),
                drg.table_name(e.b).to_string(),
                e.b_column.clone(),
                e.weight.to_bits(),
            )
        })
        .collect();
    out.sort();
    out
}

fn assert_drg_identical(mutated: &Drg, fresh: &Drg) {
    let mut a: Vec<_> = mutated.nodes().map(|n| mutated.table_name(n).to_string()).collect();
    let mut b: Vec<_> = fresh.nodes().map(|n| fresh.table_name(n).to_string()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "node sets differ");
    assert_eq!(canonical_edges(mutated), canonical_edges(fresh), "edge multisets differ");
}

fn results_equal(a: &DiscoveryResult, b: &DiscoveryResult) -> bool {
    a.ranked.len() == b.ranked.len()
        && a.selected_features == b.selected_features
        && a.ranked.iter().zip(&b.ranked).all(|(x, y)| {
            x.path == y.path
                && x.score.to_bits() == y.score.to_bits()
                && x.features == y.features
        })
}

/// Replay `ops` against a live mutable context, tracking the expected
/// member set. Returns the context and the final members.
fn replay(ops: &[(bool, usize)]) -> (SearchContext, Vec<usize>) {
    let ctx = fresh_ctx(&[]);
    let mut members: Vec<usize> = Vec::new();
    for &(add, i) in ops {
        if add {
            if members.contains(&i) {
                assert!(ctx.add_table(pool_table(i)).is_err(), "duplicate add must error");
            } else {
                ctx.add_table(pool_table(i)).unwrap();
                members.push(i);
            }
        } else if members.contains(&i) {
            ctx.remove_table(pool_name(i)).unwrap();
            members.retain(|&m| m != i);
        } else {
            assert!(ctx.remove_table(pool_name(i)).is_err(), "missing remove must error");
        }
    }
    (ctx, members)
}

proptest! {
    /// THE mutation invariant: any interleaving of adds and removes lands
    /// on a DRG bit-identical to building fresh over the final set.
    #[test]
    fn any_mutation_sequence_converges_to_fresh_build(
        raw_ops in prop::collection::vec((0usize..2, 0usize..6), 0..14),
    ) {
        let ops: Vec<(bool, usize)> = raw_ops.iter().map(|&(a, i)| (a == 1, i)).collect();
        let (ctx, members) = replay(&ops);
        let latest = ctx.latest();
        let fresh = fresh_ctx(&members);
        assert_drg_identical(latest.drg(), fresh.drg());
        prop_assert_eq!(latest.n_tables(), members.len() + 1);
    }
}

/// Full-pipeline flavour of the invariant: discovery results (ranked
/// paths, scores, selected features) over the mutated lake are
/// bit-identical to a fresh build. Scripted (not proptest) because each
/// case runs the whole pipeline.
#[test]
fn mutated_discovery_results_match_fresh_build() {
    let scripts: &[&[(bool, usize)]] = &[
        &[(true, 0), (true, 3), (true, 4)],
        &[(true, 0), (true, 1), (false, 0), (true, 2), (true, 5), (false, 2)],
        &[(true, 3), (false, 3), (true, 3), (true, 0)],
        &[(true, 2), (true, 5), (true, 4), (false, 4), (true, 1)],
    ];
    let cfg = AutoFeatConfig::default();
    for ops in scripts {
        let (ctx, members) = replay(ops);
        let mutated = AutoFeat::new(cfg.clone()).discover(&ctx.latest()).unwrap();
        let fresh = AutoFeat::new(cfg.clone()).discover(&fresh_ctx(&members)).unwrap();
        assert!(
            results_equal(&mutated, &fresh),
            "discovery diverged after {ops:?}: {} vs {} ranked paths",
            mutated.ranked.len(),
            fresh.ranked.len()
        );
    }
}

/// The name-pass recall case end-to-end: p3 shares base's key *name* but
/// only 5/30 values, so an LSH collision is a coin flip — the hybrid name
/// pass must produce the edge deterministically, fresh and incrementally.
#[test]
fn name_only_edges_survive_both_paths() {
    let fresh = fresh_ctx(&[3]);
    assert!(
        canonical_edges(fresh.drg()).iter().any(|e| e.0 == "base" && e.2 == "p3"),
        "fresh build lost the name-driven edge: {:?}",
        canonical_edges(fresh.drg())
    );
    let ctx = fresh_ctx(&[]);
    ctx.add_table(pool_table(3)).unwrap();
    assert_drg_identical(ctx.latest().drg(), fresh.drg());
}

/// Removing a table invalidates exactly its cache entries — the counter
/// moves and the rest of the cache survives.
#[test]
fn remove_table_invalidates_only_its_cache_slots() {
    let ctx = fresh_ctx(&[0, 2]);
    let cfg = AutoFeatConfig::default();
    AutoFeat::new(cfg.clone()).discover(&ctx.latest()).unwrap();
    let before = ctx.lake_cache().stats();
    assert!(before.entries > 0, "discovery should have populated the cache");
    ctx.remove_table("p0").unwrap();
    let after = ctx.lake_cache().stats();
    assert!(
        after.invalidations > before.invalidations,
        "removing a joined table must invalidate its slots ({} vs {})",
        after.invalidations,
        before.invalidations
    );
    assert!(after.invalidated_bytes > before.invalidated_bytes);
    assert!(after.entries < before.entries, "only p0's entries drop, others survive");
}

/// A live service keeps serving while the lake mutates underneath it:
/// every request served strictly before/after a mutation matches the
/// corresponding reference exactly, and requests racing the mutation
/// match either the pre- or post-mutation reference — never a torn view.
#[test]
fn live_service_serves_coherent_snapshots_across_mutations() {
    let cfg = AutoFeatConfig::default();
    let ref_pre = AutoFeat::new(cfg.clone()).discover(&fresh_ctx(&[0])).unwrap();
    let ref_post = AutoFeat::new(cfg.clone()).discover(&fresh_ctx(&[0, 2])).unwrap();

    let service = DiscoveryService::new(fresh_ctx(&[0]), cfg);
    let req = DiscoveryRequest::new();

    // Phase 1: stable pre-mutation serving.
    let r = service.submit(&req).unwrap();
    assert!(results_equal(&r, &ref_pre), "pre-mutation request diverged from reference");

    // Phase 2: requests race the mutation. Each must equal one of the two
    // references — a torn half-mutated view would match neither.
    let workers = 4;
    let barrier = Barrier::new(workers + 1);
    thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(s.spawn(|| {
                barrier.wait();
                service.submit(&req).unwrap()
            }));
        }
        barrier.wait();
        service.add_table(pool_table(2)).unwrap();
        for h in handles {
            let r = h.join().unwrap();
            assert!(
                results_equal(&r, &ref_pre) || results_equal(&r, &ref_post),
                "request racing add_table matched neither reference ({} ranked)",
                r.ranked.len()
            );
        }
    });

    // Phase 3: stable post-mutation serving.
    let r = service.submit(&req).unwrap();
    assert!(results_equal(&r, &ref_post), "post-mutation request diverged from reference");

    // And back again via remove.
    service.remove_table("p2").unwrap();
    let r = service.submit(&req).unwrap();
    assert!(results_equal(&r, &ref_pre), "remove did not restore the pre-mutation lake");
}
