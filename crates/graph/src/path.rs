//! Join paths: sequences of oriented join hops through the DRG.

use std::fmt;

/// One oriented hop of a join path: join `from_table.from_column` with
/// `to_table.to_column`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinHop {
    /// Left (already materialized) side's table of origin.
    pub from_table: String,
    /// Join column on the left side (name as in its table of origin).
    pub from_column: String,
    /// Right table being joined in.
    pub to_table: String,
    /// Join column in the right table.
    pub to_column: String,
    /// Similarity weight of the edge used.
    pub weight: f64,
}

/// A directed join path of length ≥ 1 (Def. IV.4), starting at the base
/// table. Paths are acyclic: each table appears at most once.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JoinPath {
    hops: Vec<JoinHop>,
}

impl JoinPath {
    /// The empty path (the base table alone).
    pub fn empty() -> Self {
        JoinPath::default()
    }

    /// Build from hops (assumed consistent).
    pub fn from_hops(hops: Vec<JoinHop>) -> Self {
        JoinPath { hops }
    }

    /// Extend with one more hop (returns a new path).
    pub fn extended(&self, hop: JoinHop) -> JoinPath {
        let mut hops = self.hops.clone();
        hops.push(hop);
        JoinPath { hops }
    }

    /// The hops in order.
    pub fn hops(&self) -> &[JoinHop] {
        &self.hops
    }

    /// Path length = number of joins.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path is empty (no joins).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The base table, if the path has any hop.
    pub fn base_table(&self) -> Option<&str> {
        self.hops.first().map(|h| h.from_table.as_str())
    }

    /// The table reached by the final hop.
    pub fn last_table(&self) -> Option<&str> {
        self.hops.last().map(|h| h.to_table.as_str())
    }

    /// Every table the path touches, base first, without duplicates.
    pub fn tables(&self) -> Vec<&str> {
        let mut v: Vec<&str> = Vec::with_capacity(self.hops.len() + 1);
        for h in &self.hops {
            if !v.contains(&h.from_table.as_str()) {
                v.push(&h.from_table);
            }
            if !v.contains(&h.to_table.as_str()) {
                v.push(&h.to_table);
            }
        }
        v
    }

    /// Whether the path already visits `table` (acyclicity check).
    pub fn visits(&self, table: &str) -> bool {
        self.hops
            .iter()
            .any(|h| h.from_table == table || h.to_table == table)
    }

    /// Product of hop weights — a crude joinability confidence for the
    /// whole path.
    pub fn weight_product(&self) -> f64 {
        self.hops.iter().map(|h| h.weight).product()
    }
}

impl fmt::Display for JoinPath {
    /// Formats like the paper:
    /// `Applicants.Applicant_ID -> Credit_profile.Credit_score -> ...`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hops.is_empty() {
            return f.write_str("(empty path)");
        }
        for (i, h) in self.hops.iter().enumerate() {
            if i == 0 {
                write!(f, "{}.{}", h.from_table, h.from_column)?;
            }
            write!(f, " -> {}.{}", h.to_table, h.to_column)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(from: &str, fc: &str, to: &str, tc: &str, w: f64) -> JoinHop {
        JoinHop {
            from_table: from.into(),
            from_column: fc.into(),
            to_table: to.into(),
            to_column: tc.into(),
            weight: w,
        }
    }

    fn two_hop() -> JoinPath {
        JoinPath::from_hops(vec![
            hop("applicants", "applicant_id", "credit", "credit_score", 0.8),
            hop("credit", "credit_id", "loans", "credit_id", 1.0),
        ])
    }

    #[test]
    fn length_and_tables() {
        let p = two_hop();
        assert_eq!(p.len(), 2);
        assert_eq!(p.base_table(), Some("applicants"));
        assert_eq!(p.last_table(), Some("loans"));
        assert_eq!(p.tables(), vec!["applicants", "credit", "loans"]);
    }

    #[test]
    fn visits_detects_cycles() {
        let p = two_hop();
        assert!(p.visits("credit"));
        assert!(p.visits("applicants"));
        assert!(!p.visits("other"));
    }

    #[test]
    fn extended_leaves_original_untouched() {
        let p = JoinPath::empty();
        let q = p.extended(hop("a", "x", "b", "y", 1.0));
        assert!(p.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn display_matches_paper_style() {
        let p = two_hop();
        assert_eq!(
            p.to_string(),
            "applicants.applicant_id -> credit.credit_score -> loans.credit_id"
        );
        assert_eq!(JoinPath::empty().to_string(), "(empty path)");
    }

    #[test]
    fn weight_product() {
        assert!((two_hop().weight_product() - 0.8).abs() < 1e-12);
        assert_eq!(JoinPath::empty().weight_product(), 1.0);
    }
}
