//! DRG analysis utilities: Graphviz export, connectivity, and
//! strongest-path queries (maximum joinability-confidence route between two
//! datasets — useful when debugging why a path was preferred).

use std::collections::BinaryHeap;
use std::fmt::Write as _;

use crate::drg::{Drg, EdgeProvenance, NodeId};
use crate::path::{JoinHop, JoinPath};

/// Render the DRG in Graphviz DOT format. KFK edges are solid, discovered
/// edges dashed and labelled with their similarity score.
pub fn to_dot(drg: &Drg) -> String {
    let mut out = String::from("graph drg {\n  node [shape=box];\n");
    for node in drg.nodes() {
        let _ = writeln!(out, "  \"{}\";", drg.table_name(node));
    }
    for e in drg.edges() {
        let style = match e.provenance {
            EdgeProvenance::Kfk => "solid",
            EdgeProvenance::Discovered => "dashed",
        };
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" [label=\"{}={} ({:.2})\", style={}];",
            drg.table_name(e.a),
            drg.table_name(e.b),
            e.a_column,
            e.b_column,
            e.weight,
            style
        );
    }
    out.push_str("}\n");
    out
}

/// Number of connected components.
pub fn connected_components(drg: &Drg) -> usize {
    let n = drg.n_nodes();
    let mut seen = vec![false; n];
    let mut components = 0;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        components += 1;
        let mut stack = vec![NodeId(start)];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in drg.neighbours(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    stack.push(v);
                }
            }
        }
    }
    components
}

#[derive(PartialEq)]
struct HeapEntry {
    confidence: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.confidence
            .partial_cmp(&other.confidence)
            .expect("finite confidence")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// The join path from `from` to `to` maximizing the product of edge
/// weights (joinability confidence) — Dijkstra on `-log(weight)`.
/// Returns `None` when unreachable.
pub fn strongest_path(drg: &Drg, from: NodeId, to: NodeId) -> Option<JoinPath> {
    let n = drg.n_nodes();
    let mut best = vec![0.0f64; n];
    let mut hop_in: Vec<Option<JoinHop>> = vec![None; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    best[from.0] = 1.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { confidence: 1.0, node: from });
    while let Some(HeapEntry { confidence, node }) = heap.pop() {
        if confidence < best[node.0] {
            continue;
        }
        if node == to {
            break;
        }
        for (next, edge_ids) in drg.neighbours(node) {
            for eid in edge_ids {
                let e = drg.edge(eid);
                let (_, from_col, to_col) =
                    e.oriented_from(node).expect("incident edge");
                let c = confidence * e.weight;
                if c > best[next.0] {
                    best[next.0] = c;
                    prev[next.0] = Some(node);
                    hop_in[next.0] = Some(JoinHop {
                        from_table: drg.table_name(node).to_string(),
                        from_column: from_col.to_string(),
                        to_table: drg.table_name(next).to_string(),
                        to_column: to_col.to_string(),
                        weight: e.weight,
                    });
                    heap.push(HeapEntry { confidence: c, node: next });
                }
            }
        }
    }
    if best[to.0] == 0.0 {
        return None;
    }
    if from == to {
        return Some(JoinPath::empty());
    }
    let mut hops = Vec::new();
    let mut cur = to;
    while cur != from {
        hops.push(hop_in[cur.0].clone().expect("path recorded"));
        cur = prev[cur.0].expect("path recorded");
    }
    hops.reverse();
    Some(JoinPath::from_hops(hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drg::DrgBuilder;

    fn graph() -> Drg {
        let mut b = DrgBuilder::new();
        b.add_kfk("a", "k1", "b", "k1");
        b.add_discovered("b", "k2", "c", "k2", 0.5);
        b.add_discovered("a", "k3", "c", "k3", 0.4);
        b.add_table("island");
        b.build()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = graph();
        let dot = to_dot(&g);
        assert!(dot.contains("\"a\""));
        assert!(dot.contains("\"island\""));
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("(0.50)"));
        assert!(dot.starts_with("graph drg {"));
    }

    #[test]
    fn components_counted() {
        assert_eq!(connected_components(&graph()), 2);
    }

    #[test]
    fn strongest_path_picks_higher_product() {
        let g = graph();
        // a→c direct: 0.4; a→b→c: 1.0 × 0.5 = 0.5 ⇒ the two-hop route wins.
        let p = strongest_path(&g, g.node("a").unwrap(), g.node("c").unwrap()).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.weight_product() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unreachable_is_none() {
        let g = graph();
        assert!(strongest_path(&g, g.node("a").unwrap(), g.node("island").unwrap()).is_none());
    }

    #[test]
    fn self_path_is_empty() {
        let g = graph();
        let a = g.node("a").unwrap();
        assert_eq!(strongest_path(&g, a, a), Some(JoinPath::empty()));
    }
}
