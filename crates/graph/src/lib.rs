//! # autofeat-graph
//!
//! The **Dataset Relation Graph** (DRG) of §IV: an undirected, weighted
//! *multigraph* whose nodes are datasets and whose (multi-)edges are join
//! opportunities — KFK constraints ingested with weight 1, discovered
//! relationships weighted by the matcher's similarity score.
//!
//! Provides:
//!
//! * the graph structure and builder ([`drg`]);
//! * join paths and hops ([`path`]);
//! * BFS level-order traversal and acyclic path enumeration
//!   ([`traversal`]), including the `JoinAll` path-count formula (Eq. 3)
//!   that explains why exhaustive joining is infeasible on dense graphs.

pub mod analysis;
pub mod drg;
pub mod incremental;
pub mod path;
pub mod traversal;

pub use analysis::{connected_components, strongest_path, to_dot};
pub use drg::{Drg, DrgBuilder, EdgeId, EdgeProvenance, JoinEdge, NodeId};
pub use incremental::{DrgMaintainer, NAME_CANDIDATE_TAU};
pub use path::{JoinHop, JoinPath};
pub use traversal::{bfs_levels, enumerate_paths, join_all_path_count};
