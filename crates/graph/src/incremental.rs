//! Incremental DRG maintenance over an LSH-pruned candidate space.
//!
//! [`DrgMaintainer`] owns the per-table [`ColumnProfile`]s, a lake-wide
//! [`LshIndex`], a name-similarity cache, and the per-table-pair match
//! lists the DRG is assembled from. Tables can be added and removed one at
//! a time; each mutation profiles only the affected table, rescores only
//! the table pairs whose candidacy could have changed, and splices the
//! match lists in place — never an all-pairs rebuild.
//!
//! ## Hybrid candidate generation
//!
//! Pure LSH candidate generation has a recall bug: the composite scorer
//! blends *name* and *value* similarity, so a pair with a near-identical
//! name but weak value overlap (an FK against a heavily filtered PK, say)
//! passes the 0.55 threshold while never colliding in a value-sketch LSH
//! index. A column pair is therefore a candidate when it collides in the
//! LSH index (recall-heavy 64×2 banding, S-curve midpoint ≈ 0.125) **or**
//! its cached name similarity reaches [`NAME_CANDIDATE_TAU`]. With the
//! default 0.5/0.5 blend, a sub-τ name contributes < 0.375, so surviving
//! the 0.55 threshold needs instance similarity ≥ 0.35 — overlap the
//! recall-heavy banding catches with probability ≥ 0.99. Candidate parity
//! with the all-pairs matcher is additionally gated empirically by the
//! `drg_scale` bench on generated lakes.
//!
//! ## Purity under mutation
//!
//! Stored match lists are a pure function of the *final* index state, so
//! any add/remove sequence ending in the same table set yields
//! bit-identical DRGs (gated by `tests/lake_mutation.rs`):
//! - name similarities never change for a fixed pair of names;
//! - a pair's LSH candidacy only flips when a shared bucket crosses the
//!   degenerate-bucket cap, and [`LshIndex::insert`]/[`LshIndex::remove`]
//!   report exactly those buckets so the affected table pairs are rescored;
//! - pairs involving the mutated table are always rescored against the
//!   post-mutation index.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use autofeat_data::Table;
use autofeat_discovery::name_sim::name_similarity;
use autofeat_discovery::{ColumnMatch, ColumnProfile, LshIndex, SchemaMatcher};
use autofeat_obs as obs;

use crate::drg::{Drg, DrgBuilder};

/// Name-similarity level at which a column pair is a match candidate even
/// without an LSH collision. High enough to skip cross-family suffix names
/// (`inf_3` vs `noise_12` sit near 0.66 Jaro-Winkler), low enough to keep
/// every pair whose name alone could carry it over the 0.55 threshold.
pub const NAME_CANDIDATE_TAU: f64 = 0.75;

#[derive(Debug, Clone)]
struct TableState {
    /// Column profiles in table column order.
    profiles: Vec<ColumnProfile>,
    /// Global LSH column ids, parallel to `profiles`.
    ids: Vec<usize>,
}

/// Incrementally maintained DRG state: profiles, LSH index, name-sim
/// cache, and per-table-pair match lists (see module docs).
#[derive(Debug, Clone)]
pub struct DrgMaintainer {
    matcher: SchemaMatcher,
    tau_name: f64,
    lsh: LshIndex,
    tables: BTreeMap<String, TableState>,
    /// LSH column id → (table, column index).
    by_id: HashMap<usize, (String, usize)>,
    next_id: usize,
    /// `(lo, hi)` name pair (ordered, nested) → similarity. Pure values —
    /// entries are never invalidated; growth is bounded by the distinct
    /// column names ever seen, not by churn.
    name_sims: HashMap<String, HashMap<String, f64>>,
    /// Ordered table pair → its match list (absent when empty).
    pair_matches: BTreeMap<(String, String), Vec<ColumnMatch>>,
}

impl DrgMaintainer {
    /// Fresh maintainer with the hybrid-default LSH banding.
    pub fn new(matcher: SchemaMatcher) -> Self {
        DrgMaintainer::with_lsh(matcher, LshIndex::hybrid_default(), NAME_CANDIDATE_TAU)
    }

    /// Fresh maintainer with a custom index and name-candidacy threshold
    /// (tests use tiny bucket caps to exercise cap crossings).
    pub fn with_lsh(matcher: SchemaMatcher, lsh: LshIndex, tau_name: f64) -> Self {
        DrgMaintainer {
            matcher,
            tau_name,
            lsh,
            tables: BTreeMap::new(),
            by_id: HashMap::new(),
            next_id: 0,
            name_sims: HashMap::new(),
            pair_matches: BTreeMap::new(),
        }
    }

    /// Build a maintainer over a full table set — the load-time path.
    /// Defined as sequential [`add_table`](Self::add_table)s so the
    /// incremental path *is* the build path (no parity to lose).
    pub fn build(tables: &[&Table], matcher: &SchemaMatcher) -> Self {
        let _span = obs::span("drg_build");
        let mut m = DrgMaintainer::new(matcher.clone());
        for t in tables {
            m.add_table(t);
        }
        m
    }

    /// The matcher this maintainer scores with.
    pub fn matcher(&self) -> &SchemaMatcher {
        &self.matcher
    }

    /// Number of resident tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Whether `name` is resident.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Resident table names in sorted order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Profile a table and add it (replacing any previous table of the
    /// same name). Profiling cost is the table's alone; rescoring touches
    /// only pairs involving this table plus pairs whose bucket candidacy
    /// flipped.
    pub fn add_table(&mut self, table: &Table) {
        let profiles = ColumnProfile::build_all(table);
        self.add_profiles(table.name(), profiles);
    }

    /// Add a pre-profiled table (lets callers profile outside their lake
    /// lock).
    pub fn add_profiles(&mut self, name: &str, profiles: Vec<ColumnProfile>) {
        let _span = obs::span("drg_incremental_add");
        if self.tables.contains_key(name) {
            self.remove_table(name);
        }
        // 1. Index the new columns; note buckets pushed over the cap.
        let mut ids = Vec::with_capacity(profiles.len());
        let mut crossed: Vec<(usize, u64)> = Vec::new();
        for p in &profiles {
            let id = self.next_id;
            self.next_id += 1;
            crossed.extend(self.lsh.insert(id, p));
            ids.push(id);
        }
        for (idx, &id) in ids.iter().enumerate() {
            self.by_id.insert(id, (name.to_string(), idx));
        }
        self.tables.insert(name.to_string(), TableState { profiles, ids });

        // 2. Rescore every pair involving the new table against the final
        //    index state. The per-pair work is candidate-gated (a name-sim
        //    cache hit plus an O(bands) collision probe for non-candidates),
        //    so this scan stays cheap even on wide lakes.
        let others: Vec<String> =
            self.tables.keys().filter(|t| t.as_str() != name).cloned().collect();
        let mut rescored = 0u64;
        for other in &others {
            self.rescore_pair(name, other);
            rescored += 1;
        }

        // 3. Pairs that lost candidacy through a bucket crossing the cap.
        rescored += self.rescore_crossed(&crossed, name);
        obs::incr("drg.incremental.tables_added");
        obs::add("drg.incremental.pairs_rescored", rescored);
    }

    /// Remove a table; unknown names are a no-op returning `false`.
    pub fn remove_table(&mut self, name: &str) -> bool {
        let Some(state) = self.tables.remove(name) else {
            return false;
        };
        let _span = obs::span("drg_incremental_remove");
        let mut uncrossed: Vec<(usize, u64)> = Vec::new();
        for &id in &state.ids {
            uncrossed.extend(self.lsh.remove(id));
            self.by_id.remove(&id);
        }
        self.pair_matches.retain(|(a, b), _| a != name && b != name);
        // Pairs that regained candidacy when a bucket dropped back under
        // the cap.
        let rescored = self.rescore_crossed(&uncrossed, name);
        obs::incr("drg.incremental.tables_removed");
        obs::add("drg.incremental.pairs_rescored", rescored);
        true
    }

    /// Recompute the match lists of table pairs touched by cap-crossing
    /// buckets, excluding pairs involving `except` (already rescored, or
    /// just removed). Returns the number of pairs rescored.
    fn rescore_crossed(&mut self, crossings: &[(usize, u64)], except: &str) -> u64 {
        let mut affected: BTreeSet<(String, String)> = BTreeSet::new();
        for &(band, hash) in crossings {
            let mut names: BTreeSet<&String> = BTreeSet::new();
            for id in self.lsh.bucket_members(band, hash) {
                if let Some((t, _)) = self.by_id.get(id) {
                    if t != except {
                        names.insert(t);
                    }
                }
            }
            let names: Vec<&String> = names.into_iter().collect();
            for (i, a) in names.iter().enumerate() {
                for b in &names[i + 1..] {
                    affected.insert(((*a).clone(), (*b).clone()));
                }
            }
        }
        let n = affected.len() as u64;
        for (a, b) in affected {
            self.rescore_pair(&a, &b);
        }
        n
    }

    /// Recompute one table pair's match list from current state.
    fn rescore_pair(&mut self, a: &str, b: &str) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let DrgMaintainer { matcher, tau_name, lsh, tables, name_sims, pair_matches, .. } = self;
        let (Some(left), Some(right)) = (tables.get(lo), tables.get(hi)) else {
            pair_matches.remove(&(lo.to_string(), hi.to_string()));
            return;
        };
        let list = pair_list(matcher, *tau_name, lsh, name_sims, left, right);
        let key = (lo.to_string(), hi.to_string());
        if list.is_empty() {
            pair_matches.remove(&key);
        } else {
            obs::add("drg.incremental.edges_spliced", list.len() as u64);
            pair_matches.insert(key, list);
        }
    }

    /// Assemble the current DRG: nodes in sorted table-name order, edges
    /// per ordered table pair in matcher order — the exact layout the
    /// all-pairs `Drg::from_discovery` produces over sorted input.
    pub fn assemble(&self) -> Drg {
        let _span = obs::span("drg_assemble");
        let mut b = DrgBuilder::new();
        for name in self.tables.keys() {
            b.add_table(name.as_str());
        }
        for ((ta, tb), list) in &self.pair_matches {
            for m in list {
                b.add_discovered(ta, &m.left_column, tb, &m.right_column, m.score);
            }
        }
        let drg = b.build();
        obs::add("graph.nodes", drg.n_nodes() as u64);
        obs::add("graph.edges_added", drg.n_edges() as u64);
        drg
    }

    /// Rough resident footprint in bytes: profiles, LSH buckets, and the
    /// name-sim cache. Charged by `SearchContext` like key metadata (lake
    /// state, not cache-budget occupancy).
    pub fn resident_bytes(&self) -> usize {
        let profile_bytes: usize = self
            .tables
            .values()
            .flat_map(|s| s.profiles.iter())
            .map(|p| {
                let exact = p.value_hashes.as_ref().map_or(0, |h| h.capacity() * 12);
                exact + p.sketch.slots().len() * 8 + p.table.len() + p.column.len() + 96
            })
            .sum();
        let name_bytes: usize = self
            .name_sims
            .iter()
            .map(|(k, m)| k.len() + 48 + m.keys().map(|n| n.len() + 40).sum::<usize>())
            .sum();
        profile_bytes + name_bytes + self.lsh.resident_bytes()
    }
}

/// Cached symmetric name similarity.
fn cached_name_sim(cache: &mut HashMap<String, HashMap<String, f64>>, a: &str, b: &str) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if let Some(&s) = cache.get(lo).and_then(|m| m.get(hi)) {
        return s;
    }
    let s = name_similarity(lo, hi);
    cache.entry(lo.to_string()).or_default().insert(hi.to_string(), s);
    s
}

/// The candidate-gated match list of one table pair, in
/// [`SchemaMatcher::match_order`]. Scores are bit-identical to
/// `SchemaMatcher::match_profiles` (same blend arithmetic via
/// `score_pair_with_name`); the gate only skips pairs whose score could
/// not reach the threshold (see module docs). A non-positive threshold
/// disables the gate entirely — every pair scores, preserving exact
/// all-pairs semantics for degenerate configs.
fn pair_list(
    matcher: &SchemaMatcher,
    tau_name: f64,
    lsh: &LshIndex,
    name_sims: &mut HashMap<String, HashMap<String, f64>>,
    left: &TableState,
    right: &TableState,
) -> Vec<ColumnMatch> {
    let gate = matcher.config().threshold > 0.0;
    let mut out = Vec::new();
    let mut scored = 0u64;
    let mut pruned = 0u64;
    for (pa, &ida) in left.profiles.iter().zip(&left.ids) {
        if gate && !pa.is_joinable_candidate() {
            pruned += right.profiles.len() as u64;
            continue;
        }
        for (pb, &idb) in right.profiles.iter().zip(&right.ids) {
            if gate && !pb.is_joinable_candidate() {
                pruned += 1;
                continue;
            }
            let name = cached_name_sim(name_sims, &pa.column, &pb.column);
            if gate && name < tau_name && !lsh.collides(ida, idb) {
                pruned += 1;
                continue;
            }
            scored += 1;
            let score = matcher.score_pair_with_name(name, pa, pb);
            if score >= matcher.config().threshold {
                out.push(ColumnMatch {
                    left_column: pa.column.clone(),
                    right_column: pb.column.clone(),
                    score,
                });
            }
        }
    }
    out.sort_by(SchemaMatcher::match_order);
    obs::add("match.pairs_scored", scored);
    obs::add("match.pairs_pruned", pruned);
    obs::add("match.pairs_matched", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    fn table(name: &str, cols: Vec<(&str, Vec<Option<i64>>)>) -> Table {
        Table::new(name, cols.into_iter().map(|(n, v)| (n, Column::from_ints(v))).collect())
            .unwrap()
    }

    fn ints(r: std::ops::Range<i64>) -> Vec<Option<i64>> {
        r.map(Some).collect()
    }

    fn lake() -> Vec<Table> {
        vec![
            table("base", vec![("user_id", ints(0..200)), ("target", ints(0..200))]),
            table("users", vec![("user_id", ints(0..200)), ("age", ints(1000..1200))]),
            table("orders", vec![("order_id", ints(500..700)), ("user_id", ints(0..200))]),
            table("ghost", vec![("zzz", ints(90_000..90_050))]),
        ]
    }

    fn drg_identical(a: &Drg, b: &Drg) -> bool {
        if a.n_nodes() != b.n_nodes() || a.n_edges() != b.n_edges() {
            return false;
        }
        if a.nodes().any(|n| a.table_name(n) != b.table_name(n)) {
            return false;
        }
        a.edges().iter().zip(b.edges()).all(|(x, y)| {
            x.a == y.a
                && x.b == y.b
                && x.a_column == y.a_column
                && x.b_column == y.b_column
                && x.weight.to_bits() == y.weight.to_bits()
                && x.provenance == y.provenance
        })
    }

    #[test]
    fn build_matches_all_pairs_discovery() {
        let tables = lake();
        let refs: Vec<&Table> = tables.iter().collect();
        let matcher = SchemaMatcher::paper_default();
        // Sorted input so the all-pairs node order matches assemble()'s.
        let mut sorted = refs.clone();
        sorted.sort_by_key(|t| t.name().to_string());
        let full = Drg::from_discovery(&sorted, &matcher);
        let inc = DrgMaintainer::build(&refs, &matcher).assemble();
        assert!(drg_identical(&full, &inc), "hybrid build must reproduce all-pairs edges");
        assert!(inc.n_edges() >= 3, "expected the user_id clique: {:?}", inc.edges());
    }

    #[test]
    fn add_remove_converges_to_fresh_build() {
        let tables = lake();
        let matcher = SchemaMatcher::paper_default();
        let mut m = DrgMaintainer::new(matcher.clone());
        for t in &tables {
            m.add_table(t);
        }
        m.remove_table("orders");
        m.remove_table("ghost");
        m.add_table(&tables[2]); // orders back
        let refs: Vec<&Table> = tables.iter().filter(|t| t.name() != "ghost").collect();
        let fresh = DrgMaintainer::build(&refs, &matcher).assemble();
        assert!(drg_identical(&fresh, &m.assemble()));
    }

    #[test]
    fn insertion_order_is_immaterial() {
        let tables = lake();
        let matcher = SchemaMatcher::paper_default();
        let fwd: Vec<&Table> = tables.iter().collect();
        let rev: Vec<&Table> = tables.iter().rev().collect();
        let a = DrgMaintainer::build(&fwd, &matcher).assemble();
        let b = DrgMaintainer::build(&rev, &matcher).assemble();
        assert!(drg_identical(&a, &b));
    }

    #[test]
    fn cap_crossings_keep_incremental_pure() {
        // A tiny bucket cap forces candidacy flips as identical columns
        // accumulate; convergence must still hold.
        let matcher = SchemaMatcher::paper_default();
        let mk = |cap: usize| {
            DrgMaintainer::with_lsh(
                matcher.clone(),
                LshIndex::hybrid_default().with_bucket_cap(cap),
                NAME_CANDIDATE_TAU,
            )
        };
        // Same value domain everywhere, dissimilar names → candidacy comes
        // only from LSH, and every shared bucket holds all columns.
        let ts: Vec<Table> = (0..4)
            .map(|i| {
                // Names chosen to stay under the 0.75 name-candidacy tau.
                let names = ["alpha", "brick", "crumb", "dizzy"];
                table(names[i], vec![(&format!("col{i}"), ints(0..150))])
            })
            .collect();
        for cap in [2, 3, 8] {
            let mut inc = mk(cap);
            for t in &ts {
                inc.add_table(t);
            }
            inc.remove_table("brick");
            inc.add_table(&ts[1]);
            let mut fresh = mk(cap);
            for t in &ts {
                fresh.add_table(t);
            }
            // Different mutation histories, same final set.
            assert!(
                drg_identical(&fresh.assemble(), &inc.assemble()),
                "cap {cap} broke incremental purity"
            );
        }
    }

    #[test]
    fn remove_unknown_is_noop() {
        let matcher = SchemaMatcher::paper_default();
        let mut m = DrgMaintainer::new(matcher);
        assert!(!m.remove_table("nope"));
        assert_eq!(m.n_tables(), 0);
    }

    #[test]
    fn readd_replaces_previous_version() {
        let matcher = SchemaMatcher::paper_default();
        let mut m = DrgMaintainer::new(matcher.clone());
        m.add_table(&table("base", vec![("k", ints(0..100))]));
        m.add_table(&table("other", vec![("k", ints(0..100))]));
        let before = m.assemble();
        assert_eq!(before.n_edges(), 1);
        // Replace `other` with a disjoint-valued version: the edge must go.
        m.add_table(&table("other", vec![("zq", ints(50_000..50_100))]));
        assert_eq!(m.assemble().n_edges(), 0);
        assert_eq!(m.n_tables(), 2);
    }

    #[test]
    fn resident_bytes_is_nonzero_and_grows() {
        let matcher = SchemaMatcher::paper_default();
        let mut m = DrgMaintainer::new(matcher);
        let empty = m.resident_bytes();
        m.add_table(&table("t", vec![("k", ints(0..500))]));
        assert!(m.resident_bytes() > empty);
    }
}
