//! The Dataset Relation Graph structure and builder.

use std::collections::HashMap;

use autofeat_data::Table;
use autofeat_discovery::{ColumnProfile, SchemaMatcher};
use autofeat_obs as obs;

/// Node identifier (index into the DRG's table list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Edge identifier (index into the DRG's edge list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub usize);

/// How an edge entered the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeProvenance {
    /// A known key/foreign-key constraint (weight 1, Def. IV.1 case 1).
    Kfk,
    /// Discovered by a dataset-discovery algorithm (weight = similarity).
    Discovered,
}

/// One undirected join opportunity between two datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Join column on the `a` side.
    pub a_column: String,
    /// Join column on the `b` side.
    pub b_column: String,
    /// Similarity weight in `(0, 1]`.
    pub weight: f64,
    /// Edge provenance.
    pub provenance: EdgeProvenance,
}

impl JoinEdge {
    /// The opposite endpoint and the (from_col, to_col) orientation when
    /// traversing this edge *from* `node`. `None` if `node` is not an
    /// endpoint.
    pub fn oriented_from(&self, node: NodeId) -> Option<(NodeId, &str, &str)> {
        if node == self.a {
            Some((self.b, &self.a_column, &self.b_column))
        } else if node == self.b {
            Some((self.a, &self.b_column, &self.a_column))
        } else {
            None
        }
    }
}

/// The Dataset Relation Graph (Def. IV.3): an undirected multigraph over
/// datasets.
#[derive(Debug, Clone, Default)]
pub struct Drg {
    tables: Vec<String>,
    index: HashMap<String, NodeId>,
    edges: Vec<JoinEdge>,
    adjacency: Vec<Vec<EdgeId>>,
}

impl Drg {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.tables.len()
    }

    /// Number of (multi-)edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Node id of a table name.
    pub fn node(&self, table: &str) -> Option<NodeId> {
        self.index.get(table).copied()
    }

    /// Table name of a node.
    pub fn table_name(&self, node: NodeId) -> &str {
        &self.tables[node.0]
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.tables.len()).map(NodeId)
    }

    /// An edge by id.
    pub fn edge(&self, id: EdgeId) -> &JoinEdge {
        &self.edges[id.0]
    }

    /// All edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// Edge ids incident to a node.
    pub fn incident(&self, node: NodeId) -> &[EdgeId] {
        &self.adjacency[node.0]
    }

    /// Neighbours of a node, grouped per neighbouring table: returns
    /// `(neighbour, edge ids connecting to it)` pairs in deterministic
    /// (ascending node) order. Multiple edge ids per neighbour reflect the
    /// multigraph's multiple join opportunities.
    pub fn neighbours(&self, node: NodeId) -> Vec<(NodeId, Vec<EdgeId>)> {
        let mut by_neighbour: HashMap<NodeId, Vec<EdgeId>> = HashMap::new();
        for &eid in self.incident(node) {
            let (other, _, _) = self.edges[eid.0]
                .oriented_from(node)
                .expect("adjacency lists only hold incident edges");
            by_neighbour.entry(other).or_default().push(eid);
        }
        let mut v: Vec<(NodeId, Vec<EdgeId>)> = by_neighbour.into_iter().collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// The similarity-score pruning rule of §IV-C: among the multi-edges to
    /// one neighbour, keep only those tied at the maximum weight ("AutoFeat
    /// selects the join column with the highest similarity score; when
    /// multiple join columns share the same top score, each ... is an
    /// individual join path").
    pub fn best_edges(&self, edge_ids: &[EdgeId]) -> Vec<EdgeId> {
        let max = edge_ids
            .iter()
            .map(|&e| self.edges[e.0].weight)
            .fold(f64::NEG_INFINITY, f64::max);
        edge_ids
            .iter()
            .copied()
            .filter(|&e| (self.edges[e.0].weight - max).abs() < 1e-12)
            .collect()
    }
}

/// Incremental DRG builder.
#[derive(Debug, Clone, Default)]
pub struct DrgBuilder {
    drg: Drg,
}

impl DrgBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        DrgBuilder::default()
    }

    /// Add (or get) a table node.
    pub fn add_table(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.drg.index.get(&name) {
            return id;
        }
        let id = NodeId(self.drg.tables.len());
        self.drg.index.insert(name.clone(), id);
        self.drg.tables.push(name);
        self.drg.adjacency.push(Vec::new());
        id
    }

    fn add_edge(&mut self, edge: JoinEdge) -> EdgeId {
        let id = EdgeId(self.drg.edges.len());
        self.drg.adjacency[edge.a.0].push(id);
        if edge.b != edge.a {
            self.drg.adjacency[edge.b.0].push(id);
        }
        self.drg.edges.push(edge);
        id
    }

    /// Add a KFK edge (weight 1).
    pub fn add_kfk(
        &mut self,
        table_a: &str,
        column_a: &str,
        table_b: &str,
        column_b: &str,
    ) -> EdgeId {
        let a = self.add_table(table_a);
        let b = self.add_table(table_b);
        self.add_edge(JoinEdge {
            a,
            b,
            a_column: column_a.to_string(),
            b_column: column_b.to_string(),
            weight: 1.0,
            provenance: EdgeProvenance::Kfk,
        })
    }

    /// Add a discovered edge with a similarity score.
    pub fn add_discovered(
        &mut self,
        table_a: &str,
        column_a: &str,
        table_b: &str,
        column_b: &str,
        score: f64,
    ) -> EdgeId {
        let a = self.add_table(table_a);
        let b = self.add_table(table_b);
        self.add_edge(JoinEdge {
            a,
            b,
            a_column: column_a.to_string(),
            b_column: column_b.to_string(),
            weight: score,
            provenance: EdgeProvenance::Discovered,
        })
    }

    /// Finish building.
    pub fn build(self) -> Drg {
        self.drg
    }
}

impl Drg {
    /// Build a DRG from a dataset collection by running the schema matcher
    /// over every table pair — the *data-lake setting* offline phase.
    pub fn from_discovery(tables: &[&Table], matcher: &SchemaMatcher) -> Drg {
        let _span = obs::span("drg_build");
        let mut b = DrgBuilder::new();
        for t in tables {
            b.add_table(t.name());
        }
        let profiles: Vec<Vec<ColumnProfile>> = {
            let _span = obs::span("profile");
            tables.iter().map(|t| ColumnProfile::build_all(t)).collect()
        };
        {
            let _span = obs::span("match");
            for i in 0..tables.len() {
                for j in (i + 1)..tables.len() {
                    for m in matcher.match_profiles(&profiles[i], &profiles[j]) {
                        b.add_discovered(
                            tables[i].name(),
                            &m.left_column,
                            tables[j].name(),
                            &m.right_column,
                            m.score,
                        );
                    }
                }
            }
        }
        let drg = b.build();
        obs::add("graph.nodes", drg.n_nodes() as u64);
        obs::add("graph.edges_added", drg.n_edges() as u64);
        drg
    }

    /// LSH-accelerated discovery: only column pairs that collide in the
    /// recall-heavy MinHash LSH index **or** clear the name-candidacy
    /// threshold get full similarity scoring — sub-quadratic in practice
    /// with edge parity against [`from_discovery`](Self::from_discovery)
    /// (the pure-LSH variant used to drop name-only matches; see
    /// `crate::incremental` for the hybrid candidate model). Nodes are laid
    /// out in sorted table-name order.
    pub fn from_discovery_lsh(tables: &[&Table], matcher: &SchemaMatcher) -> Drg {
        crate::incremental::DrgMaintainer::build(tables, matcher).assemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Drg {
        // base — a — c, base — b — c, plus a multi-edge base→a.
        let mut b = DrgBuilder::new();
        b.add_kfk("base", "a_id", "a", "id");
        b.add_discovered("base", "a_alt", "a", "alt", 0.7);
        b.add_kfk("base", "b_id", "b", "id");
        b.add_kfk("a", "c_id", "c", "id");
        b.add_kfk("b", "c_id", "c", "id");
        b.build()
    }

    #[test]
    fn nodes_and_edges_counted() {
        let g = diamond();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn add_table_is_idempotent() {
        let mut b = DrgBuilder::new();
        let t1 = b.add_table("x");
        let t2 = b.add_table("x");
        assert_eq!(t1, t2);
        assert_eq!(b.build().n_nodes(), 1);
    }

    #[test]
    fn neighbours_group_multi_edges() {
        let g = diamond();
        let base = g.node("base").unwrap();
        let nbrs = g.neighbours(base);
        assert_eq!(nbrs.len(), 2); // a and b
        let a = g.node("a").unwrap();
        let a_edges = &nbrs.iter().find(|(n, _)| *n == a).unwrap().1;
        assert_eq!(a_edges.len(), 2); // KFK + discovered
    }

    #[test]
    fn oriented_from_flips_columns() {
        let g = diamond();
        let base = g.node("base").unwrap();
        let a = g.node("a").unwrap();
        let e = g.edge(EdgeId(0));
        let (to, from_col, to_col) = e.oriented_from(base).unwrap();
        assert_eq!(to, a);
        assert_eq!(from_col, "a_id");
        assert_eq!(to_col, "id");
        let (back, fc, tc) = e.oriented_from(a).unwrap();
        assert_eq!(back, base);
        assert_eq!(fc, "id");
        assert_eq!(tc, "a_id");
        assert_eq!(e.oriented_from(NodeId(99)), None);
    }

    #[test]
    fn kfk_edges_have_weight_one() {
        let g = diamond();
        assert_eq!(g.edge(EdgeId(0)).weight, 1.0);
        assert_eq!(g.edge(EdgeId(0)).provenance, EdgeProvenance::Kfk);
        assert_eq!(g.edge(EdgeId(1)).provenance, EdgeProvenance::Discovered);
    }

    #[test]
    fn best_edges_keeps_top_score_ties() {
        let g = diamond();
        let base = g.node("base").unwrap();
        let a = g.node("a").unwrap();
        let nbrs = g.neighbours(base);
        let a_edges = &nbrs.iter().find(|(n, _)| *n == a).unwrap().1;
        let best = g.best_edges(a_edges);
        assert_eq!(best.len(), 1); // the KFK (1.0) beats the 0.7 discovery
        assert_eq!(g.edge(best[0]).weight, 1.0);
    }

    #[test]
    fn best_edges_tie_returns_all() {
        let mut b = DrgBuilder::new();
        b.add_discovered("x", "c1", "y", "d1", 0.8);
        b.add_discovered("x", "c2", "y", "d2", 0.8);
        let g = b.build();
        let x = g.node("x").unwrap();
        let nbrs = g.neighbours(x);
        assert_eq!(g.best_edges(&nbrs[0].1).len(), 2);
    }

    #[test]
    fn from_discovery_builds_multigraph() {
        use autofeat_data::{Column, Table};
        let t1 = Table::new(
            "t1",
            vec![("id", Column::from_ints((0..30).map(Some).collect::<Vec<_>>()))],
        )
        .unwrap();
        let t2 = Table::new(
            "t2",
            vec![
                ("id", Column::from_ints((0..30).map(Some).collect::<Vec<_>>())),
                ("id_copy", Column::from_ints((0..30).map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let g = Drg::from_discovery(&[&t1, &t2], &SchemaMatcher::paper_default());
        assert_eq!(g.n_nodes(), 2);
        assert!(g.n_edges() >= 2, "expected multi-edges, got {}", g.n_edges());
        assert!(g.edges().iter().all(|e| e.provenance == EdgeProvenance::Discovered));
    }

    #[test]
    fn unknown_table_lookup() {
        assert_eq!(diamond().node("ghost"), None);
    }

    #[test]
    fn lsh_discovery_finds_value_overlapping_edges() {
        use autofeat_data::{Column, Table};
        let t1 = Table::new(
            "t1",
            vec![("key", Column::from_ints((0..200).map(Some).collect::<Vec<_>>()))],
        )
        .unwrap();
        let t2 = Table::new(
            "t2",
            vec![
                ("key", Column::from_ints((0..200).map(Some).collect::<Vec<_>>())),
                (
                    "unrelated",
                    Column::from_ints((90_000..90_200).map(Some).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let matcher = SchemaMatcher::paper_default();
        let full = Drg::from_discovery(&[&t1, &t2], &matcher);
        let lsh = Drg::from_discovery_lsh(&[&t1, &t2], &matcher);
        // The shared-key edge must be present in both constructions.
        let has_key_edge = |g: &Drg| {
            g.edges()
                .iter()
                .any(|e| e.a_column == "key" && e.b_column == "key")
        };
        assert!(has_key_edge(&full));
        assert!(has_key_edge(&lsh));
        // LSH never invents edges the full matcher would reject.
        assert!(lsh.n_edges() <= full.n_edges());
    }

    #[test]
    fn lsh_discovery_skips_same_table_pairs() {
        use autofeat_data::{Column, Table};
        let t = Table::new(
            "t",
            vec![
                ("a", Column::from_ints((0..100).map(Some).collect::<Vec<_>>())),
                ("b", Column::from_ints((0..100).map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let g = Drg::from_discovery_lsh(&[&t], &SchemaMatcher::paper_default());
        assert_eq!(g.n_edges(), 0, "no self-table edges");
    }
}
