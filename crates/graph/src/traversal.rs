//! DRG traversal: BFS levels, acyclic path enumeration, and the `JoinAll`
//! path-count formula (Eq. 3).

use std::collections::VecDeque;

use autofeat_obs as obs;

use crate::drg::{Drg, NodeId};
use crate::path::{JoinHop, JoinPath};

/// Nodes reachable from `start`, grouped by BFS level (level 0 = `start`).
/// This is the level-by-level exploration order Algorithm 1 follows (§IV-A
/// argues BFS contains join-error propagation better than DFS).
pub fn bfs_levels(drg: &Drg, start: NodeId) -> Vec<Vec<NodeId>> {
    let _span = obs::span("bfs_levels");
    let mut seen = vec![false; drg.n_nodes()];
    let mut levels: Vec<Vec<NodeId>> = Vec::new();
    let mut frontier: Vec<NodeId> = vec![start];
    seen[start.0] = true;
    while !frontier.is_empty() {
        levels.push(frontier.clone());
        let mut next = Vec::new();
        for &u in &frontier {
            for (v, _) in drg.neighbours(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    next.push(v);
                }
            }
        }
        next.sort();
        frontier = next;
    }
    levels
}

fn hop_from_edge(drg: &Drg, from: NodeId, eid: crate::drg::EdgeId) -> Option<JoinHop> {
    let e = drg.edge(eid);
    let (to, from_col, to_col) = e.oriented_from(from)?;
    Some(JoinHop {
        from_table: drg.table_name(from).to_string(),
        from_column: from_col.to_string(),
        to_table: drg.table_name(to).to_string(),
        to_column: to_col.to_string(),
        weight: e.weight,
    })
}

/// Enumerate all acyclic join paths from `start` with `1 ≤ length ≤
/// max_length`, breadth-first (shorter paths first). Every distinct
/// multi-edge produces a distinct path (Def. IV.4: "We consider a different
/// join path every edge in the multi-graph").
///
/// When `best_edges_only` is set, the similarity-score pruning rule is
/// applied: per neighbouring table only the top-scored join column(s) are
/// expanded.
pub fn enumerate_paths(
    drg: &Drg,
    start: NodeId,
    max_length: usize,
    best_edges_only: bool,
) -> Vec<JoinPath> {
    let _span = obs::span("enumerate_paths");
    let mut out = Vec::new();
    let mut queue: VecDeque<(NodeId, JoinPath)> = VecDeque::new();
    queue.push_back((start, JoinPath::empty()));
    while let Some((node, path)) = queue.pop_front() {
        if path.len() >= max_length {
            continue;
        }
        for (next, edge_ids) in drg.neighbours(node) {
            let next_name = drg.table_name(next);
            if next == start || path.visits(next_name) {
                continue;
            }
            let candidates = if best_edges_only {
                drg.best_edges(&edge_ids)
            } else {
                edge_ids
            };
            for eid in candidates {
                let hop = hop_from_edge(drg, node, eid).expect("edge incident to node");
                let p = path.extended(hop);
                out.push(p.clone());
                queue.push_back((next, p));
            }
        }
    }
    obs::add("graph.paths_enumerated", out.len() as u64);
    out
}

/// The number of possible `JoinAll` orderings (Eq. 3):
/// `P = Π_{d=0..D} Π_{v ∈ N(d)} k(v)!` where `k(v)` is the number of
/// unvisited neighbours of `v` in the BFS tree. Returned as `f64` because
/// the count explodes (the paper's school dataset hits `15!`).
pub fn join_all_path_count(drg: &Drg, start: NodeId) -> f64 {
    let mut seen = vec![false; drg.n_nodes()];
    seen[start.0] = true;
    let mut frontier = vec![start];
    let mut product = 1.0f64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            let mut k = 0usize;
            for (v, _) in drg.neighbours(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    next.push(v);
                    k += 1;
                }
            }
            product *= factorial(k);
        }
        frontier = next;
    }
    product
}

fn factorial(k: usize) -> f64 {
    (1..=k).map(|i| i as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drg::DrgBuilder;

    /// base — a — c, base — b, with a multi-edge base→a.
    fn graph() -> Drg {
        let mut b = DrgBuilder::new();
        b.add_kfk("base", "a_id", "a", "id");
        b.add_discovered("base", "a_alt", "a", "alt", 0.6);
        b.add_kfk("base", "b_id", "b", "id");
        b.add_kfk("a", "c_id", "c", "id");
        b.build()
    }

    #[test]
    fn bfs_levels_are_correct() {
        let g = graph();
        let base = g.node("base").unwrap();
        let levels = bfs_levels(&g, base);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![base]);
        assert_eq!(levels[1].len(), 2); // a, b
        assert_eq!(levels[2], vec![g.node("c").unwrap()]);
    }

    #[test]
    fn bfs_handles_disconnected_nodes() {
        let mut b = DrgBuilder::new();
        b.add_table("solo");
        b.add_kfk("x", "k", "y", "k");
        let g = b.build();
        let levels = bfs_levels(&g, g.node("solo").unwrap());
        assert_eq!(levels.len(), 1);
    }

    #[test]
    fn enumerate_counts_multi_edges_as_distinct_paths() {
        let g = graph();
        let base = g.node("base").unwrap();
        let paths = enumerate_paths(&g, base, 1, false);
        // base→a (2 edges) + base→b (1 edge) = 3 one-hop paths.
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn enumerate_extends_transitively() {
        let g = graph();
        let base = g.node("base").unwrap();
        let paths = enumerate_paths(&g, base, 2, false);
        // 3 one-hop + (2 edges to a) × (1 edge a→c) = 5.
        assert_eq!(paths.len(), 5);
        let two_hop: Vec<&JoinPath> = paths.iter().filter(|p| p.len() == 2).collect();
        assert_eq!(two_hop.len(), 2);
        assert!(two_hop.iter().all(|p| p.last_table() == Some("c")));
    }

    #[test]
    fn enumerate_is_acyclic() {
        let g = graph();
        let base = g.node("base").unwrap();
        for p in enumerate_paths(&g, base, 10, false) {
            let tables = p.tables();
            let mut dedup = tables.clone();
            dedup.dedup();
            assert_eq!(tables.len(), dedup.len(), "cycle in {p}");
        }
    }

    #[test]
    fn best_edges_only_prunes_weak_join_columns() {
        let g = graph();
        let base = g.node("base").unwrap();
        let paths = enumerate_paths(&g, base, 1, true);
        // Only the weight-1 edge to a survives, plus the b edge.
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.hops()[0].weight == 1.0));
    }

    #[test]
    fn shorter_paths_enumerate_first() {
        let g = graph();
        let base = g.node("base").unwrap();
        let paths = enumerate_paths(&g, base, 3, false);
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn join_all_count_star_schema() {
        // A star with 4 satellites: P = 4!.
        let mut b = DrgBuilder::new();
        for i in 0..4 {
            b.add_kfk("hub", &format!("k{i}"), &format!("s{i}"), "k");
        }
        let g = b.build();
        assert_eq!(join_all_path_count(&g, g.node("hub").unwrap()), 24.0);
    }

    #[test]
    fn join_all_count_chain_is_one() {
        let mut b = DrgBuilder::new();
        b.add_kfk("a", "k", "b", "k");
        b.add_kfk("b", "k2", "c", "k2");
        let g = b.build();
        assert_eq!(join_all_path_count(&g, g.node("a").unwrap()), 1.0);
    }

    #[test]
    fn join_all_count_two_levels() {
        // hub → s0,s1 ; s0 → t0,t1 ⇒ 2! at hub × 2! at s0 = 4.
        let mut b = DrgBuilder::new();
        b.add_kfk("hub", "k0", "s0", "k");
        b.add_kfk("hub", "k1", "s1", "k");
        b.add_kfk("s0", "m0", "t0", "k");
        b.add_kfk("s0", "m1", "t1", "k");
        let g = b.build();
        assert_eq!(join_all_path_count(&g, g.node("hub").unwrap()), 4.0);
    }

    #[test]
    fn max_length_zero_yields_nothing() {
        let g = graph();
        assert!(enumerate_paths(&g, g.node("base").unwrap(), 0, false).is_empty());
    }
}
