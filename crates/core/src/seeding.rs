//! Deterministic per-hop join seeding.
//!
//! Every join in the system (discovery-time evaluation, top-k path
//! materialization, tree materialization, baselines) derives its
//! representative-pick seed from a **stable identity**, never from a shared
//! RNG stream. The identity of a hop is `(run seed, the path prefix that
//! led to it, the hop itself)`, hashed with the process-stable FNV hasher.
//!
//! This fixes two historical bugs at once:
//!
//! 1. **Traversal-order coupling** — with one `StdRng` threaded through the
//!    BFS, adding an unrelated table (or changing `max_joins`) shifted the
//!    RNG stream and perturbed the representative picks of every *later*
//!    join. With identity-derived seeds, a hop's picks depend only on its
//!    own path.
//! 2. **Train/serve skew** — `materialize_path`/`materialize_tree` replayed
//!    hops against a fresh RNG, so the rows a feature was *scored* on
//!    during discovery could differ from the rows it was *trained* on.
//!    Both sides now derive the identical seed for the identical hop.
//!
//! Identity-derived seeds are also what makes the per-level parallel
//! evaluation legal: hops can be joined in any order, on any thread, and
//! the result is bit-identical to the sequential walk.

use std::hash::Hasher;

use autofeat_data::stable_hash::StableHasher;
use autofeat_graph::JoinHop;

fn hash_str(h: &mut StableHasher, s: &str) {
    h.write(s.as_bytes());
    h.write_u8(0xff); // terminator so ("ab","c") ≠ ("a","bc")
}

fn hash_hop(h: &mut StableHasher, hop: &JoinHop) {
    hash_str(h, &hop.from_table);
    hash_str(h, &hop.from_column);
    hash_str(h, &hop.to_table);
    hash_str(h, &hop.to_column);
}

/// The join seed for evaluating `hop` after the joins in `prefix`: a stable
/// hash of `(seed, prefix hops, hop)`. Pure and process-stable — the same
/// `(seed, path)` always yields the same representative picks, whatever
/// else the run explores and however the work is scheduled.
pub fn hop_seed(seed: u64, prefix: &[JoinHop], hop: &JoinHop) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(seed);
    for p in prefix {
        hash_hop(&mut h, p);
    }
    h.write_u8(0xfe); // prefix/hop separator
    hash_hop(&mut h, hop);
    h.finish()
}

/// Seed for a single direct join identified by its endpoints (the
/// single-hop convenience used by baselines that join star- or BFS-wise
/// rather than along enumerated paths).
pub fn join_seed(
    seed: u64,
    from_table: &str,
    from_column: &str,
    to_table: &str,
    to_column: &str,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(seed);
    h.write_u8(0xfe);
    hash_str(&mut h, from_table);
    hash_str(&mut h, from_column);
    hash_str(&mut h, to_table);
    hash_str(&mut h, to_column);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(from: &str, fc: &str, to: &str, tc: &str) -> JoinHop {
        JoinHop {
            from_table: from.into(),
            from_column: fc.into(),
            to_table: to.into(),
            to_column: tc.into(),
            weight: 1.0,
        }
    }

    #[test]
    fn same_identity_same_seed() {
        let prefix = vec![hop("base", "k", "s1", "k")];
        let h = hop("s1", "k2", "s2", "k2");
        assert_eq!(hop_seed(42, &prefix, &h), hop_seed(42, &prefix, &h));
    }

    #[test]
    fn run_seed_changes_everything() {
        let h = hop("base", "k", "s1", "k");
        assert_ne!(hop_seed(1, &[], &h), hop_seed(2, &[], &h));
    }

    #[test]
    fn prefix_distinguishes_same_final_hop() {
        // Reaching s2 via different prefixes is a different identity — each
        // path's join is its own draw, as with independent RNGs.
        let via_a = vec![hop("base", "k", "a", "k")];
        let via_b = vec![hop("base", "k", "b", "k")];
        let h = hop("a", "k2", "s2", "k2");
        assert_ne!(hop_seed(42, &via_a, &h), hop_seed(42, &via_b, &h));
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        // ("ab", "c") must not collide with ("a", "bc").
        assert_ne!(join_seed(1, "ab", "c", "t", "c"), join_seed(1, "a", "bc", "t", "c"));
    }

    #[test]
    fn single_hop_matches_empty_prefix_identity() {
        // hop_seed with an empty prefix and join_seed agree on the same
        // endpoints: baselines and discovery share first-hop picks.
        let h = hop("base", "k", "ext", "id");
        assert_eq!(hop_seed(9, &[], &h), join_seed(9, "base", "k", "ext", "id"));
    }
}
