//! The baselines of §VII-B: BASE, ARDA, MAB, JoinAll and JoinAll+F.

pub mod arda;
pub mod base;
pub mod join_all;
pub mod mab;

pub use arda::{run_arda, ArdaConfig};
pub use base::run_base;
pub use join_all::{run_join_all, JoinAllConfig};
pub use mab::{run_mab, MabConfig};
