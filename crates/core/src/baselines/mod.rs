//! The baselines of §VII-B: BASE, ARDA, MAB, JoinAll and JoinAll+F.
//!
//! Every baseline joins through the context's lake-wide
//! [`LakeIndexCache`](autofeat_data::LakeIndexCache), so all of them inherit
//! that cache's memory governance automatically: a byte budget applied to
//! the shared cache (programmatically, or via `AUTOFEAT_CACHE_BUDGET` at
//! context construction) bounds baseline memory exactly as it bounds
//! discovery, with bit-identical results either way.

pub mod arda;
pub mod base;
pub mod join_all;
pub mod mab;

pub use arda::{run_arda, ArdaConfig};
pub use base::run_base;
pub use join_all::{run_join_all, JoinAllConfig};
pub use mab::{run_mab, MabConfig};
