//! The MAB baseline (Liu et al., "Feature Augmentation with Reinforcement
//! Learning"), re-implemented from the paper's description.
//!
//! A multi-armed bandit treats candidate tables as arms: pulling an arm
//! joins the table and trains a model; the accuracy is the reward. Per the
//! AutoFeat paper's observation, MAB "restricts its joins to tables sharing
//! the same join column name", so arms are discovered by *name equality*
//! between columns of the current augmented table and candidate tables —
//! which is exactly why it under-explores transitive paths whose keys are
//! renamed along the way.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use autofeat_data::encode::to_matrix;
use autofeat_data::sample::train_test_split;
use autofeat_data::stable_hash::mix_u64;
use autofeat_data::{Result, Table};
use autofeat_ml::eval::{accuracy, Classifier, ModelKind};
use autofeat_ml::tree::{DecisionTree, TreeConfig};

use crate::context::SearchContext;
use crate::report::MethodResult;
use crate::seeding::join_seed;
use crate::train::evaluate_feature_set;

/// MAB configuration.
#[derive(Debug, Clone)]
pub struct MabConfig {
    /// Total pull budget (each pull = one join + one model training).
    pub budget: usize,
    /// UCB exploration constant.
    pub exploration: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for MabConfig {
    fn default() -> Self {
        MabConfig { budget: 12, exploration: std::f64::consts::SQRT_2, seed: 19 }
    }
}

/// The unqualified final segment of a possibly `table.`-qualified column.
fn unqualified(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

/// Arms: `(left_column_in_state, candidate_table, right_column)` triples
/// where an unjoined candidate table shares a column *name* with the
/// current state.
fn find_arms<'a>(
    state: &Table,
    ctx: &'a SearchContext,
    joined: &[String],
    label: &str,
) -> Vec<(String, &'a str, String)> {
    let mut arms = Vec::new();
    let mut names: Vec<&str> = ctx.table_names();
    names.sort_unstable();
    for t in names {
        if t == ctx.base_name() || joined.iter().any(|j| j == t) {
            continue;
        }
        let cand = ctx.table(t).expect("listed table exists");
        for sc in state.column_names() {
            if sc == label {
                continue;
            }
            let short = unqualified(sc);
            for cc in cand.column_names() {
                if cc == short {
                    arms.push((sc.to_string(), t, cc.to_string()));
                }
            }
        }
    }
    arms
}

/// Quick reward model: a shallow decision tree's validation accuracy.
fn reward(table: &Table, label: &str, seed: u64) -> Result<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let split = train_test_split(table, label, 0.25, &mut rng)?;
    let features: Vec<&str> = table
        .column_names()
        .into_iter()
        .filter(|c| *c != label)
        .collect();
    let train_m = to_matrix(&split.train, &features, label)?;
    let test_m = to_matrix(&split.test, &features, label)?;
    let mut tree = DecisionTree::new(TreeConfig { max_depth: 6, ..Default::default() }, seed);
    Ok(match tree.fit(&train_m) {
        Ok(()) => accuracy(&tree.predict(&test_m), &test_m.labels),
        Err(_) => 0.0,
    })
}

/// Run the MAB baseline.
pub fn run_mab(
    ctx: &SearchContext,
    models: &[ModelKind],
    config: &MabConfig,
) -> Result<MethodResult> {
    let _span = autofeat_obs::span("baseline_mab");
    let _ctl_guard =
        autofeat_data::control::install_ambient(Some(std::sync::Arc::clone(ctx.control())));
    let t0 = Instant::now();
    let label = ctx.label().to_string();

    let mut state = ctx.base_table().clone();
    let mut joined: Vec<String> = Vec::new();
    let mut best_reward = reward(&state, &label, config.seed)?;

    // UCB statistics per arm key "left|table|right".
    let mut pulls: std::collections::HashMap<String, (usize, f64)> =
        std::collections::HashMap::new();
    let mut total_pulls = 0usize;

    for _ in 0..config.budget {
        if ctx.control().interrupted().is_some() {
            break;
        }
        let arms = find_arms(&state, ctx, &joined, &label);
        if arms.is_empty() {
            break;
        }
        // UCB1 choice: unexplored arms first (in order), then max UCB.
        let chosen = arms
            .iter()
            .max_by(|a, b| {
                let key = |arm: &(String, &str, String)| {
                    format!("{}|{}|{}", arm.0, arm.1, arm.2)
                };
                let ucb = |arm: &(String, &str, String)| match pulls.get(&key(arm)) {
                    None => f64::INFINITY,
                    Some(&(n, sum)) => {
                        sum / n as f64
                            + config.exploration
                                * ((total_pulls.max(1) as f64).ln() / n as f64).sqrt()
                    }
                };
                ucb(a).partial_cmp(&ucb(b)).expect("finite or inf")
            })
            .expect("non-empty arms")
            .clone();
        let (left_col, table_name, right_col) = chosen;
        let cand = ctx.table(table_name).expect("arm table exists");
        // An arm can be pulled several times (against an evolving state), so
        // the pull counter is mixed into the arm's identity seed.
        let seed = mix_u64(
            join_seed(config.seed, ctx.base_name(), &left_col, table_name, &right_col),
            total_pulls as u64,
        );
        let out = match ctx
            .lake_cache()
            .left_join_normalized(&state, cand, &left_col, &right_col, table_name, seed)
        {
            Ok(out) => out,
            Err(e) if e.interrupt().is_some() => break,
            Err(e) => return Err(e),
        };
        total_pulls += 1;
        let r = if out.matched == 0 {
            0.0
        } else {
            reward(&out.table, &label, config.seed ^ total_pulls as u64)?
        };
        let key = format!("{left_col}|{table_name}|{right_col}");
        let e = pulls.entry(key).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += r;
        if r > best_reward {
            best_reward = r;
            state = out.table;
            joined.push(table_name.to_string());
        }
    }
    let fs_time = t0.elapsed();

    // Final evaluation with the requested models on the accepted state.
    let features: Vec<&str> = state
        .column_names()
        .into_iter()
        .filter(|c| *c != label)
        .collect();
    let n_features = features.len();
    let accs = evaluate_feature_set(&state, &features, &label, models, config.seed)?;
    Ok(MethodResult {
        method: "MAB".into(),
        accuracy_per_model: accs,
        feature_selection_time: fs_time,
        total_time: t0.elapsed(),
        n_tables_joined: joined.len(),
        n_features,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    /// Same-name keys: base.k = s1.k; s1.k2 = s2.k2 (reachable after
    /// accepting s1). s3 has a renamed key — invisible to MAB.
    fn ctx(n: usize) -> SearchContext {
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(400 + i)).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let s3 = Table::new(
            "s3",
            vec![
                // Same values as base.k but a different name ⇒ no arm.
                ("renamed_key", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "hidden",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64 * 3.0)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, s1, s3],
            &[("base".into(), "k".into(), "s1".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn mab_accepts_useful_join() {
        let c = ctx(200);
        let r = run_mab(&c, &[ModelKind::RandomForest], &MabConfig::default()).unwrap();
        assert_eq!(r.method, "MAB");
        assert!(r.n_tables_joined >= 1, "should accept s1");
        assert!(r.mean_accuracy() > 0.9);
    }

    #[test]
    fn mab_cannot_see_renamed_keys() {
        let c = ctx(150);
        let state = c.base_table().clone();
        let arms = find_arms(&state, &c, &[], "target");
        assert!(
            arms.iter().all(|(_, t, _)| *t != "s3"),
            "s3's renamed key must be invisible: {arms:?}"
        );
    }

    #[test]
    fn unqualified_strips_prefix() {
        assert_eq!(unqualified("s1.k2"), "k2");
        assert_eq!(unqualified("k"), "k");
    }

    #[test]
    fn budget_zero_is_base_only() {
        let c = ctx(100);
        let cfg = MabConfig { budget: 0, ..Default::default() };
        let r = run_mab(&c, &[ModelKind::RandomForest], &cfg).unwrap();
        assert_eq!(r.n_tables_joined, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ctx(150);
        let a = run_mab(&c, &[ModelKind::RandomForest], &MabConfig::default()).unwrap();
        let b = run_mab(&c, &[ModelKind::RandomForest], &MabConfig::default()).unwrap();
        assert_eq!(a.n_tables_joined, b.n_tables_joined);
        assert_eq!(a.accuracy_per_model, b.accuracy_per_model);
    }

    #[test]
    fn cancelled_context_skips_all_pulls() {
        let c = ctx(120);
        c.cancel();
        let r = run_mab(&c, &[ModelKind::RandomForest], &MabConfig::default()).unwrap();
        assert_eq!(r.n_tables_joined, 0, "no pulls after cancellation");
    }
}
