//! The BASE baseline: the unaugmented base table, "assumed to be
//! performing poorly on any ML model" — the floor every augmenter must
//! beat.

use std::time::{Duration, Instant};

use autofeat_data::Result;
use autofeat_ml::eval::ModelKind;

use crate::context::SearchContext;
use crate::report::MethodResult;
use crate::train::evaluate_feature_set;

/// Evaluate the bare base table.
pub fn run_base(
    ctx: &SearchContext,
    models: &[ModelKind],
    seed: u64,
) -> Result<MethodResult> {
    let _span = autofeat_obs::span("baseline_base");
    let t0 = Instant::now();
    let features = ctx.base_features();
    let refs: Vec<&str> = features.iter().map(String::as_str).collect();
    let accs = evaluate_feature_set(ctx.base_table(), &refs, ctx.label(), models, seed)?;
    Ok(MethodResult {
        method: "BASE".into(),
        accuracy_per_model: accs,
        feature_selection_time: Duration::ZERO,
        total_time: t0.elapsed(),
        n_tables_joined: 0,
        n_features: features.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::{Column, Table};

    #[test]
    fn base_runs_and_reports_zero_joins() {
        let n = 100i64;
        let base = Table::new(
            "base",
            vec![
                ("x", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(vec![base], &[], "base", "target").unwrap();
        let r = run_base(&ctx, &[ModelKind::RandomForest], 0).unwrap();
        assert_eq!(r.method, "BASE");
        assert_eq!(r.n_tables_joined, 0);
        assert_eq!(r.feature_selection_time, Duration::ZERO);
        assert_eq!(r.accuracy_per_model.len(), 1);
    }
}
