//! The JoinAll / JoinAll+F baselines: join every reachable table, train on
//! the resulting wide table — with the Eq. 3 feasibility guard.
//!
//! The paper shows that on non-1:1, non-KFK schemata the number of possible
//! JoinAll orderings is `P = Π_d Π_{v∈N(d)} k(v)!` (Eq. 3), which explodes
//! (15! on the school dataset), so JoinAll results are omitted whenever `P`
//! exceeds a budget. We materialize a single canonical (BFS) ordering when
//! feasible, which is exactly what a 1:1 KFK JoinAll degenerates to.

use std::time::Instant;

use autofeat_data::encode::label_encode_column;
use autofeat_data::Result;
use autofeat_graph::traversal::join_all_path_count;
use autofeat_metrics::relevance::RelevanceMethod;
use autofeat_metrics::selection::select_k_best;
use autofeat_ml::eval::ModelKind;

use crate::context::SearchContext;
use crate::executor::qualified_column;
use crate::report::MethodResult;
use crate::seeding::join_seed;
use crate::train::evaluate_feature_set;

/// JoinAll configuration.
#[derive(Debug, Clone)]
pub struct JoinAllConfig {
    /// Apply the filter feature-selection step (the `+F` variant).
    pub filter: bool,
    /// Features kept by the filter.
    pub filter_kappa: usize,
    /// Feasibility budget on the Eq. 3 ordering count; above it the run is
    /// skipped (the paper's "did not finish within the time constraint").
    pub max_orderings: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for JoinAllConfig {
    fn default() -> Self {
        JoinAllConfig { filter: false, filter_kappa: 15, max_orderings: 1e7, seed: 29 }
    }
}

/// Run JoinAll (or JoinAll+F when `config.filter`). Returns `None` when the
/// Eq. 3 ordering count exceeds the budget.
pub fn run_join_all(
    ctx: &SearchContext,
    models: &[ModelKind],
    config: &JoinAllConfig,
) -> Result<Option<MethodResult>> {
    let _span = autofeat_obs::span("baseline_join_all");
    let _ctl_guard =
        autofeat_data::control::install_ambient(Some(std::sync::Arc::clone(ctx.control())));
    let t0 = Instant::now();
    let drg = ctx.drg();
    let Some(base_node) = drg.node(ctx.base_name()) else {
        return Ok(None);
    };
    let orderings = join_all_path_count(drg, base_node);
    if orderings > config.max_orderings {
        return Ok(None);
    }

    let label = ctx.label().to_string();

    // Canonical BFS ordering: join each table once, through the
    // best-scoring edge from its BFS parent.
    let mut table = ctx.base_table().clone();
    let mut visited = vec![false; drg.n_nodes()];
    visited[base_node.0] = true;
    let mut frontier = vec![base_node];
    let mut n_joined = 0usize;
    'bfs: while !frontier.is_empty() {
        if ctx.control().interrupted().is_some() {
            break;
        }
        let mut next = Vec::new();
        for &u in &frontier {
            for (v, edge_ids) in drg.neighbours(u) {
                if visited[v.0] {
                    continue;
                }
                visited[v.0] = true;
                let name = drg.table_name(v).to_string();
                let Some(right) = ctx.table(&name) else {
                    continue;
                };
                let Some(&eid) = drg.best_edges(&edge_ids).first() else {
                    continue;
                };
                let Some((_, from_col, to_col)) = drg.edge(eid).oriented_from(u) else {
                    continue;
                };
                let left_key = qualified_column(ctx.base_name(), drg.table_name(u), from_col);
                if !table.has_column(&left_key) {
                    continue;
                }
                let out = match ctx.lake_cache().left_join_normalized(
                    &table,
                    right,
                    &left_key,
                    to_col,
                    &name,
                    join_seed(config.seed, drg.table_name(u), from_col, &name, to_col),
                ) {
                    Ok(out) => out,
                    Err(e) if e.interrupt().is_some() => break 'bfs,
                    Err(e) => return Err(e),
                };
                if out.matched > 0 {
                    table = out.table;
                    n_joined += 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }

    // Optional filter selection (+F): select-κ-best Spearman on the wide
    // table — "less than one second, since it performs feature selection
    // once for a single wide table".
    let all_features: Vec<String> = table
        .column_names()
        .into_iter()
        .filter(|c| *c != label)
        .map(String::from)
        .collect();
    let fs_start = Instant::now();
    let selected: Vec<String> = if config.filter {
        let labels: Vec<i64> = {
            let col = label_encode_column(table.column(&label)?);
            (0..col.len())
                .map(|i| col.get_f64(i).map_or(-1, |v| v as i64))
                .collect()
        };
        let data: Vec<Vec<f64>> = all_features
            .iter()
            .map(|f| label_encode_column(table.column(f).expect("listed")).to_f64_lossy())
            .collect();
        let picked = select_k_best(&data, &labels, RelevanceMethod::Spearman, config.filter_kappa, 0.0);
        picked
            .into_iter()
            .map(|s| all_features[s.index].clone())
            .collect()
    } else {
        all_features.clone()
    };
    let fs_time = fs_start.elapsed();

    let refs: Vec<&str> = selected.iter().map(String::as_str).collect();
    let accs = evaluate_feature_set(&table, &refs, &label, models, config.seed)?;
    Ok(Some(MethodResult {
        method: if config.filter { "JoinAll+F".into() } else { "JoinAll".into() },
        accuracy_per_model: accs,
        feature_selection_time: fs_time,
        total_time: t0.elapsed(),
        n_tables_joined: n_joined,
        n_features: selected.len(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::{Column, Table};

    fn ctx(n: usize) -> SearchContext {
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(300 + i)).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let s2 = Table::new(
            "s2",
            vec![
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(300 + i)).collect::<Vec<_>>())),
                (
                    "noise",
                    Column::from_floats((0..n).map(|i| Some(((i * 7) % 13) as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, s1, s2],
            &[
                ("base".into(), "k".into(), "s1".into(), "k".into()),
                ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn join_all_joins_everything() {
        let c = ctx(200);
        let r = run_join_all(&c, &[ModelKind::RandomForest], &JoinAllConfig::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(r.method, "JoinAll");
        assert_eq!(r.n_tables_joined, 2);
        assert!(r.mean_accuracy() > 0.9);
        // No selection: all non-label columns used.
        assert!(r.n_features >= 5);
    }

    #[test]
    fn filter_variant_selects_subset() {
        let c = ctx(200);
        let cfg = JoinAllConfig { filter: true, filter_kappa: 2, ..Default::default() };
        let r = run_join_all(&c, &[ModelKind::RandomForest], &cfg)
            .unwrap()
            .expect("feasible");
        assert_eq!(r.method, "JoinAll+F");
        assert!(r.n_features <= 2);
        assert!(r.mean_accuracy() > 0.9, "the signal must survive filtering");
    }

    #[test]
    fn infeasible_ordering_count_skips() {
        let c = ctx(100);
        let cfg = JoinAllConfig { max_orderings: 0.5, ..Default::default() };
        assert!(run_join_all(&c, &[ModelKind::RandomForest], &cfg).unwrap().is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ctx(150);
        let a = run_join_all(&c, &[ModelKind::RandomForest], &JoinAllConfig::default())
            .unwrap()
            .unwrap();
        let b = run_join_all(&c, &[ModelKind::RandomForest], &JoinAllConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(a.accuracy_per_model, b.accuracy_per_model);
    }

    #[test]
    fn cancelled_context_stops_bfs_before_joining() {
        let c = ctx(120);
        c.cancel();
        let r = run_join_all(&c, &[ModelKind::RandomForest], &JoinAllConfig::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(r.n_tables_joined, 0);
    }
}
