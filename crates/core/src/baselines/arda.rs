//! The ARDA baseline (Chepurko et al., PVLDB 2020), re-implemented from the
//! paper's description — exactly as the AutoFeat authors did ("since the
//! source code was unavailable, we implemented the feature selection part
//! of the system").
//!
//! ARDA is **single-hop**: it left-joins every table directly connected to
//! the base (a star), then runs *random-injection feature selection* (RIFS):
//! random probe features are injected, a random forest is trained, and real
//! features are kept only when their impurity importance beats the probes'
//! quantile across repeated trials; a wrapper picks the best keep-threshold
//! by validation accuracy. The repeated model training is what makes ARDA
//! slow relative to AutoFeat's heuristic ranking.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use autofeat_data::encode::to_matrix;
use autofeat_data::sample::train_test_split;
use autofeat_data::{Result, Table};
use autofeat_ml::eval::{accuracy, Classifier, ModelKind};
use autofeat_ml::forest::RandomForest;

use crate::context::SearchContext;
use crate::report::MethodResult;
use crate::seeding::join_seed;
use crate::train::evaluate_feature_set;

/// RIFS configuration.
#[derive(Debug, Clone)]
pub struct ArdaConfig {
    /// Number of injection trials.
    pub n_trials: usize,
    /// Injected random features per trial, as a fraction of the real
    /// feature count.
    pub injection_frac: f64,
    /// Candidate keep-thresholds (fraction of trials a feature must win);
    /// the wrapper picks the best by validation accuracy.
    pub thresholds: Vec<f64>,
    /// Quantile of the random-probe importances a real feature must exceed
    /// to win a trial.
    pub probe_quantile: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ArdaConfig {
    fn default() -> Self {
        ArdaConfig {
            n_trials: 4,
            injection_frac: 0.2,
            thresholds: vec![0.25, 0.5, 0.75],
            probe_quantile: 0.75,
            seed: 17,
        }
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[pos]
}

/// Join every direct neighbour of the base table (ARDA's star join),
/// using the highest-similarity edge per neighbour. Returns the augmented
/// table and the number of tables joined. Each join's representative picks
/// derive from its endpoints' identity, so they are independent of the
/// order neighbours are visited in.
fn star_join(ctx: &SearchContext, seed: u64) -> Result<(Table, usize)> {
    let drg = ctx.drg();
    let mut table = ctx.base_table().clone();
    let mut n_joined = 0usize;
    let Some(base_node) = drg.node(ctx.base_name()) else {
        return Ok((table, 0));
    };
    for (nbr, edge_ids) in drg.neighbours(base_node) {
        if ctx.control().interrupted().is_some() {
            break;
        }
        let name = drg.table_name(nbr).to_string();
        let Some(right) = ctx.table(&name) else {
            continue;
        };
        let Some(&eid) = drg.best_edges(&edge_ids).first() else {
            continue;
        };
        let Some((_, from_col, to_col)) = drg.edge(eid).oriented_from(base_node) else {
            continue;
        };
        if !table.has_column(from_col) {
            continue;
        }
        let out = match ctx.lake_cache().left_join_normalized(
            &table,
            right,
            from_col,
            to_col,
            &name,
            join_seed(seed, ctx.base_name(), from_col, &name, to_col),
        ) {
            Ok(out) => out,
            Err(e) if e.interrupt().is_some() => break,
            Err(e) => return Err(e),
        };
        if out.matched > 0 {
            table = out.table;
            n_joined += 1;
        }
    }
    Ok((table, n_joined))
}

/// Run the ARDA baseline.
pub fn run_arda(
    ctx: &SearchContext,
    models: &[ModelKind],
    config: &ArdaConfig,
) -> Result<MethodResult> {
    let _span = autofeat_obs::span("baseline_arda");
    let _ctl_guard =
        autofeat_data::control::install_ambient(Some(std::sync::Arc::clone(ctx.control())));
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // 1. Single-hop star join.
    let (table, n_joined) = star_join(ctx, config.seed)?;
    let label = ctx.label();
    let feature_names: Vec<String> = table
        .column_names()
        .into_iter()
        .filter(|c| *c != label)
        .map(String::from)
        .collect();
    let refs: Vec<&str> = feature_names.iter().map(String::as_str).collect();

    // 2. RIFS on a train/validation split.
    let split = train_test_split(&table, label, 0.25, &mut rng)?;
    let train_m = to_matrix(&split.train, &refs, label)?;
    let valid_m = to_matrix(&split.test, &refs, label)?;
    let d = train_m.n_features();
    let n_probes = ((d as f64 * config.injection_frac).ceil() as usize).max(1);

    let mut wins = vec![0usize; d];
    for trial in 0..config.n_trials {
        if ctx.control().interrupted().is_some() {
            break;
        }
        // Inject random probe features.
        let mut injected = train_m.clone();
        for p in 0..n_probes {
            let col: Vec<f64> = (0..injected.n_rows)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            injected.feature_names.push(format!("__probe_{p}"));
            injected.cols.push(col);
        }
        let mut rf = RandomForest::default_seeded(config.seed ^ ((trial as u64) << 3));
        if rf.fit(&injected).is_err() {
            continue;
        }
        let imp = rf.feature_importances(injected.n_features());
        let mut probe_imp: Vec<f64> = imp[d..].to_vec();
        probe_imp.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let bar = quantile(&probe_imp, config.probe_quantile);
        for (j, &v) in imp[..d].iter().enumerate() {
            if v > bar {
                wins[j] += 1;
            }
        }
    }

    // 3. Wrapper: pick the keep-threshold with the best validation
    //    accuracy (more model executions — the ARDA cost profile).
    let mut best: Option<(Vec<usize>, f64)> = None;
    for &thr in &config.thresholds {
        if ctx.control().interrupted().is_some() {
            break;
        }
        let need = (thr * config.n_trials as f64).ceil() as usize;
        let kept: Vec<usize> = (0..d).filter(|&j| wins[j] >= need).collect();
        if kept.is_empty() {
            continue;
        }
        let sub_train = train_m.select_features(&kept);
        let sub_valid = valid_m.select_features(&kept);
        let mut rf = RandomForest::default_seeded(config.seed ^ 0xa11);
        if rf.fit(&sub_train).is_err() {
            continue;
        }
        let acc = accuracy(&rf.predict(&sub_valid), &sub_valid.labels);
        if best.as_ref().is_none_or(|(_, b)| acc > *b) {
            best = Some((kept, acc));
        }
    }
    let kept = best.map(|(k, _)| k).unwrap_or_else(|| (0..d).collect());
    let kept_names: Vec<&str> = kept.iter().map(|&j| refs[j]).collect();
    let fs_time = t0.elapsed();

    // 4. Final evaluation with the requested models.
    let accs = evaluate_feature_set(&table, &kept_names, label, models, config.seed)?;
    Ok(MethodResult {
        method: "ARDA".into(),
        accuracy_per_model: accs,
        feature_selection_time: fs_time,
        total_time: t0.elapsed(),
        n_tables_joined: n_joined,
        n_features: kept_names.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    /// base(k, target) — s1(k, signal) — s2(k2 only reachable from s1).
    fn ctx(n: usize) -> SearchContext {
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "noise",
                    Column::from_floats((0..n).map(|i| Some(((i * 31) % 17) as f64)).collect::<Vec<_>>()),
                ),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(700 + i)).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let s2 = Table::new(
            "s2",
            vec![
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(700 + i)).collect::<Vec<_>>())),
                (
                    "deep",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64 * 2.0)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, s1, s2],
            &[
                ("base".into(), "k".into(), "s1".into(), "k".into()),
                ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn arda_joins_only_direct_neighbours() {
        let c = ctx(200);
        let r = run_arda(&c, &[ModelKind::RandomForest], &ArdaConfig::default()).unwrap();
        // s2 is two hops away: ARDA cannot reach it.
        assert_eq!(r.n_tables_joined, 1);
        assert_eq!(r.method, "ARDA");
    }

    #[test]
    fn arda_finds_the_single_hop_signal() {
        let c = ctx(300);
        let r = run_arda(&c, &[ModelKind::RandomForest], &ArdaConfig::default()).unwrap();
        let acc = r.mean_accuracy();
        assert!(acc > 0.9, "ARDA should exploit s1.signal, acc = {acc}");
    }

    #[test]
    fn rifs_keeps_fewer_than_all_features() {
        let c = ctx(300);
        let r = run_arda(&c, &[ModelKind::RandomForest], &ArdaConfig::default()).unwrap();
        // base has k + noise; join adds s1.{k, k2, signal} ⇒ 5 candidates.
        assert!(r.n_features < 5, "RIFS should drop probes-losing features, kept {}", r.n_features);
        assert!(r.n_features >= 1);
    }

    #[test]
    fn quantile_helper() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 0.5), 2.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 1.0), 3.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ctx(150);
        let a = run_arda(&c, &[ModelKind::RandomForest], &ArdaConfig::default()).unwrap();
        let b = run_arda(&c, &[ModelKind::RandomForest], &ArdaConfig::default()).unwrap();
        assert_eq!(a.n_features, b.n_features);
        assert_eq!(a.accuracy_per_model, b.accuracy_per_model);
    }

    #[test]
    fn cancelled_context_yields_base_only_result() {
        let c = ctx(120);
        c.cancel();
        let r = run_arda(&c, &[ModelKind::RandomForest], &ArdaConfig::default()).unwrap();
        assert_eq!(r.n_tables_joined, 0, "star join must wind down before joining");
    }
}
