//! Join-path materialization: turn a [`JoinPath`] into an augmented table
//! by replaying its hops as normalized left joins.
//!
//! Each hop's representative-pick seed is derived from the hop's identity
//! within its path ([`crate::seeding::hop_seed`]), exactly as during
//! discovery. This closes the train/serve skew of the earlier shared-RNG
//! replay: the rows a feature was scored on during discovery are the rows
//! it is trained on after materialization.

use autofeat_data::control::ambient_interrupted;
use autofeat_data::{DataError, Result, Table};
use autofeat_graph::JoinPath;

use crate::context::SearchContext;
use crate::seeding::hop_seed;

/// The column name a hop's left key has inside the intermediate table:
/// base-table columns keep their names; columns joined in from table `t`
/// were renamed to `t.col`.
pub fn qualified_column(base_name: &str, table: &str, column: &str) -> String {
    if table == base_name {
        column.to_string()
    } else {
        format!("{table}.{column}")
    }
}

/// Materialize a join path starting from `start` (usually the full base
/// table, or a stratified sample of it during discovery). Replays each hop
/// as a left join with cardinality normalization; right-hand columns get
/// `table.` prefixes.
pub fn materialize_path(
    ctx: &SearchContext,
    start: &Table,
    path: &JoinPath,
    seed: u64,
) -> Result<Table> {
    let _span = autofeat_obs::span("materialize");
    let mut current = start.clone();
    for (i, hop) in path.hops().iter().enumerate() {
        // Cooperative checkpoint per hop: a cancel or deadline on the
        // ambient control winds the replay down between joins.
        if let Some(reason) = ambient_interrupted() {
            return Err(DataError::Interrupted(reason));
        }
        let right = ctx.table(&hop.to_table).ok_or_else(|| {
            DataError::Invalid(format!("table `{}` not in context", hop.to_table))
        })?;
        let left_key = qualified_column(ctx.base_name(), &hop.from_table, &hop.from_column);
        // Joins go through the context's lake-wide index cache: replaying a
        // path discovery already explored reuses the indexes discovery
        // built, and the cached kernel is bit-identical to the uncached one.
        // Under a byte budget the cache may deny or evict an index, but the
        // join holds its own `Arc` for the duration of the hop — governance
        // changes rebuild frequency, never results (denied builds are simply
        // handed to this call transiently).
        let out = ctx.lake_cache().left_join_normalized(
            &current,
            right,
            &left_key,
            &hop.to_column,
            &hop.to_table,
            hop_seed(seed, &path.hops()[..i], hop),
        )?;
        current = out.table;
    }
    Ok(current)
}

/// Materialize a **join tree**: the union of several ranked paths rooted at
/// the base table (the paper's output is "depicted as a join tree", Fig. 2,
/// and its reported `#tables joined` exceeds any single chain's length).
///
/// Paths are replayed in the given (rank) order; a table already joined by
/// an earlier path is not joined again — its columns are already present
/// under the same `table.` prefix, so later hops can still use it as a
/// stepping stone. Returns the joined table and the distinct non-base
/// tables joined.
pub fn materialize_tree(
    ctx: &SearchContext,
    start: &Table,
    paths: &[&JoinPath],
    seed: u64,
) -> Result<(Table, Vec<String>)> {
    let _span = autofeat_obs::span("materialize");
    let mut current = start.clone();
    // `joined` preserves rank order for the caller; `joined_set` gives O(1)
    // membership so tree materialization stays linear in total hop count.
    let mut joined: Vec<String> = Vec::new();
    let mut joined_set: std::collections::HashSet<String> = std::collections::HashSet::new();
    for path in paths {
        for (i, hop) in path.hops().iter().enumerate() {
            // Same cooperative checkpoint as `materialize_path`.
            if let Some(reason) = ambient_interrupted() {
                return Err(DataError::Interrupted(reason));
            }
            if joined_set.contains(&hop.to_table) {
                continue;
            }
            let right = ctx.table(&hop.to_table).ok_or_else(|| {
                DataError::Invalid(format!("table `{}` not in context", hop.to_table))
            })?;
            let left_key = qualified_column(ctx.base_name(), &hop.from_table, &hop.from_column);
            if !current.has_column(&left_key) {
                // The stepping stone was never joined (its path prefix was
                // pruned elsewhere); skip this branch.
                break;
            }
            // The seed is the hop's identity *within its own path*, so a
            // table shared by several ranked paths gets the picks of the
            // first (best-ranked) path that joins it — the same picks its
            // discovery-time score was computed on.
            let out = ctx.lake_cache().left_join_normalized(
                &current,
                right,
                &left_key,
                &hop.to_column,
                &hop.to_table,
                hop_seed(seed, &path.hops()[..i], hop),
            )?;
            current = out.table;
            joined_set.insert(hop.to_table.clone());
            joined.push(hop.to_table.clone());
        }
    }
    Ok((current, joined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::{Column, Value};
    use autofeat_graph::JoinHop;

    fn ctx() -> SearchContext {
        let base = Table::new(
            "base",
            vec![
                ("a_id", Column::from_ints((0..10).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..10).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let a = Table::new(
            "a",
            vec![
                ("a_id", Column::from_ints((0..10).map(Some).collect::<Vec<_>>())),
                ("b_id", Column::from_ints((0..10).map(|i| Some(100 + i)).collect::<Vec<_>>())),
                ("fa", Column::from_floats((0..10).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let b = Table::new(
            "b",
            vec![
                ("b_id", Column::from_ints((0..10).map(|i| Some(100 + i)).collect::<Vec<_>>())),
                ("fb", Column::from_floats((0..10).map(|i| Some(i as f64 * 10.0)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, a, b],
            &[
                ("base".into(), "a_id".into(), "a".into(), "a_id".into()),
                ("a".into(), "b_id".into(), "b".into(), "b_id".into()),
            ],
            "base",
            "target",
        )
        .unwrap()
    }

    fn hop(from: &str, fc: &str, to: &str, tc: &str) -> JoinHop {
        JoinHop {
            from_table: from.into(),
            from_column: fc.into(),
            to_table: to.into(),
            to_column: tc.into(),
            weight: 1.0,
        }
    }

    #[test]
    fn one_hop_materializes() {
        let c = ctx();
        let path = JoinPath::from_hops(vec![hop("base", "a_id", "a", "a_id")]);
        let t = materialize_path(&c, c.base_table(), &path, 0).unwrap();
        assert_eq!(t.n_rows(), 10);
        assert!(t.has_column("a.fa"));
        assert_eq!(t.value("a.fa", 3).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn two_hop_uses_qualified_intermediate_key() {
        let c = ctx();
        let path = JoinPath::from_hops(vec![
            hop("base", "a_id", "a", "a_id"),
            hop("a", "b_id", "b", "b_id"),
        ]);
        let t = materialize_path(&c, c.base_table(), &path, 0).unwrap();
        assert!(t.has_column("b.fb"));
        assert_eq!(t.value("b.fb", 5).unwrap(), Value::Float(50.0));
    }

    #[test]
    fn empty_path_returns_start() {
        let c = ctx();
        let t = materialize_path(&c, c.base_table(), &JoinPath::empty(), 0).unwrap();
        assert_eq!(&t, c.base_table());
    }

    #[test]
    fn unknown_table_errors() {
        let c = ctx();
        let path = JoinPath::from_hops(vec![hop("base", "a_id", "ghost", "x")]);
        assert!(materialize_path(&c, c.base_table(), &path, 0).is_err());
    }

    #[test]
    fn qualified_column_rules() {
        assert_eq!(qualified_column("base", "base", "x"), "x");
        assert_eq!(qualified_column("base", "a", "x"), "a.x");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ctx();
        let path = JoinPath::from_hops(vec![hop("base", "a_id", "a", "a_id")]);
        let t1 = materialize_path(&c, c.base_table(), &path, 7).unwrap();
        let t2 = materialize_path(&c, c.base_table(), &path, 7).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn tree_union_joins_each_table_once() {
        let c = ctx();
        let p1 = JoinPath::from_hops(vec![hop("base", "a_id", "a", "a_id")]);
        let p2 = JoinPath::from_hops(vec![
            hop("base", "a_id", "a", "a_id"),
            hop("a", "b_id", "b", "b_id"),
        ]);
        let (t, joined) = materialize_tree(&c, c.base_table(), &[&p1, &p2], 0).unwrap();
        assert_eq!(joined, vec!["a".to_string(), "b".to_string()]);
        assert!(t.has_column("a.fa"));
        assert!(t.has_column("b.fb"));
        // No duplicate-suffix columns: `a` joined exactly once.
        assert!(!t.has_column("a.fa#2"));
        assert_eq!(t.n_rows(), 10);
    }

    /// Context whose `a` table has several rows per key with different
    /// feature values, so representative picks are observable.
    fn dup_ctx() -> SearchContext {
        let n = 12i64;
        let base = Table::new(
            "base",
            vec![
                ("a_id", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let a = Table::new(
            "a",
            vec![
                ("a_id", Column::from_ints((0..n * 5).map(|i| Some(i / 5)).collect::<Vec<_>>())),
                (
                    "fa",
                    Column::from_floats((0..n * 5).map(|i| Some(i as f64)).collect::<Vec<_>>()),
                ),
                ("b_id", Column::from_ints((0..n * 5).map(|i| Some(100 + i / 5)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let b = Table::new(
            "b",
            vec![
                ("b_id", Column::from_ints((100..100 + n).map(Some).collect::<Vec<_>>())),
                ("fb", Column::from_floats((0..n).map(|i| Some(i as f64 * 10.0)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, a, b],
            &[
                ("base".into(), "a_id".into(), "a".into(), "a_id".into()),
                ("a".into(), "b_id".into(), "b".into(), "b_id".into()),
            ],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn hop_picks_are_prefix_stable() {
        // Materializing the one-hop prefix and the two-hop path must pick
        // the SAME representatives for hop 1 — that hop's identity is its
        // prefix, not its position in some shared RNG stream. (The old
        // shared-RNG replay happened to satisfy this too, but per-hop seeds
        // make it a structural guarantee.)
        let c = dup_ctx();
        let p1 = JoinPath::from_hops(vec![hop("base", "a_id", "a", "a_id")]);
        let p12 = JoinPath::from_hops(vec![
            hop("base", "a_id", "a", "a_id"),
            hop("a", "b_id", "b", "b_id"),
        ]);
        let t1 = materialize_path(&c, c.base_table(), &p1, 42).unwrap();
        let t12 = materialize_path(&c, c.base_table(), &p12, 42).unwrap();
        for row in 0..t1.n_rows() {
            assert_eq!(t1.value("a.fa", row).unwrap(), t12.value("a.fa", row).unwrap());
        }
    }

    #[test]
    fn materialization_matches_manual_hop_seeded_joins() {
        // Pins the discovery/serve contract: materialize_path replays hops
        // with exactly `hop_seed(seed, prefix, hop)` — the seed discovery
        // used when it scored the path.
        use crate::seeding::hop_seed;
        use autofeat_data::join::left_join_normalized;
        let c = dup_ctx();
        let hops =
            vec![hop("base", "a_id", "a", "a_id"), hop("a", "b_id", "b", "b_id")];
        let path = JoinPath::from_hops(hops.clone());
        let via_executor = materialize_path(&c, c.base_table(), &path, 7).unwrap();

        let mut manual = c.base_table().clone();
        for (i, h) in hops.iter().enumerate() {
            let left_key = qualified_column(c.base_name(), &h.from_table, &h.from_column);
            manual = left_join_normalized(
                &manual,
                c.table(&h.to_table).unwrap(),
                &left_key,
                &h.to_column,
                &h.to_table,
                hop_seed(7, &hops[..i], h),
            )
            .unwrap()
            .table;
        }
        assert_eq!(via_executor, manual);
    }

    #[test]
    fn tree_first_path_picks_match_path_materialization() {
        // A table joined by the tree gets the picks of the first ranked
        // path that reaches it — identical to materializing that path
        // alone. This is what keeps tree-trained models consistent with
        // discovery-time scores.
        let c = dup_ctx();
        let p1 = JoinPath::from_hops(vec![hop("base", "a_id", "a", "a_id")]);
        let p2 = JoinPath::from_hops(vec![
            hop("base", "a_id", "a", "a_id"),
            hop("a", "b_id", "b", "b_id"),
        ]);
        let (tree, joined) = materialize_tree(&c, c.base_table(), &[&p1, &p2], 42).unwrap();
        assert_eq!(joined, vec!["a".to_string(), "b".to_string()]);
        let alone = materialize_path(&c, c.base_table(), &p1, 42).unwrap();
        for row in 0..alone.n_rows() {
            assert_eq!(tree.value("a.fa", row).unwrap(), alone.value("a.fa", row).unwrap());
        }
    }

    #[test]
    fn ambient_cancel_interrupts_materialization() {
        let c = ctx();
        let path = JoinPath::from_hops(vec![hop("base", "a_id", "a", "a_id")]);
        let ctl = std::sync::Arc::new(autofeat_data::RunControl::new());
        ctl.cancel();
        let _g = autofeat_data::control::install_ambient(Some(std::sync::Arc::clone(&ctl)));
        let err = materialize_path(&c, c.base_table(), &path, 0).unwrap_err();
        assert!(err.interrupt().is_some(), "{err}");
        let err = materialize_tree(&c, c.base_table(), &[&path], 0).unwrap_err();
        assert!(err.interrupt().is_some(), "{err}");
    }

    #[test]
    fn tree_skips_branch_with_missing_stepping_stone() {
        let c = ctx();
        // A path whose first hop uses a key that does not exist.
        let bad = JoinPath::from_hops(vec![hop("ghost", "x", "b", "b_id")]);
        let (t, joined) = materialize_tree(&c, c.base_table(), &[&bad], 0).unwrap();
        assert!(joined.is_empty());
        assert_eq!(&t, c.base_table());
    }
}
