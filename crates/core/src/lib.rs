//! # autofeat-core
//!
//! The paper's primary contribution: **ranking-based transitive feature
//! discovery over join paths** (Algorithms 1 & 2 of "AutoFeat: Transitive
//! Feature Discovery over Join Paths", ICDE 2024), plus every baseline of
//! its evaluation.
//!
//! ## The AutoFeat pipeline
//!
//! 1. A [`SearchContext`] bundles the data lake's
//!    tables, the base table + label, and the Dataset Relation Graph (KFK
//!    edges in the *benchmark setting*, discovered edges in the *data-lake
//!    setting*).
//! 2. [`AutoFeat::discover`](autofeat::AutoFeat) runs Algorithm 1: BFS over
//!    the DRG, per-neighbour similarity-score pruning, left joins with
//!    cardinality normalization, τ data-quality pruning, *select-κ-best*
//!    relevance analysis (Spearman by default), streaming redundancy
//!    analysis (MRMR by default) against the running selected set, and
//!    Algorithm 2 path scoring — producing a ranked list of join paths with
//!    their selected features.
//! 3. [`train::train_top_k`] materializes the top-k paths at full scale,
//!    trains the requested models, and returns the best path by accuracy.
//!
//! Every phase polls the run's [`RunControl`] cooperatively: cancellation
//! and deadlines truncate the ranking instead of erroring, worker panics
//! are isolated into [`PathFailure`] entries, and a deadline-driven
//! degradation ladder trades fidelity for liveness (DESIGN.md §3h).
//!
//! ## Baselines (§VII-B)
//!
//! * [`baselines::base`] — the unaugmented base table;
//! * [`baselines::arda`] — ARDA's random-injection feature selection over a
//!   single-hop star join;
//! * [`baselines::mab`] — the multi-armed-bandit augmenter (UCB1 over
//!   same-name join candidates, model-accuracy reward);
//! * [`baselines::join_all`] — JoinAll / JoinAll+F with the Eq. 3
//!   feasibility guard.

// Fail-soft discipline: non-test code must propagate errors, not unwrap.
// CI runs clippy with `-D warnings`, so this is effectively a deny there.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod autofeat;
pub mod baselines;
pub mod config;
pub mod context;
pub mod executor;
pub mod ranking;
pub mod report;
pub mod seeding;
pub mod service;
pub mod train;
pub mod tuning;

pub use autofeat::{
    AutoFeat, DiscoveryResult, PathFailure, Phase, RankedPath, ResilienceStats, TruncationReason,
};
pub use autofeat_data::{Interrupt, RunControl};
pub use autofeat_obs::{
    MetricsRegistry, MetricsSnapshot, RunTrace, StatsListener, Tracer, METRICS_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
};
pub use config::{AutoFeatConfig, DegradeConfig};
pub use context::{load_lake_dir, LakeLoadReport, QuarantinedTable, SearchContext};
pub use executor::materialize_path;
pub use ranking::compute_score;
pub use report::{discovery_health_report, MethodResult};
pub use seeding::{hop_seed, join_seed};
pub use service::{
    DiscoveryRequest, DiscoveryService, PreparedRequest, RequestLogRecord, RequestOutcome,
    ServiceStats, REQUEST_LOG_CAP,
};
pub use train::{train_top_k, TrainOutcome};
pub use tuning::{tune, TuningGrid, TuningOutcome};
