//! From ranked paths to trained models (§VI, "From Ranked Paths to Training
//! ML Models"): materialize the top-k paths at full scale, train the
//! requested models on each, and keep the best path by accuracy.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use autofeat_data::encode::to_matrix;
use autofeat_data::sample::train_test_split;
use autofeat_data::{Result, Table};
use autofeat_ml::eval::{accuracy, ModelKind};

use crate::autofeat::{DiscoveryResult, RankedPath};
use crate::config::AutoFeatConfig;
use crate::context::SearchContext;
use crate::executor::materialize_path;
use crate::report::MethodResult;

/// Fraction of rows held out for testing (the paper's 80/20 split).
pub const TEST_FRAC: f64 = 0.2;

/// A candidate evaluation: (rank index, mean accuracy, per-model
/// accuracies, feature count).
type Candidate = (usize, f64, Vec<(ModelKind, f64)>, usize);
/// A join-tree evaluation: (per-model accuracies, mean, tables, features).
type TreeEval = (Vec<(ModelKind, f64)>, f64, usize, usize);

/// Train every model on one table restricted to `features`, returning
/// per-model test accuracies. Shared by AutoFeat and all baselines so the
/// comparison is apples-to-apples.
pub fn evaluate_feature_set(
    table: &Table,
    features: &[&str],
    label: &str,
    models: &[ModelKind],
    seed: u64,
) -> Result<Vec<(ModelKind, f64)>> {
    let _span = autofeat_obs::span("model_eval");
    let mut rng = StdRng::seed_from_u64(seed);
    let split = train_test_split(table, label, TEST_FRAC, &mut rng)?;
    let train_m = to_matrix(&split.train, features, label)?;
    let test_m = to_matrix(&split.test, features, label)?;
    let mut out = Vec::with_capacity(models.len());
    for &kind in models {
        let mut model = kind.build(seed);
        autofeat_obs::incr("ml.models_evaluated");
        let acc = match model.fit(&train_m) {
            Ok(()) => accuracy(&model.predict(&test_m), &test_m.labels),
            // A learner that cannot handle the task (e.g. >2 classes for the
            // binary-only ones) scores 0 rather than aborting the sweep.
            Err(_) => 0.0,
        };
        out.push((kind, acc));
    }
    Ok(out)
}

/// Outcome of training the top-k ranked paths.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The winning path (None when no path survived discovery — the result
    /// then reflects the bare base table).
    pub best_path: Option<RankedPath>,
    /// The reportable result row.
    pub result: MethodResult,
    /// Mean accuracy of every evaluated path, in ranking order.
    pub per_path_accuracy: Vec<f64>,
    /// Whether training wound down early at a cooperative interrupt (a
    /// cancel or deadline on the context's control). The outcome then
    /// reflects only the candidates fully evaluated before the stop — a
    /// partial-but-valid result, not an error.
    pub interrupted: bool,
}

/// Materialize and evaluate the top-k ranked paths; pick the best by mean
/// accuracy across the given models.
pub fn train_top_k(
    ctx: &SearchContext,
    discovery: &DiscoveryResult,
    models: &[ModelKind],
    config: &AutoFeatConfig,
) -> Result<TrainOutcome> {
    let _span = autofeat_obs::span("train");
    let t0 = Instant::now();
    // Honour the context's lifecycle control for the whole training phase:
    // materialization joins poll it ambiently between hops, and the
    // candidate loop checks it per path. Interruption is graceful — the
    // best fully evaluated candidate so far still wins.
    let _ctl_guard = autofeat_data::control::install_ambient(Some(std::sync::Arc::clone(
        ctx.control(),
    )));
    let mut stopped_early = false;
    let base_features = ctx.base_features();
    let label = ctx.label();

    let candidates = discovery.top_k(config.top_k);
    let mut best: Option<Candidate> = None;
    let mut per_path = Vec::with_capacity(candidates.len());
    for (i, rp) in candidates.iter().enumerate() {
        if ctx.control().interrupted().is_some() {
            stopped_early = true;
            break;
        }
        let table = match materialize_path(ctx, ctx.base_table(), &rp.path, config.seed) {
            Ok(t) => t,
            Err(e) if e.interrupt().is_some() => {
                stopped_early = true;
                break;
            }
            Err(e) => return Err(e),
        };
        // Train on every globally selected feature living on this path's
        // tables (not just the ones first selected *via* this path — the
        // streaming R_sel makes per-path lists order-dependent), plus the
        // base features.
        let path_tables: Vec<String> = rp
            .path
            .tables()
            .into_iter()
            .filter(|t| *t != ctx.base_name())
            .map(|t| format!("{t}."))
            .collect();
        let mut features: Vec<&str> = base_features.iter().map(String::as_str).collect();
        for f in &discovery.selected_features {
            if path_tables.iter().any(|p| f.starts_with(p.as_str())) {
                features.push(f);
            }
        }
        let n_feats = features.len();
        let accs = evaluate_feature_set(&table, &features, label, models, config.seed)?;
        let mean = if accs.is_empty() {
            0.0
        } else {
            accs.iter().map(|(_, a)| a).sum::<f64>() / accs.len() as f64
        };
        per_path.push(mean);
        if best.as_ref().is_none_or(|(_, b, _, _)| mean > *b) {
            best = Some((i, mean, accs, n_feats));
        }
    }

    // Also evaluate the **join tree** spanned by the top-k paths together
    // (the paper's output artifact, Fig. 2): on star schemata a single
    // chain can join only one table, while the tree augments with all k.
    let mut tree_result: Option<TreeEval> = None;
    if candidates.len() > 1 && !stopped_early {
        let paths: Vec<&autofeat_graph::JoinPath> =
            candidates.iter().map(|rp| &rp.path).collect();
        match crate::executor::materialize_tree(ctx, ctx.base_table(), &paths, config.seed) {
            Ok((table, joined)) if joined.len() > 1 => {
                let prefixes: Vec<String> = joined.iter().map(|t| format!("{t}.")).collect();
                let mut features: Vec<&str> =
                    base_features.iter().map(String::as_str).collect();
                for f in &discovery.selected_features {
                    if prefixes.iter().any(|p| f.starts_with(p.as_str())) {
                        features.push(f);
                    }
                }
                let n_feats = features.len();
                let accs = evaluate_feature_set(&table, &features, label, models, config.seed)?;
                let mean = if accs.is_empty() {
                    0.0
                } else {
                    accs.iter().map(|(_, a)| a).sum::<f64>() / accs.len() as f64
                };
                tree_result = Some((accs, mean, joined.len(), n_feats));
            }
            Ok(_) => {}
            // A cooperative stop skips the tree; the best chain evaluated so
            // far still wins.
            Err(e) if e.interrupt().is_some() => stopped_early = true,
            Err(e) => return Err(e),
        }
    }

    let chain_best_mean = best.as_ref().map(|(_, m, _, _)| *m).unwrap_or(f64::NEG_INFINITY);
    if let Some((accs, mean, n_tables, n_features)) = tree_result {
        if mean > chain_best_mean {
            return Ok(TrainOutcome {
                result: MethodResult {
                    method: "AutoFeat".into(),
                    accuracy_per_model: accs,
                    feature_selection_time: discovery.elapsed,
                    total_time: discovery.elapsed + t0.elapsed(),
                    n_tables_joined: n_tables,
                    n_features,
                },
                best_path: Some(candidates[0].clone()),
                per_path_accuracy: per_path,
                interrupted: stopped_early,
            });
        }
    }

    let outcome = match best {
        Some((i, _, accs, n_features)) => {
            let rp = candidates[i].clone();
            let n_tables = rp.path.tables().len().saturating_sub(1);
            TrainOutcome {
                result: MethodResult {
                    method: "AutoFeat".into(),
                    accuracy_per_model: accs,
                    feature_selection_time: discovery.elapsed,
                    total_time: discovery.elapsed + t0.elapsed(),
                    n_tables_joined: n_tables,
                    n_features,
                },
                best_path: Some(rp),
                per_path_accuracy: per_path,
                interrupted: stopped_early,
            }
        }
        None => {
            // No surviving path: fall back to the bare base table.
            let features: Vec<&str> = base_features.iter().map(String::as_str).collect();
            let accs =
                evaluate_feature_set(ctx.base_table(), &features, label, models, config.seed)?;
            TrainOutcome {
                result: MethodResult {
                    method: "AutoFeat".into(),
                    accuracy_per_model: accs,
                    feature_selection_time: discovery.elapsed,
                    total_time: discovery.elapsed + t0.elapsed(),
                    n_tables_joined: 0,
                    n_features: base_features.len(),
                },
                best_path: None,
                per_path_accuracy: per_path,
                interrupted: stopped_early,
            }
        }
    };
    Ok(outcome)
}

/// Convenience: total wall time of a duration pair, used by reporting code.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autofeat::AutoFeat;
    use autofeat_data::Column;

    fn ctx(n: usize) -> SearchContext {
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, s1],
            &[("base".into(), "k".into(), "s1".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn augmentation_beats_base() {
        let c = ctx(300);
        let discovery = AutoFeat::paper().discover(&c).unwrap();
        let out = train_top_k(
            &c,
            &discovery,
            &[ModelKind::RandomForest],
            &AutoFeatConfig::default(),
        )
        .unwrap();
        assert!(out.best_path.is_some());
        let acc = out.result.mean_accuracy();
        assert!(acc > 0.95, "augmented accuracy should be ~1.0, got {acc}");
        assert_eq!(out.result.n_tables_joined, 1);
    }

    #[test]
    fn base_only_fallback_when_no_paths() {
        let c = ctx(100);
        // Empty discovery result.
        let empty = DiscoveryResult {
            ranked: vec![],
            n_joins_evaluated: 0,
            n_pruned_unjoinable: 0,
            n_pruned_quality: 0,
            n_pruned_similarity: 0,
            n_pruned_budget: 0,
            truncated: false,
            truncation: None,
            failures: vec![],
            elapsed: Duration::ZERO,
            selected_features: vec![],
            threads_used: 1,
            cache: None,
            trace: None,
            resilience: Default::default(),
        };
        let out =
            train_top_k(&c, &empty, &[ModelKind::RandomForest], &AutoFeatConfig::default())
                .unwrap();
        assert!(out.best_path.is_none());
        assert_eq!(out.result.n_tables_joined, 0);
    }

    #[test]
    fn cancelled_context_yields_partial_training_outcome() {
        let c = ctx(300);
        let discovery = AutoFeat::paper().discover(&c).unwrap();
        assert!(!discovery.ranked.is_empty());
        c.cancel();
        let out = train_top_k(
            &c,
            &discovery,
            &[ModelKind::RandomForest],
            &AutoFeatConfig::default(),
        )
        .unwrap();
        assert!(out.interrupted, "cancel before training = graceful partial outcome");
        assert!(out.best_path.is_none());
        assert_eq!(out.result.n_tables_joined, 0, "falls back to the bare base table");
        c.control().reset();
        let healthy = train_top_k(
            &c,
            &discovery,
            &[ModelKind::RandomForest],
            &AutoFeatConfig::default(),
        )
        .unwrap();
        assert!(!healthy.interrupted);
        assert!(healthy.best_path.is_some());
    }

    #[test]
    fn evaluate_feature_set_runs_all_models() {
        let c = ctx(200);
        let accs = evaluate_feature_set(
            c.base_table(),
            &["k"],
            "target",
            &ModelKind::tree_models(),
            0,
        )
        .unwrap();
        assert_eq!(accs.len(), 4);
        for (_, a) in accs {
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn per_path_accuracy_reported() {
        let c = ctx(200);
        let discovery = AutoFeat::paper().discover(&c).unwrap();
        let out = train_top_k(
            &c,
            &discovery,
            &[ModelKind::RandomForest],
            &AutoFeatConfig::default(),
        )
        .unwrap();
        assert_eq!(out.per_path_accuracy.len(), discovery.top_k(4).len());
    }
}
