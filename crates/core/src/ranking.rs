//! Algorithm 2: the join-path ranking score.
//!
//! The paper combines the relevance-analysis scores and the
//! redundancy-analysis scores of the features a join contributed: each sum
//! is "weighted by the cardinality of the selected subset" (i.e. averaged),
//! and the final score is their combination. Empty subsets contribute zero,
//! so a join that added nothing useful ranks at the bottom.

/// Algorithm 2: combine relevance scores and redundancy (J) scores into one
/// ranking score.
///
/// `score_rel` are the relevance scores of the features that survived the
/// relevance analysis; `score_red` the J-scores of those that also survived
/// the redundancy analysis. Returns
/// `mean(score_rel) + mean(score_red)` (each term 0 for an empty set).
pub fn compute_score(score_rel: &[f64], score_red: &[f64]) -> f64 {
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    mean(score_rel) + mean(score_red)
}

/// Cumulative path score: a multi-hop path is scored by the sum of its
/// per-hop scores, so paths that keep contributing features keep climbing.
pub fn accumulate(previous: f64, hop_score: f64) -> f64 {
    previous + hop_score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sets_score_zero() {
        assert_eq!(compute_score(&[], &[]), 0.0);
    }

    #[test]
    fn relevance_only() {
        assert!((compute_score(&[0.4, 0.6], &[]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn both_terms_add() {
        let s = compute_score(&[0.5, 0.7], &[0.2]);
        assert!((s - (0.6 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn more_good_features_do_not_dilute() {
        // Averaging means two strong features beat one strong + one weak.
        let strong = compute_score(&[0.9, 0.9], &[]);
        let mixed = compute_score(&[0.9, 0.1], &[]);
        assert!(strong > mixed);
    }

    #[test]
    fn accumulation_is_additive() {
        assert_eq!(accumulate(1.5, 0.5), 2.0);
    }
}
