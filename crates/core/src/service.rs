//! The resident discovery service: one loaded lake serving many
//! concurrent discovery requests.
//!
//! [`AutoFeat::discover`] is a one-shot call; a [`DiscoveryService`] is the
//! long-lived handle around it. It owns one [`SearchContext`] — the lake's
//! tables, its DRG, the governed `LakeIndexCache`, the fault domain — and
//! accepts [`DiscoveryRequest`]s from any number of threads at once. Every
//! request gets:
//!
//! * a **request-scoped view** of the context (its own base table, target
//!   label, and config — the lake state is `Arc`-shared, never copied or
//!   mutably borrowed);
//! * a **fresh scoped control**: a [`RunControl::scoped`] child of the
//!   service-wide control, carrying the request's own deadline. Cancelling
//!   one request never touches its siblings; [`shutdown`]
//!   (`DiscoveryService::shutdown`) cancels the service-wide parent and
//!   winds every in-flight request down to a valid partial result;
//! * **request-attributed governance counters**: the `cache` stats on its
//!   [`DiscoveryResult`] count this request's own hits/misses/builds, not
//!   a racy delta of the shared cache (per-request recorders sum exactly
//!   to the shared cache's global counters).
//!
//! Requests are served on the caller's thread (plus the shared fan-out
//! worker pool in `autofeat_data::parallel`); the service itself spawns
//! nothing (except an optional stats listener, below). Identical requests
//! are **bit-identical** whether run solo or concurrently with any mix of
//! other requests — determinism is per-hop seeded and shared state is
//! read-only or content-addressed (DESIGN.md §3i).
//!
//! ## Telemetry
//!
//! The service carries an always-on [`MetricsRegistry`]
//! (`autofeat_obs::metrics`) — process-lifetime counters, gauges, and
//! latency histograms, never reset by request lifecycle and entirely
//! separate from the per-run `Tracer` (DESIGN.md §3k). Every completed
//! request records its wall time, outcome (`ok` / `truncated` /
//! `cancelled` / `error`), degradation rungs, and caught worker panics;
//! scrape-time refreshes re-export the shared cache's governance counters
//! and the worker pool's queue/utilization gauges. Read it three ways:
//!
//! * [`stats`](DiscoveryService::stats) — the cheap in-process struct,
//!   now split by outcome with a `peak_in_flight` high-water mark;
//! * [`metrics_snapshot`](DiscoveryService::metrics_snapshot) /
//!   [`metrics_text`](DiscoveryService::metrics_text) /
//!   [`metrics_json`](DiscoveryService::metrics_json) — the full registry
//!   as a struct, Prometheus-style text, or stable-schema JSON
//!   (`metrics.schema.json`);
//! * [`serve_metrics`](DiscoveryService::serve_metrics) — an optional
//!   std-only TCP listener serving `GET /metrics`, `/metrics.json`, and
//!   `/healthz` from a background thread (the first brick of the
//!   roadmap's network front-end), shut down with the service.
//!
//! A bounded in-memory request log (ring of the last
//! [`REQUEST_LOG_CAP`] [`RequestLogRecord`]s) is queryable via
//! [`request_log`](DiscoveryService::request_log) and dumped on
//! [`shutdown`](DiscoveryService::shutdown) when `AUTOFEAT_REQUEST_LOG`
//! names a file path (or `-`/`stderr` for standard error).
//!
//! Telemetry must never perturb results: instrumented serving is asserted
//! bit-identical to unmetered serving, and its throughput overhead is
//! gated below 3% (`serve_throughput`'s `metrics_overhead` gate). The
//! [`new_unmetered`](DiscoveryService::new_unmetered) constructor exists
//! for that baseline measurement — production callers should always use
//! [`new`](DiscoveryService::new).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use autofeat_data::cache::LakeIndexCache;
use autofeat_data::parallel::shared_pool;
use autofeat_data::{CacheStats, Result, RunControl, Table};
use autofeat_obs::{
    render_json, render_prometheus, Counter, Histogram, MetricsRegistry, MetricsSnapshot,
    StatsListener, StatsSource,
};

use crate::autofeat::{AutoFeat, DiscoveryResult, TruncationReason};
use crate::config::AutoFeatConfig;
use crate::context::SearchContext;

/// One discovery request against a [`DiscoveryService`]: which base table
/// and target label to discover for, under which configuration, with how
/// much time. Every field defaults to the service's own (`None` = inherit).
#[derive(Debug, Clone, Default)]
pub struct DiscoveryRequest {
    /// Base table name; `None` = the service context's base.
    pub base: Option<String>,
    /// Target (label) column on the base table; `None` = the service
    /// context's label.
    pub target: Option<String>,
    /// Full per-request configuration; `None` = the service's base config.
    pub config: Option<AutoFeatConfig>,
    /// Per-request wall-clock budget, armed on the request's scoped
    /// control. Composes with any `time_budget` inside the config (and the
    /// service-wide control): the tightest deadline wins.
    pub time_budget: Option<Duration>,
}

impl DiscoveryRequest {
    /// A request that inherits everything from the service.
    pub fn new() -> DiscoveryRequest {
        DiscoveryRequest::default()
    }

    /// Discover for this base table instead of the service default.
    pub fn with_base(mut self, base: impl Into<String>) -> DiscoveryRequest {
        self.base = Some(base.into());
        self
    }

    /// Discover for this target column instead of the service default.
    pub fn with_target(mut self, target: impl Into<String>) -> DiscoveryRequest {
        self.target = Some(target.into());
        self
    }

    /// Use this configuration instead of the service's base config.
    pub fn with_config(mut self, config: AutoFeatConfig) -> DiscoveryRequest {
        self.config = Some(config);
        self
    }

    /// Bound this request's wall-clock time.
    pub fn with_time_budget(mut self, budget: Duration) -> DiscoveryRequest {
        self.time_budget = Some(budget);
        self
    }
}

/// How one completed request ended, from an operator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Ran to completion, untruncated.
    Ok,
    /// Stopped early by a budget gate (deadline or `max_joins`) but
    /// returned a valid ranked partial.
    Truncated,
    /// Interrupted by a cancel (per-request or service shutdown); still a
    /// valid ranked partial (anytime semantics).
    Cancelled,
    /// Returned an error after starting to run.
    Error,
}

impl RequestOutcome {
    /// Stable lower-case label (`"ok"`, `"truncated"`, …), used in the
    /// request log and metric names.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestOutcome::Ok => "ok",
            RequestOutcome::Truncated => "truncated",
            RequestOutcome::Cancelled => "cancelled",
            RequestOutcome::Error => "error",
        }
    }

    fn classify(result: &Result<DiscoveryResult>) -> RequestOutcome {
        match result {
            Err(_) => RequestOutcome::Error,
            Ok(r) => match r.truncation {
                None => RequestOutcome::Ok,
                Some(TruncationReason::Cancelled) => RequestOutcome::Cancelled,
                Some(_) => RequestOutcome::Truncated,
            },
        }
    }
}

/// Service-level counters, for operators of a resident deployment.
///
/// Completions are split by [`RequestOutcome`]; `requests_served` is their
/// sum. A request that fails validation in
/// [`prepare`](DiscoveryService::prepare) (unknown base/target) never runs
/// and is counted in `requests_rejected`, not in `requests_served`.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests that have completed (`ok + truncated + cancelled + error`).
    pub requests_served: u64,
    /// Completed untruncated.
    pub requests_ok: u64,
    /// Completed early on a budget gate with a valid partial.
    pub requests_truncated: u64,
    /// Interrupted by a cancel with a valid partial.
    pub requests_cancelled: u64,
    /// Completed with an error after starting to run.
    pub requests_error: u64,
    /// Rejected at validation, before running.
    pub requests_rejected: u64,
    /// Requests currently executing.
    pub in_flight: u64,
    /// High-water mark of `in_flight` over the service lifetime.
    pub peak_in_flight: u64,
    /// The shared cache's global counters (all requests combined).
    pub cache: CacheStats,
}

/// Capacity of the in-memory structured request log: once full, the oldest
/// record is dropped per new completion (the drop count is exported as
/// `autofeat_request_log_dropped_total`).
pub const REQUEST_LOG_CAP: usize = 256;

/// One completed request, as recorded in the bounded request log.
#[derive(Debug, Clone)]
pub struct RequestLogRecord {
    /// Monotonically increasing completion id (1-based, service-lifetime).
    pub id: u64,
    /// Base table the request ran against.
    pub base: String,
    /// Target column the request ranked for.
    pub target: String,
    /// When the request finished, as an offset from service creation.
    pub finished_at: Duration,
    /// Request wall time (submit → result), as measured by the service.
    pub duration: Duration,
    /// How it ended.
    pub outcome: RequestOutcome,
    /// The error message, for [`RequestOutcome::Error`] completions.
    pub error: Option<String>,
    /// Cache hits attributed to this request (per-request recorder delta).
    pub cache_hits: u64,
    /// Cache misses (index builds triggered) attributed to this request.
    pub cache_misses: u64,
    /// Index build time attributed to this request.
    pub cache_build_time: Duration,
    /// Degradation-ladder rungs this request engaged.
    pub degradations: usize,
    /// Worker panics caught and isolated while serving this request.
    pub worker_panics: usize,
}

impl RequestLogRecord {
    /// One-line rendering for the shutdown dump / operator logs.
    pub fn render_line(&self) -> String {
        format!(
            "req {} {}→{} {} in {:.3}ms (cache {}h/{}m, {} degradations, {} panics){}",
            self.id,
            self.base,
            self.target,
            self.outcome.as_str(),
            self.duration.as_secs_f64() * 1e3,
            self.cache_hits,
            self.cache_misses,
            self.degradations,
            self.worker_panics,
            match &self.error {
                Some(e) => format!(": {e}"),
                None => String::new(),
            },
        )
    }
}

/// The always-on atomics behind [`ServiceStats`]. Separate from the
/// optional registry layer so even an unmetered service keeps exact
/// outcome accounting.
#[derive(Debug, Default)]
struct ServiceCounters {
    ok: AtomicU64,
    truncated: AtomicU64,
    cancelled: AtomicU64,
    error: AtomicU64,
    rejected: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
}

impl ServiceCounters {
    fn outcome(&self, o: RequestOutcome) -> &AtomicU64 {
        match o {
            RequestOutcome::Ok => &self.ok,
            RequestOutcome::Truncated => &self.truncated,
            RequestOutcome::Cancelled => &self.cancelled,
            RequestOutcome::Error => &self.error,
        }
    }

    fn served(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.cancelled.load(Ordering::Relaxed)
            + self.error.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct RequestLog {
    records: VecDeque<RequestLogRecord>,
    dropped: u64,
}

/// The registry layer: hot-path handles plus the request-log ring. Lives
/// in an `Arc` so the background stats listener can outlive any one
/// borrow of the service.
#[derive(Debug)]
struct Telemetry {
    registry: Arc<MetricsRegistry>,
    started: Instant,
    latency: Histogram,
    requests_ok: Counter,
    requests_truncated: Counter,
    requests_cancelled: Counter,
    requests_error: Counter,
    requests_rejected: Counter,
    degradations: Counter,
    worker_panics: Counter,
    tables_added: Counter,
    tables_removed: Counter,
    log: Mutex<RequestLog>,
    next_id: AtomicU64,
    log_dumped: AtomicBool,
}

impl Telemetry {
    fn new() -> Telemetry {
        let registry = MetricsRegistry::new();
        Telemetry {
            latency: registry.histogram(
                "autofeat_request_latency_seconds",
                "Per-request wall time (submit to result), all outcomes.",
            ),
            requests_ok: registry.counter(
                "autofeat_requests_ok_total",
                "Requests completed untruncated.",
            ),
            requests_truncated: registry.counter(
                "autofeat_requests_truncated_total",
                "Requests stopped early by a budget gate (valid partial returned).",
            ),
            requests_cancelled: registry.counter(
                "autofeat_requests_cancelled_total",
                "Requests interrupted by a cancel (valid partial returned).",
            ),
            requests_error: registry.counter(
                "autofeat_requests_error_total",
                "Requests that returned an error after starting to run.",
            ),
            requests_rejected: registry.counter(
                "autofeat_requests_rejected_total",
                "Requests rejected at validation, before running.",
            ),
            degradations: registry.counter(
                "autofeat_degradations_total",
                "Degradation-ladder rungs engaged across all requests.",
            ),
            worker_panics: registry.counter(
                "autofeat_worker_panics_total",
                "Worker panics caught and isolated across all requests.",
            ),
            tables_added: registry.counter(
                "autofeat_tables_added_total",
                "Tables added to the live lake (incremental DRG splice).",
            ),
            tables_removed: registry.counter(
                "autofeat_tables_removed_total",
                "Tables removed from the live lake (incremental DRG splice).",
            ),
            registry,
            started: Instant::now(),
            log: Mutex::new(RequestLog::default()),
            next_id: AtomicU64::new(0),
            log_dumped: AtomicBool::new(false),
        }
    }

    /// Record one completed request into the histogram, outcome counters,
    /// and the bounded request log.
    fn record_request(
        &self,
        base: &str,
        target: &str,
        duration: Duration,
        outcome: RequestOutcome,
        result: &Result<DiscoveryResult>,
    ) {
        self.latency.observe(duration);
        match outcome {
            RequestOutcome::Ok => self.requests_ok.incr(),
            RequestOutcome::Truncated => self.requests_truncated.incr(),
            RequestOutcome::Cancelled => self.requests_cancelled.incr(),
            RequestOutcome::Error => self.requests_error.incr(),
        }
        let (cache, degradations, worker_panics, error) = match result {
            Ok(r) => (
                r.cache,
                r.resilience.degradations.len(),
                r.resilience.worker_panics,
                None,
            ),
            Err(e) => (None, 0, 0, Some(e.to_string())),
        };
        self.degradations.add(degradations as u64);
        self.worker_panics.add(worker_panics as u64);
        let record = RequestLogRecord {
            id: self.next_id.fetch_add(1, Ordering::Relaxed) + 1,
            base: base.to_string(),
            target: target.to_string(),
            finished_at: self.started.elapsed(),
            duration,
            outcome,
            error,
            cache_hits: cache.as_ref().map_or(0, |c| c.hits),
            cache_misses: cache.as_ref().map_or(0, |c| c.misses),
            cache_build_time: cache.as_ref().map_or(Duration::ZERO, |c| c.build_time),
            degradations,
            worker_panics,
        };
        if let Ok(mut log) = self.log.lock() {
            if log.records.len() >= REQUEST_LOG_CAP {
                log.records.pop_front();
                log.dropped += 1;
            }
            log.records.push_back(record);
        }
    }

    /// Re-export externally owned state (service gauges, cache governance
    /// counters, pool pressure) into the registry. Called just before
    /// every snapshot, so scrapes are point-in-time without any push-side
    /// coupling between those subsystems and the registry.
    fn refresh_gauges(&self, counters: &ServiceCounters, cache: &LakeIndexCache) {
        let reg = &self.registry;
        reg.gauge("autofeat_uptime_seconds", "Seconds since the service was created.")
            .set(self.started.elapsed().as_secs_f64());
        reg.gauge("autofeat_in_flight", "Requests currently executing.")
            .set(counters.in_flight.load(Ordering::Relaxed) as f64);
        reg.gauge("autofeat_peak_in_flight", "High-water mark of in-flight requests.")
            .set(counters.peak_in_flight.load(Ordering::Relaxed) as f64);
        if let Ok(log) = self.log.lock() {
            reg.counter(
                "autofeat_request_log_dropped_total",
                "Request-log records evicted after the ring filled.",
            )
            .record_total(log.dropped);
        }

        let c = cache.stats();
        reg.counter("autofeat_cache_hits_total", "Joins served from an already-built index.")
            .record_total(c.hits);
        reg.counter("autofeat_cache_misses_total", "Joins that had to build the index first.")
            .record_total(c.misses);
        reg.counter("autofeat_cache_evictions_total", "Indexes evicted by the byte budget.")
            .record_total(c.evictions);
        reg.counter("autofeat_cache_rejections_total", "Builds denied retention by the budget.")
            .record_total(c.rejections);
        reg.counter(
            "autofeat_cache_lock_recoveries_total",
            "Operations that found the governor lock poisoned and degraded.",
        )
        .record_total(c.lock_recoveries);
        reg.counter("autofeat_cache_build_panics_total", "Index builds that panicked (isolated).")
            .record_total(c.build_panics);
        reg.gauge("autofeat_cache_resident_bytes", "Heap footprint of retained indexes.")
            .set(c.resident_bytes as f64);
        reg.gauge(
            "autofeat_cache_peak_resident_bytes",
            "High-water mark of resident bytes in the current budget epoch.",
        )
        .set(c.peak_resident_bytes as f64);
        reg.gauge("autofeat_cache_entries", "Number of resident (table, column) indexes.")
            .set(c.entries as f64);
        reg.gauge("autofeat_cache_budget_bytes", "Byte budget in force (0 = unbounded).")
            .set(c.budget_bytes.unwrap_or(0) as f64);
        let touches = c.hits + c.misses;
        reg.gauge("autofeat_cache_hit_ratio", "hits / (hits + misses) since process start.")
            .set(if touches == 0 { 0.0 } else { c.hits as f64 / touches as f64 });
        reg.gauge("autofeat_cache_build_seconds_total", "Total wall time spent building indexes.")
            .set(c.build_time.as_secs_f64());

        if let Some(pool) = shared_pool() {
            reg.gauge("autofeat_pool_size", "Worker threads in the shared fan-out pool.")
                .set(pool.size() as f64);
            reg.gauge("autofeat_pool_queue_depth", "Jobs queued but not yet picked up.")
                .set(pool.queue_depth() as f64);
            reg.gauge("autofeat_pool_busy_workers", "Workers currently executing a job.")
                .set(pool.busy_workers() as f64);
        }
    }

    fn snapshot(&self, counters: &ServiceCounters, cache: &LakeIndexCache) -> MetricsSnapshot {
        self.refresh_gauges(counters, cache);
        self.registry.snapshot()
    }

    /// Dump the request log to the sink named by `AUTOFEAT_REQUEST_LOG`
    /// (a file path, or `-`/`stderr` for standard error); unset = no dump.
    /// At most once per service, no matter how often shutdown is called.
    fn dump_request_log(&self) {
        let Ok(sink) = std::env::var("AUTOFEAT_REQUEST_LOG") else { return };
        if sink.is_empty() || self.log_dumped.swap(true, Ordering::SeqCst) {
            return;
        }
        let Ok(log) = self.log.lock() else { return };
        let mut out = String::new();
        out.push_str(&format!(
            "request log at shutdown: {} records ({} dropped)\n",
            log.records.len(),
            log.dropped
        ));
        for r in &log.records {
            out.push_str(&r.render_line());
            out.push('\n');
        }
        if sink == "-" || sink == "stderr" {
            eprint!("{out}");
        } else if let Err(e) = std::fs::write(&sink, &out) {
            eprintln!("failed to write request log to {sink}: {e}");
        }
    }
}

/// The listener's view of the service: enough `Arc`s to render a fresh
/// scrape without borrowing the `DiscoveryService` itself.
struct ServiceMetricsSource {
    telemetry: Arc<Telemetry>,
    counters: Arc<ServiceCounters>,
    cache: Arc<LakeIndexCache>,
    control: Arc<RunControl>,
}

impl StatsSource for ServiceMetricsSource {
    fn metrics_text(&self) -> String {
        render_prometheus(&self.telemetry.snapshot(&self.counters, &self.cache))
    }

    fn metrics_json(&self) -> String {
        render_json(&self.telemetry.snapshot(&self.counters, &self.cache))
    }

    fn healthy(&self) -> bool {
        !self.control.is_cancelled()
    }
}

/// A long-lived discovery service over one loaded lake. See the module
/// docs for the serving model; [`submit`](DiscoveryService::submit) is the
/// whole API for most callers and is safe to call from many threads at
/// once (`&self`, no interior `&mut` on shared lake state).
#[derive(Debug)]
pub struct DiscoveryService {
    ctx: SearchContext,
    base_config: AutoFeatConfig,
    /// Service-wide control: the parent of every request's scoped control.
    /// This is the context's own handle, so `ctx.cancel()` and
    /// [`shutdown`](DiscoveryService::shutdown) are the same lever.
    control: Arc<RunControl>,
    counters: Arc<ServiceCounters>,
    /// The always-on registry layer; `None` only for the unmetered
    /// overhead-baseline constructor.
    telemetry: Option<Arc<Telemetry>>,
}

impl DiscoveryService {
    /// Wrap a loaded lake context into a resident service. `base_config`
    /// is the default configuration for requests that do not carry their
    /// own. Telemetry is always on; see
    /// [`new_unmetered`](DiscoveryService::new_unmetered) for the
    /// benchmark baseline.
    pub fn new(ctx: SearchContext, base_config: AutoFeatConfig) -> DiscoveryService {
        DiscoveryService::build(ctx, base_config, true)
    }

    /// A service without the registry/histogram/request-log layer. Exists
    /// so `serve_throughput` can measure the overhead of telemetry against
    /// a true baseline; outcome counting ([`stats`](DiscoveryService::stats))
    /// stays exact either way. Not for production use.
    pub fn new_unmetered(ctx: SearchContext, base_config: AutoFeatConfig) -> DiscoveryService {
        DiscoveryService::build(ctx, base_config, false)
    }

    fn build(ctx: SearchContext, base_config: AutoFeatConfig, metered: bool) -> DiscoveryService {
        let control = Arc::clone(ctx.control());
        DiscoveryService {
            ctx,
            base_config,
            control,
            counters: Arc::new(ServiceCounters::default()),
            telemetry: metered.then(|| Arc::new(Telemetry::new())),
        }
    }

    /// The underlying lake context (shared state: tables, DRG, cache).
    pub fn context(&self) -> &SearchContext {
        &self.ctx
    }

    /// The default configuration applied to requests without their own.
    pub fn base_config(&self) -> &AutoFeatConfig {
        &self.base_config
    }

    /// The service-wide control. Cancelling it (equivalently:
    /// [`shutdown`](DiscoveryService::shutdown)) interrupts every in-flight
    /// and future request at its next cooperative checkpoint.
    pub fn control(&self) -> &Arc<RunControl> {
        &self.control
    }

    /// Cancel the service-wide control: every in-flight request winds down
    /// to a valid ranked partial (anytime semantics, DESIGN.md §3h), and
    /// every later submit returns immediately with a cancelled truncation.
    /// Dumps the request log when `AUTOFEAT_REQUEST_LOG` is set.
    pub fn shutdown(&self) {
        self.control.cancel();
        if let Some(tel) = &self.telemetry {
            tel.dump_request_log();
        }
    }

    /// Has [`shutdown`](DiscoveryService::shutdown) been requested?
    pub fn is_shut_down(&self) -> bool {
        self.control.is_cancelled()
    }

    /// Point-in-time service counters, split by outcome.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            requests_served: c.served(),
            requests_ok: c.ok.load(Ordering::Relaxed),
            requests_truncated: c.truncated.load(Ordering::Relaxed),
            requests_cancelled: c.cancelled.load(Ordering::Relaxed),
            requests_error: c.error.load(Ordering::Relaxed),
            requests_rejected: c.rejected.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            peak_in_flight: c.peak_in_flight.load(Ordering::Relaxed),
            cache: self.ctx.lake_cache().stats(),
        }
    }

    /// A fresh snapshot of the full metrics registry (service counters and
    /// latency histogram, cache governance, pool pressure). Empty for an
    /// [unmetered](DiscoveryService::new_unmetered) service.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.telemetry {
            Some(tel) => tel.snapshot(&self.counters, self.ctx.lake_cache()),
            None => MetricsSnapshot::default(),
        }
    }

    /// [`metrics_snapshot`](DiscoveryService::metrics_snapshot) rendered as
    /// Prometheus-style text exposition.
    pub fn metrics_text(&self) -> String {
        render_prometheus(&self.metrics_snapshot())
    }

    /// [`metrics_snapshot`](DiscoveryService::metrics_snapshot) rendered as
    /// the stable JSON layout (`metrics.schema.json`).
    pub fn metrics_json(&self) -> String {
        render_json(&self.metrics_snapshot())
    }

    /// The bounded structured request log, oldest first (up to
    /// [`REQUEST_LOG_CAP`] records). Empty for an unmetered service.
    pub fn request_log(&self) -> Vec<RequestLogRecord> {
        match &self.telemetry {
            Some(tel) => tel
                .log
                .lock()
                .map(|l| l.records.iter().cloned().collect())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Request-log records evicted after the ring filled.
    pub fn request_log_dropped(&self) -> u64 {
        self.telemetry
            .as_ref()
            .and_then(|tel| tel.log.lock().ok().map(|l| l.dropped))
            .unwrap_or(0)
    }

    /// Start the std-only TCP stats listener on `addr` (use
    /// `"127.0.0.1:0"` for an ephemeral port), serving `GET /metrics`
    /// (Prometheus text), `/metrics.json`, and `/healthz` (503 once the
    /// service is shut down) from a background thread. Stop it with
    /// [`StatsListener::stop`] or by dropping the listener; it holds
    /// `Arc`s, not borrows, so it may outlive any one borrow of `self`.
    /// Errors with `Unsupported` on an unmetered service.
    pub fn serve_metrics(&self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<StatsListener> {
        let Some(tel) = &self.telemetry else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "metrics listener requires a metered service (DiscoveryService::new)",
            ));
        };
        let source = ServiceMetricsSource {
            telemetry: Arc::clone(tel),
            counters: Arc::clone(&self.counters),
            cache: self.ctx.lake_cache_arc(),
            control: Arc::clone(&self.control),
        };
        StatsListener::serve(addr, Arc::new(source))
    }

    /// Validate `req` and bind it to a request-scoped context view and a
    /// fresh scoped control, without running it yet. Use the returned
    /// handle's [`control`](PreparedRequest::control) to cancel this one
    /// request from another thread, then [`run`](PreparedRequest::run) it.
    ///
    /// A validation failure (unknown base/target) is counted as a
    /// *rejected* request — it never ran, so it appears in
    /// `requests_rejected`, not `requests_served`.
    pub fn prepare(&self, req: &DiscoveryRequest) -> Result<PreparedRequest<'_>> {
        let config = req.config.clone().unwrap_or_else(|| self.base_config.clone());
        let base = req.base.as_deref().unwrap_or_else(|| self.ctx.base_name());
        let target = req.target.as_deref().unwrap_or_else(|| self.ctx.label());
        let view = match self.ctx.with_base_label(base, target) {
            Ok(view) => view,
            Err(e) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(tel) = &self.telemetry {
                    tel.requests_rejected.incr();
                }
                return Err(e);
            }
        };
        let base = base.to_string();
        let target = target.to_string();
        // Fresh scoped control per request: a cancel or deadline here is
        // invisible to sibling requests, a service-wide cancel reaches
        // every child, and no reset-reuse hazard exists because nothing is
        // ever reset (each request's control is born clean).
        let deadline = req.time_budget.and_then(|b| Instant::now().checked_add(b));
        let control = self.control.scoped(deadline);
        let ctx = view.with_request_control(Arc::clone(&control));
        Ok(PreparedRequest { service: self, ctx, config, control, base, target })
    }

    /// Serve one request to completion on the calling thread. Concurrent
    /// submits interleave freely; each returns its own independent
    /// [`DiscoveryResult`], bit-identical to the same request served solo.
    pub fn submit(&self, req: &DiscoveryRequest) -> Result<DiscoveryResult> {
        self.prepare(req)?.run()
    }

    /// Add `table` to the live lake without draining in-flight requests:
    /// the new table is profiled outside the lake lock, spliced into the
    /// DRG incrementally ([`SearchContext::add_table`]), and visible to
    /// every request prepared after this call returns. Requests already
    /// running keep their pre-mutation snapshot — never a torn view.
    /// Errors if the service was built from an immutable (KFK /
    /// explicit-DRG) context or the name is already present.
    pub fn add_table(&self, table: Table) -> Result<()> {
        self.ctx.add_table(table)?;
        if let Some(tel) = &self.telemetry {
            tel.tables_added.incr();
        }
        Ok(())
    }

    /// Remove `name` from the live lake: its DRG edges are spliced out
    /// incrementally and only its own cache entries are invalidated
    /// ([`SearchContext::remove_table`]); the rest of the cache survives.
    /// In-flight requests holding the pre-mutation snapshot finish
    /// unperturbed. Errors on the base table, unknown names, or an
    /// immutable context.
    pub fn remove_table(&self, name: &str) -> Result<()> {
        self.ctx.remove_table(name)?;
        if let Some(tel) = &self.telemetry {
            tel.tables_removed.incr();
        }
        Ok(())
    }
}

/// A validated, bound, not-yet-running request from
/// [`DiscoveryService::prepare`].
#[derive(Debug)]
pub struct PreparedRequest<'a> {
    service: &'a DiscoveryService,
    ctx: SearchContext,
    config: AutoFeatConfig,
    control: Arc<RunControl>,
    base: String,
    target: String,
}

impl PreparedRequest<'_> {
    /// This request's own control: cancel it to interrupt just this
    /// request (clone the `Arc` into whatever thread should hold the
    /// trigger before calling [`run`](PreparedRequest::run)).
    pub fn control(&self) -> &Arc<RunControl> {
        &self.control
    }

    /// The request-scoped context view this request will run against.
    pub fn context(&self) -> &SearchContext {
        &self.ctx
    }

    /// Run the request on the calling thread.
    pub fn run(self) -> Result<DiscoveryResult> {
        let counters = &self.service.counters;
        let was = counters.in_flight.fetch_add(1, Ordering::Relaxed);
        counters.peak_in_flight.fetch_max(was + 1, Ordering::Relaxed);
        // The guard only tracks occupancy; outcome accounting happens on
        // the normal return path below (a panic escapes uncounted — the
        // caller is losing the thread anyway).
        struct InFlight<'s>(&'s ServiceCounters);
        impl Drop for InFlight<'_> {
            fn drop(&mut self) {
                self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let _guard = InFlight(counters);
        let started = Instant::now();
        let result = AutoFeat::new(self.config).discover(&self.ctx);
        let duration = started.elapsed();
        let outcome = RequestOutcome::classify(&result);
        counters.outcome(outcome).fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = &self.service.telemetry {
            tel.record_request(&self.base, &self.target, duration, outcome, &result);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autofeat::TruncationReason;
    use autofeat_data::{Column, Table};

    /// base(k, target) — sat(k, f): one hop, enough for ranked output.
    fn service_ctx(n: i64) -> SearchContext {
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                (
                    "target",
                    Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let sat = Table::new(
            "sat",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                (
                    "f",
                    Column::from_floats(
                        (0..n).map(|i| Some(((i % 2) * 100 + i) as f64)).collect::<Vec<_>>(),
                    ),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, sat],
            &[("base".into(), "k".into(), "sat".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap()
    }

    /// Same lake shape as [`service_ctx`], but discovery-built so the
    /// service can mutate it.
    fn mutable_ctx(n: i64) -> SearchContext {
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                (
                    "target",
                    Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let sat = Table::new(
            "sat",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                (
                    "f",
                    Column::from_floats(
                        (0..n).map(|i| Some(((i % 2) * 100 + i) as f64)).collect::<Vec<_>>(),
                    ),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_discovery(
            vec![base, sat],
            &autofeat_discovery::SchemaMatcher::paper_default(),
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn live_mutation_changes_later_requests_and_counts() {
        let n = 40i64;
        let service = DiscoveryService::new(mutable_ctx(n), AutoFeatConfig::default());
        let before = service.submit(&DiscoveryRequest::new()).unwrap();
        let extra = Table::new(
            "extra",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                (
                    "g",
                    Column::from_floats((0..n).map(|i| Some(i as f64 * 3.0)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        service.add_table(extra).unwrap();
        let after = service.submit(&DiscoveryRequest::new()).unwrap();
        assert!(
            after.ranked.len() > before.ranked.len(),
            "the added joinable table yields new candidate paths ({} vs {})",
            after.ranked.len(),
            before.ranked.len()
        );
        service.remove_table("extra").unwrap();
        let reverted = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_same_ranking(&before, &reverted);
        assert!(service.remove_table("base").is_err(), "base stays protected");
        let snap = service.metrics_snapshot();
        assert_eq!(snap.counter("autofeat_tables_added_total"), Some(1));
        assert_eq!(snap.counter("autofeat_tables_removed_total"), Some(1));
    }

    fn assert_same_ranking(a: &DiscoveryResult, b: &DiscoveryResult) {
        assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "bit-identical scores");
            assert_eq!(x.features, y.features);
        }
        assert_eq!(a.selected_features, b.selected_features);
    }

    #[test]
    fn service_request_matches_one_shot_run() {
        let cfg = AutoFeatConfig::default();
        let solo = AutoFeat::new(cfg.clone()).discover(&service_ctx(40)).unwrap();
        let service = DiscoveryService::new(service_ctx(40), cfg);
        let via_service = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_same_ranking(&solo, &via_service);
        let stats = service.stats();
        assert_eq!(stats.requests_served, 1);
        assert_eq!(stats.requests_ok, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.peak_in_flight, 1, "one request peaked at one in flight");
    }

    #[test]
    fn unknown_base_or_target_is_rejected() {
        let service = DiscoveryService::new(service_ctx(20), AutoFeatConfig::default());
        assert!(service.submit(&DiscoveryRequest::new().with_base("ghost")).is_err());
        assert!(service.submit(&DiscoveryRequest::new().with_target("ghost")).is_err());
        let stats = service.stats();
        assert_eq!(stats.requests_served, 0, "rejected before running");
        assert_eq!(stats.requests_rejected, 2);
        assert_eq!(
            service.metrics_snapshot().counter("autofeat_requests_rejected_total"),
            Some(2),
            "registry agrees with ServiceStats"
        );
        assert!(service.request_log().is_empty(), "rejections never reach the log");
    }

    #[test]
    fn shutdown_truncates_new_requests_but_stays_ok() {
        let service = DiscoveryService::new(service_ctx(30), AutoFeatConfig::default());
        service.shutdown();
        assert!(service.is_shut_down());
        let r = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_eq!(r.truncation, Some(TruncationReason::Cancelled), "anytime semantics");
        assert_eq!(service.stats().requests_cancelled, 1);
    }

    #[test]
    fn request_deadline_does_not_leak_to_siblings() {
        let service = DiscoveryService::new(service_ctx(40), AutoFeatConfig::default());
        let starved = service
            .submit(&DiscoveryRequest::new().with_time_budget(Duration::ZERO))
            .unwrap();
        assert!(
            matches!(starved.truncation, Some(TruncationReason::DeadlineExceeded { .. })),
            "zero budget truncates: {:?}",
            starved.truncation
        );
        let healthy = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_eq!(healthy.truncation, None, "sibling unaffected by expired deadline");
        assert!(!healthy.ranked.is_empty());
        let stats = service.stats();
        assert_eq!(stats.requests_truncated, 1);
        assert_eq!(stats.requests_ok, 1);
        assert_eq!(stats.requests_served, 2);
    }

    #[test]
    fn cancelling_one_prepared_request_spares_the_rest() {
        let service = DiscoveryService::new(service_ctx(40), AutoFeatConfig::default());
        let prepared = service.prepare(&DiscoveryRequest::new()).unwrap();
        prepared.control().cancel();
        let cancelled = prepared.run().unwrap();
        assert_eq!(cancelled.truncation, Some(TruncationReason::Cancelled));
        let healthy = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_eq!(healthy.truncation, None);
        assert!(!service.is_shut_down());
    }

    #[test]
    fn per_request_config_overrides_base_config() {
        let wide = AutoFeatConfig { top_k: 5, ..AutoFeatConfig::default() };
        let narrow_cfg = AutoFeatConfig { top_k: 1, ..AutoFeatConfig::default() };
        let service = DiscoveryService::new(service_ctx(40), wide);
        let narrow =
            service.submit(&DiscoveryRequest::new().with_config(narrow_cfg)).unwrap();
        assert!(narrow.ranked.len() <= 1, "request config wins");
    }

    #[test]
    fn request_log_records_completions_in_order() {
        let service = DiscoveryService::new(service_ctx(40), AutoFeatConfig::default());
        service.submit(&DiscoveryRequest::new()).unwrap();
        service
            .submit(&DiscoveryRequest::new().with_time_budget(Duration::ZERO))
            .unwrap();
        let log = service.request_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].id, 1);
        assert_eq!(log[0].outcome, RequestOutcome::Ok);
        assert_eq!(log[0].base, "base");
        assert_eq!(log[0].target, "target");
        assert!(log[0].error.is_none());
        assert_eq!(log[1].id, 2);
        assert_eq!(log[1].outcome, RequestOutcome::Truncated);
        assert!(log[1].finished_at >= log[0].finished_at, "completion order");
        assert_eq!(service.request_log_dropped(), 0);
        assert!(log[0].render_line().contains("req 1 base→target ok"));
    }

    #[test]
    fn metrics_snapshot_exports_latency_outcomes_and_cache() {
        let service = DiscoveryService::new(service_ctx(40), AutoFeatConfig::default());
        for _ in 0..3 {
            service.submit(&DiscoveryRequest::new()).unwrap();
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.counter("autofeat_requests_ok_total"), Some(3));
        let latency = snap.histogram("autofeat_request_latency_seconds").unwrap();
        assert_eq!(latency.count, 3, "one latency observation per completion");
        assert!(latency.quantile(0.99) > 0.0);
        assert!(snap.gauge("autofeat_cache_resident_bytes").is_some());
        assert!(snap.gauge("autofeat_uptime_seconds").unwrap() >= 0.0);
        let text = service.metrics_text();
        assert!(text.contains("autofeat_request_latency_seconds_p50"));
        assert!(text.contains("autofeat_requests_ok_total 3"));
        let json = service.metrics_json();
        assert!(json.contains("\"schema_version\""));
    }

    #[test]
    fn unmetered_service_counts_but_exports_nothing() {
        let service = DiscoveryService::new_unmetered(service_ctx(30), AutoFeatConfig::default());
        service.submit(&DiscoveryRequest::new()).unwrap();
        assert_eq!(service.stats().requests_ok, 1, "outcome accounting stays exact");
        assert!(service.metrics_snapshot().metrics.is_empty());
        assert!(service.request_log().is_empty());
        let err = service.serve_metrics("127.0.0.1:0").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }
}
