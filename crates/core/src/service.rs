//! The resident discovery service: one loaded lake serving many
//! concurrent discovery requests.
//!
//! [`AutoFeat::discover`] is a one-shot call; a [`DiscoveryService`] is the
//! long-lived handle around it. It owns one [`SearchContext`] — the lake's
//! tables, its DRG, the governed `LakeIndexCache`, the fault domain — and
//! accepts [`DiscoveryRequest`]s from any number of threads at once. Every
//! request gets:
//!
//! * a **request-scoped view** of the context (its own base table, target
//!   label, and config — the lake state is `Arc`-shared, never copied or
//!   mutably borrowed);
//! * a **fresh scoped control**: a [`RunControl::scoped`] child of the
//!   service-wide control, carrying the request's own deadline. Cancelling
//!   one request never touches its siblings; [`shutdown`]
//!   (`DiscoveryService::shutdown`) cancels the service-wide parent and
//!   winds every in-flight request down to a valid partial result;
//! * **request-attributed governance counters**: the `cache` stats on its
//!   [`DiscoveryResult`] count this request's own hits/misses/builds, not
//!   a racy delta of the shared cache (per-request recorders sum exactly
//!   to the shared cache's global counters).
//!
//! Requests are served on the caller's thread (plus the shared fan-out
//! worker pool in `autofeat_data::parallel`); the service itself spawns
//! nothing. Identical requests are **bit-identical** whether run solo or
//! concurrently with any mix of other requests — determinism is per-hop
//! seeded and shared state is read-only or content-addressed (DESIGN.md
//! §3i).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use autofeat_data::{CacheStats, Result, RunControl};

use crate::autofeat::{AutoFeat, DiscoveryResult};
use crate::config::AutoFeatConfig;
use crate::context::SearchContext;

/// One discovery request against a [`DiscoveryService`]: which base table
/// and target label to discover for, under which configuration, with how
/// much time. Every field defaults to the service's own (`None` = inherit).
#[derive(Debug, Clone, Default)]
pub struct DiscoveryRequest {
    /// Base table name; `None` = the service context's base.
    pub base: Option<String>,
    /// Target (label) column on the base table; `None` = the service
    /// context's label.
    pub target: Option<String>,
    /// Full per-request configuration; `None` = the service's base config.
    pub config: Option<AutoFeatConfig>,
    /// Per-request wall-clock budget, armed on the request's scoped
    /// control. Composes with any `time_budget` inside the config (and the
    /// service-wide control): the tightest deadline wins.
    pub time_budget: Option<Duration>,
}

impl DiscoveryRequest {
    /// A request that inherits everything from the service.
    pub fn new() -> DiscoveryRequest {
        DiscoveryRequest::default()
    }

    /// Discover for this base table instead of the service default.
    pub fn with_base(mut self, base: impl Into<String>) -> DiscoveryRequest {
        self.base = Some(base.into());
        self
    }

    /// Discover for this target column instead of the service default.
    pub fn with_target(mut self, target: impl Into<String>) -> DiscoveryRequest {
        self.target = Some(target.into());
        self
    }

    /// Use this configuration instead of the service's base config.
    pub fn with_config(mut self, config: AutoFeatConfig) -> DiscoveryRequest {
        self.config = Some(config);
        self
    }

    /// Bound this request's wall-clock time.
    pub fn with_time_budget(mut self, budget: Duration) -> DiscoveryRequest {
        self.time_budget = Some(budget);
        self
    }
}

/// Service-level counters, for operators of a resident deployment.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests that have completed (successfully or with an error).
    pub requests_served: u64,
    /// Requests currently executing.
    pub in_flight: u64,
    /// The shared cache's global counters (all requests combined).
    pub cache: CacheStats,
}

/// A long-lived discovery service over one loaded lake. See the module
/// docs for the serving model; [`submit`](DiscoveryService::submit) is the
/// whole API for most callers and is safe to call from many threads at
/// once (`&self`, no interior `&mut` on shared lake state).
#[derive(Debug)]
pub struct DiscoveryService {
    ctx: SearchContext,
    base_config: AutoFeatConfig,
    /// Service-wide control: the parent of every request's scoped control.
    /// This is the context's own handle, so `ctx.cancel()` and
    /// [`shutdown`](DiscoveryService::shutdown) are the same lever.
    control: Arc<RunControl>,
    served: AtomicU64,
    in_flight: AtomicU64,
}

impl DiscoveryService {
    /// Wrap a loaded lake context into a resident service. `base_config`
    /// is the default configuration for requests that do not carry their
    /// own.
    pub fn new(ctx: SearchContext, base_config: AutoFeatConfig) -> DiscoveryService {
        let control = Arc::clone(ctx.control());
        DiscoveryService { ctx, base_config, control, served: AtomicU64::new(0), in_flight: AtomicU64::new(0) }
    }

    /// The underlying lake context (shared state: tables, DRG, cache).
    pub fn context(&self) -> &SearchContext {
        &self.ctx
    }

    /// The default configuration applied to requests without their own.
    pub fn base_config(&self) -> &AutoFeatConfig {
        &self.base_config
    }

    /// The service-wide control. Cancelling it (equivalently:
    /// [`shutdown`](DiscoveryService::shutdown)) interrupts every in-flight
    /// and future request at its next cooperative checkpoint.
    pub fn control(&self) -> &Arc<RunControl> {
        &self.control
    }

    /// Cancel the service-wide control: every in-flight request winds down
    /// to a valid ranked partial (anytime semantics, DESIGN.md §3h), and
    /// every later submit returns immediately with a cancelled truncation.
    pub fn shutdown(&self) {
        self.control.cancel();
    }

    /// Has [`shutdown`](DiscoveryService::shutdown) been requested?
    pub fn is_shut_down(&self) -> bool {
        self.control.is_cancelled()
    }

    /// Point-in-time service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests_served: self.served.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            cache: self.ctx.lake_cache().stats(),
        }
    }

    /// Validate `req` and bind it to a request-scoped context view and a
    /// fresh scoped control, without running it yet. Use the returned
    /// handle's [`control`](PreparedRequest::control) to cancel this one
    /// request from another thread, then [`run`](PreparedRequest::run) it.
    pub fn prepare(&self, req: &DiscoveryRequest) -> Result<PreparedRequest<'_>> {
        let config = req.config.clone().unwrap_or_else(|| self.base_config.clone());
        let base = req.base.as_deref().unwrap_or_else(|| self.ctx.base_name());
        let target = req.target.as_deref().unwrap_or_else(|| self.ctx.label());
        let view = self.ctx.with_base_label(base, target)?;
        // Fresh scoped control per request: a cancel or deadline here is
        // invisible to sibling requests, a service-wide cancel reaches
        // every child, and no reset-reuse hazard exists because nothing is
        // ever reset (each request's control is born clean).
        let deadline = req.time_budget.and_then(|b| Instant::now().checked_add(b));
        let control = self.control.scoped(deadline);
        let ctx = view.with_request_control(Arc::clone(&control));
        Ok(PreparedRequest { service: self, ctx, config, control })
    }

    /// Serve one request to completion on the calling thread. Concurrent
    /// submits interleave freely; each returns its own independent
    /// [`DiscoveryResult`], bit-identical to the same request served solo.
    pub fn submit(&self, req: &DiscoveryRequest) -> Result<DiscoveryResult> {
        self.prepare(req)?.run()
    }
}

/// A validated, bound, not-yet-running request from
/// [`DiscoveryService::prepare`].
#[derive(Debug)]
pub struct PreparedRequest<'a> {
    service: &'a DiscoveryService,
    ctx: SearchContext,
    config: AutoFeatConfig,
    control: Arc<RunControl>,
}

impl PreparedRequest<'_> {
    /// This request's own control: cancel it to interrupt just this
    /// request (clone the `Arc` into whatever thread should hold the
    /// trigger before calling [`run`](PreparedRequest::run)).
    pub fn control(&self) -> &Arc<RunControl> {
        &self.control
    }

    /// The request-scoped context view this request will run against.
    pub fn context(&self) -> &SearchContext {
        &self.ctx
    }

    /// Run the request on the calling thread.
    pub fn run(self) -> Result<DiscoveryResult> {
        struct InFlight<'s>(&'s DiscoveryService);
        impl Drop for InFlight<'_> {
            fn drop(&mut self) {
                self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
                self.0.served.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.service.in_flight.fetch_add(1, Ordering::Relaxed);
        let _guard = InFlight(self.service);
        AutoFeat::new(self.config).discover(&self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autofeat::TruncationReason;
    use autofeat_data::{Column, Table};

    /// base(k, target) — sat(k, f): one hop, enough for ranked output.
    fn service_ctx(n: i64) -> SearchContext {
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                (
                    "target",
                    Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let sat = Table::new(
            "sat",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                (
                    "f",
                    Column::from_floats(
                        (0..n).map(|i| Some(((i % 2) * 100 + i) as f64)).collect::<Vec<_>>(),
                    ),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, sat],
            &[("base".into(), "k".into(), "sat".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap()
    }

    fn assert_same_ranking(a: &DiscoveryResult, b: &DiscoveryResult) {
        assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "bit-identical scores");
            assert_eq!(x.features, y.features);
        }
        assert_eq!(a.selected_features, b.selected_features);
    }

    #[test]
    fn service_request_matches_one_shot_run() {
        let cfg = AutoFeatConfig::default();
        let solo = AutoFeat::new(cfg.clone()).discover(&service_ctx(40)).unwrap();
        let service = DiscoveryService::new(service_ctx(40), cfg);
        let via_service = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_same_ranking(&solo, &via_service);
        assert_eq!(service.stats().requests_served, 1);
        assert_eq!(service.stats().in_flight, 0);
    }

    #[test]
    fn unknown_base_or_target_is_rejected() {
        let service = DiscoveryService::new(service_ctx(20), AutoFeatConfig::default());
        assert!(service.submit(&DiscoveryRequest::new().with_base("ghost")).is_err());
        assert!(service.submit(&DiscoveryRequest::new().with_target("ghost")).is_err());
        assert_eq!(service.stats().requests_served, 0, "rejected before running");
    }

    #[test]
    fn shutdown_truncates_new_requests_but_stays_ok() {
        let service = DiscoveryService::new(service_ctx(30), AutoFeatConfig::default());
        service.shutdown();
        assert!(service.is_shut_down());
        let r = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_eq!(r.truncation, Some(TruncationReason::Cancelled), "anytime semantics");
    }

    #[test]
    fn request_deadline_does_not_leak_to_siblings() {
        let service = DiscoveryService::new(service_ctx(40), AutoFeatConfig::default());
        let starved = service
            .submit(&DiscoveryRequest::new().with_time_budget(Duration::ZERO))
            .unwrap();
        assert!(
            matches!(starved.truncation, Some(TruncationReason::DeadlineExceeded { .. })),
            "zero budget truncates: {:?}",
            starved.truncation
        );
        let healthy = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_eq!(healthy.truncation, None, "sibling unaffected by expired deadline");
        assert!(!healthy.ranked.is_empty());
    }

    #[test]
    fn cancelling_one_prepared_request_spares_the_rest() {
        let service = DiscoveryService::new(service_ctx(40), AutoFeatConfig::default());
        let prepared = service.prepare(&DiscoveryRequest::new()).unwrap();
        prepared.control().cancel();
        let cancelled = prepared.run().unwrap();
        assert_eq!(cancelled.truncation, Some(TruncationReason::Cancelled));
        let healthy = service.submit(&DiscoveryRequest::new()).unwrap();
        assert_eq!(healthy.truncation, None);
        assert!(!service.is_shut_down());
    }

    #[test]
    fn per_request_config_overrides_base_config() {
        let wide = AutoFeatConfig { top_k: 5, ..AutoFeatConfig::default() };
        let narrow_cfg = AutoFeatConfig { top_k: 1, ..AutoFeatConfig::default() };
        let service = DiscoveryService::new(service_ctx(40), wide);
        let narrow =
            service.submit(&DiscoveryRequest::new().with_config(narrow_cfg)).unwrap();
        assert!(narrow.ranked.len() <= 1, "request config wins");
    }
}
