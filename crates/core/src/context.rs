//! The search context: tables + base/label + DRG.

use std::collections::HashMap;

use autofeat_data::{DataError, Result, Table};
use autofeat_discovery::SchemaMatcher;
use autofeat_graph::{Drg, DrgBuilder};

/// Everything a discovery run needs: the dataset collection, the base table
/// with its label column, and the joinability graph.
#[derive(Debug, Clone)]
pub struct SearchContext {
    tables: HashMap<String, Table>,
    base: String,
    label: String,
    drg: Drg,
}

impl SearchContext {
    /// Build from tables, an explicit DRG, the base-table name, and the
    /// label column.
    pub fn new(
        tables: Vec<Table>,
        drg: Drg,
        base: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<Self> {
        let base = base.into();
        let label = label.into();
        let map: HashMap<String, Table> =
            tables.into_iter().map(|t| (t.name().to_string(), t)).collect();
        let base_table = map.get(&base).ok_or_else(|| DataError::Invalid(format!(
            "base table `{base}` not in the collection"
        )))?;
        if !base_table.has_column(&label) {
            return Err(DataError::ColumnNotFound { table: base, column: label });
        }
        Ok(SearchContext { tables: map, base, label, drg: drg.clone() })
    }

    /// Build the *benchmark setting* context from tables plus known KFK
    /// edges `(parent_table, parent_column, child_table, child_column)`.
    pub fn from_kfk(
        tables: Vec<Table>,
        kfk: &[(String, String, String, String)],
        base: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<Self> {
        let mut b = DrgBuilder::new();
        for t in &tables {
            b.add_table(t.name());
        }
        for (pt, pc, ct, cc) in kfk {
            b.add_kfk(pt, pc, ct, cc);
        }
        SearchContext::new(tables, b.build(), base, label)
    }

    /// Build the *data-lake setting* context: run dataset discovery over
    /// every table pair (the label column is hidden from the matcher).
    pub fn from_discovery(
        tables: Vec<Table>,
        matcher: &SchemaMatcher,
        base: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<Self> {
        let base = base.into();
        let label = label.into();
        let stripped: Vec<Table> = tables
            .iter()
            .map(|t| {
                if t.name() == base {
                    t.drop_columns(&[label.as_str()])
                } else {
                    t.clone()
                }
            })
            .collect();
        let refs: Vec<&Table> = stripped.iter().collect();
        let drg = Drg::from_discovery(&refs, matcher);
        SearchContext::new(tables, drg, base, label)
    }

    /// The base table.
    pub fn base_table(&self) -> &Table {
        &self.tables[&self.base]
    }

    /// The base table's name.
    pub fn base_name(&self) -> &str {
        &self.base
    }

    /// The label column name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// All table names (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The joinability graph.
    pub fn drg(&self) -> &Drg {
        &self.drg
    }

    /// Feature columns of the base table: everything except the label.
    pub fn base_features(&self) -> Vec<String> {
        self.base_table()
            .column_names()
            .into_iter()
            .filter(|c| *c != self.label)
            .map(String::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    fn tables() -> Vec<Table> {
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..20).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..20).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let ext = Table::new(
            "ext",
            vec![
                ("k", Column::from_ints((0..20).map(Some).collect::<Vec<_>>())),
                ("f", Column::from_floats((0..20).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        vec![base, ext]
    }

    #[test]
    fn kfk_context_builds() {
        let ctx = SearchContext::from_kfk(
            tables(),
            &[("base".into(), "k".into(), "ext".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        assert_eq!(ctx.n_tables(), 2);
        assert_eq!(ctx.drg().n_edges(), 1);
        assert_eq!(ctx.base_features(), vec!["k".to_string()]);
        assert_eq!(ctx.label(), "target");
    }

    #[test]
    fn missing_base_rejected() {
        let r = SearchContext::from_kfk(tables(), &[], "ghost", "target");
        assert!(r.is_err());
    }

    #[test]
    fn missing_label_rejected() {
        let r = SearchContext::from_kfk(tables(), &[], "base", "ghost");
        assert!(r.is_err());
    }

    #[test]
    fn discovery_context_hides_label() {
        let ctx = SearchContext::from_discovery(
            tables(),
            &SchemaMatcher::paper_default(),
            "base",
            "target",
        )
        .unwrap();
        for e in ctx.drg().edges() {
            assert_ne!(e.a_column, "target");
            assert_ne!(e.b_column, "target");
        }
        // The shared key column must be rediscovered.
        assert!(ctx.drg().n_edges() >= 1);
        // Label survives in the stored base table.
        assert!(ctx.base_table().has_column("target"));
    }
}
