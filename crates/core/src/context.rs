//! The search context: tables + base/label + DRG — plus the fail-soft lake
//! loader that quarantines unreadable files instead of aborting ingestion.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

use autofeat_data::csv::{read_csv_opts, CsvReadOptions, IngestDiagnostics};
use autofeat_data::{DataError, FaultDomain, LakeIndexCache, Result, RunControl, Table};
use autofeat_obs as obs;
use autofeat_discovery::{ColumnProfile, SchemaMatcher};
use autofeat_graph::{Drg, DrgBuilder, DrgMaintainer};

/// A lake file that could not be turned into a table, with the reason it was
/// set aside (kept so runs can report *why* coverage is partial).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedTable {
    /// Table name (file stem) of the rejected file.
    pub name: String,
    /// Human-readable rejection reason (I/O or parse error text).
    pub reason: String,
}

/// Outcome of scanning a lake directory: every readable table, every
/// quarantined file with its reason, and per-table ingest diagnostics for
/// files that needed repairs.
#[derive(Debug, Clone, Default)]
pub struct LakeLoadReport {
    /// Tables successfully ingested (sorted by name).
    pub tables: Vec<Table>,
    /// Files rejected even under the requested leniency (sorted by name).
    pub quarantined: Vec<QuarantinedTable>,
    /// `(table name, diagnostics)` for loaded tables whose ingestion was not
    /// clean — i.e. lenient mode repaired something.
    pub diagnostics: Vec<(String, IngestDiagnostics)>,
}

impl LakeLoadReport {
    /// One-line human summary of lake coverage.
    pub fn summary(&self) -> String {
        format!(
            "loaded {} table(s), quarantined {}, {} with repairs",
            self.tables.len(),
            self.quarantined.len(),
            self.diagnostics.len()
        )
    }
}

/// Load every `*.csv` file under `dir` as a table, quarantining files that
/// cannot be ingested (even leniently) instead of failing the whole load.
///
/// Only an unreadable *directory* is a hard error: per-file I/O and parse
/// failures land in [`LakeLoadReport::quarantined`] with their reason so a
/// discovery run can proceed over the healthy remainder of the lake.
pub fn load_lake_dir(dir: impl AsRef<Path>, opts: &CsvReadOptions) -> Result<LakeLoadReport> {
    let _span = obs::span("ingest");
    let dir = dir.as_ref();
    let mut paths: Vec<_> = fs_read_dir(dir)?
        .into_iter()
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
        .collect();
    paths.sort();

    let mut report = LakeLoadReport::default();
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("table")
            .to_string();
        match read_csv_opts(&path, opts) {
            Ok(ingest) => {
                if !ingest.diagnostics.is_clean() {
                    report.diagnostics.push((name, ingest.diagnostics));
                }
                report.tables.push(ingest.table);
            }
            Err(e) => {
                obs::event("table_quarantined", || format!("{name}: {e}"));
                report.quarantined.push(QuarantinedTable { name, reason: e.to_string() });
            }
        }
    }
    obs::add("ingest.tables_loaded", report.tables.len() as u64);
    obs::add("ingest.tables_quarantined", report.quarantined.len() as u64);
    obs::add("ingest.tables_repaired", report.diagnostics.len() as u64);
    Ok(report)
}

/// Directory listing as a `Result` in this crate's error type.
fn fs_read_dir(dir: &Path) -> Result<Vec<std::path::PathBuf>> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| DataError::Io(format!("cannot read lake dir {}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| DataError::Io(e.to_string()))?;
        out.push(entry.path());
    }
    Ok(out)
}

/// The mutable-lake authority shared by every clone of a discovery-built
/// context: the current table set, the DRG assembled from it, and the
/// incremental maintainer (profiles + LSH index + match lists) that splices
/// the DRG on mutation. Readers take O(1) `Arc` snapshots under the read
/// lock; [`SearchContext::add_table`]/[`SearchContext::remove_table`] swap
/// in new snapshots under the write lock, so in-flight requests keep the
/// exact lake they started with while new requests (which snapshot via
/// [`SearchContext::with_base_label`]) observe the mutation.
#[derive(Debug)]
struct LakeState {
    tables: Arc<HashMap<String, Table>>,
    drg: Arc<Drg>,
    maintainer: DrgMaintainer,
}

/// Everything a discovery run needs: the dataset collection, the base table
/// with its label column, the joinability graph, and the lake-wide join-index
/// cache shared (via `Arc` — clones of the context share one cache) by
/// discovery, path materialization, and the baselines.
///
/// The lake-shaped state — tables, DRG, cache, fault domain — is all
/// `Arc`-shared: cloning a context (or deriving a per-request view via
/// [`with_base_label`](SearchContext::with_base_label)) is O(1) and never
/// copies a table. Only `base`/`label` (the request's viewpoint) and the
/// `control` handle are per-clone.
///
/// Discovery-built contexts ([`from_discovery`](SearchContext::from_discovery))
/// additionally own mutable lake state: [`add_table`](SearchContext::add_table)
/// and [`remove_table`](SearchContext::remove_table) splice the DRG
/// incrementally (profiling only the mutated table) and invalidate only that
/// table's join-index cache entries. A context's `tables`/`drg` fields are a
/// *snapshot*; [`latest`](SearchContext::latest) and
/// [`with_base_label`](SearchContext::with_base_label) re-snapshot from the
/// shared authority.
#[derive(Debug, Clone)]
pub struct SearchContext {
    tables: Arc<HashMap<String, Table>>,
    base: String,
    label: String,
    drg: Arc<Drg>,
    cache: Arc<LakeIndexCache>,
    control: Arc<RunControl>,
    /// Scope for runtime fault injection: faults armed through this handle
    /// fire only for runs over *this* lake instance, so same-named tables
    /// in other contexts stay unaffected (see `autofeat_data::faults`).
    faults: Arc<FaultDomain>,
    /// Mutable-lake authority; `None` for explicit-DRG/KFK contexts, whose
    /// lakes are immutable (mutation calls error).
    lake: Option<Arc<RwLock<LakeState>>>,
}

/// Attach ingest-built key metadata (dictionaries + row fingerprints) to
/// any table that lacks it. CSV ingest and datagen already attach theirs;
/// this covers hand-built tables entering through the convenience
/// constructors.
fn ensure_key_meta(tables: Vec<Table>) -> Vec<Table> {
    tables
        .into_iter()
        .map(|t| if t.has_key_meta() { t } else { t.with_key_dicts() })
        .collect()
}

impl SearchContext {
    /// Build from tables, an explicit DRG, the base-table name, and the
    /// label column.
    pub fn new(
        tables: Vec<Table>,
        drg: Drg,
        base: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<Self> {
        let base = base.into();
        let label = label.into();
        let map: HashMap<String, Table> =
            tables.into_iter().map(|t| (t.name().to_string(), t)).collect();
        let base_table = map.get(&base).ok_or_else(|| DataError::Invalid(format!(
            "base table `{base}` not in the collection"
        )))?;
        if !base_table.has_column(&label) {
            return Err(DataError::ColumnNotFound { table: base, column: label });
        }
        Ok(SearchContext {
            tables: Arc::new(map),
            base,
            label,
            drg: Arc::new(drg),
            cache: Arc::new(LakeIndexCache::new()),
            control: Arc::new(RunControl::new()),
            faults: FaultDomain::new(),
            lake: None,
        })
    }

    /// Re-snapshot `tables`/`drg` from the shared lake authority, if this
    /// context has one. No-op for immutable (KFK/explicit-DRG) contexts.
    fn refresh(&mut self) {
        if let Some(cell) = &self.lake {
            // A poisoned lock means a mutator panicked; its write never
            // landed (snapshots swap atomically), so the resident state is
            // still consistent — recover and read it.
            let state = cell.read().unwrap_or_else(|e| e.into_inner());
            self.tables = Arc::clone(&state.tables);
            self.drg = Arc::clone(&state.drg);
        }
    }

    /// The current lake as a fresh snapshot view: same base/label/control,
    /// but `tables`/`drg` reflect every mutation applied so far. For
    /// immutable contexts this is a plain clone.
    pub fn latest(&self) -> SearchContext {
        let mut view = self.clone();
        view.refresh();
        view
    }

    /// A per-request view of the same lake: shares the cache and fault
    /// domain (O(1) `Arc` clones), re-snapshots the current tables/DRG from
    /// the lake authority, and looks at `base`/`label` instead — validated
    /// exactly like [`SearchContext::new`]. The control handle is shared
    /// too; use [`with_request_control`](SearchContext::with_request_control)
    /// to give the view its own.
    pub fn with_base_label(
        &self,
        base: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<SearchContext> {
        let base = base.into();
        let label = label.into();
        let mut view = self.clone();
        view.refresh();
        let base_table = view.tables.get(&base).ok_or_else(|| {
            DataError::Invalid(format!("base table `{base}` not in the collection"))
        })?;
        if !base_table.has_column(&label) {
            return Err(DataError::ColumnNotFound { table: base, column: label });
        }
        view.base = base;
        view.label = label;
        Ok(view)
    }

    /// Replace this context view's run control — e.g. with a fresh
    /// [`RunControl::scoped`] child, so one request can be cancelled or
    /// deadlined without touching its siblings over the same lake.
    pub fn with_request_control(mut self, control: Arc<RunControl>) -> SearchContext {
        self.control = control;
        self
    }

    /// Build the *benchmark setting* context from tables plus known KFK
    /// edges `(parent_table, parent_column, child_table, child_column)`.
    ///
    /// Tables without ingest-built key metadata get it here (one-time cost,
    /// outside any discovery run), so index builds over the lake always take
    /// the dictionary-coded fast path. Pass tables through
    /// `Table::strip_key_meta` via [`SearchContext::new`] to opt out (the
    /// throughput bench does, to measure the hashed path).
    pub fn from_kfk(
        tables: Vec<Table>,
        kfk: &[(String, String, String, String)],
        base: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<Self> {
        let tables = ensure_key_meta(tables);
        let mut b = DrgBuilder::new();
        for t in &tables {
            b.add_table(t.name());
        }
        for (pt, pc, ct, cc) in kfk {
            b.add_kfk(pt, pc, ct, cc);
        }
        SearchContext::new(tables, b.build(), base, label)
    }

    /// Build the *data-lake setting* context: run dataset discovery over
    /// the table collection (the label column is hidden from the matcher).
    ///
    /// Candidate generation goes through the hybrid LSH + name-similarity
    /// index ([`DrgMaintainer`]) rather than the all-pairs matcher — same
    /// edges (gated by the `drg_scale` bench), sub-quadratic scoring — and
    /// the maintainer stays resident as the context's mutable-lake state,
    /// so [`add_table`](SearchContext::add_table)/
    /// [`remove_table`](SearchContext::remove_table) splice incrementally.
    /// Its footprint is owned lake metadata (charged like
    /// [`Table::key_meta_bytes`], see
    /// [`lake_index_bytes`](SearchContext::lake_index_bytes)), not cache
    /// occupancy.
    pub fn from_discovery(
        tables: Vec<Table>,
        matcher: &SchemaMatcher,
        base: impl Into<String>,
        label: impl Into<String>,
    ) -> Result<Self> {
        let base = base.into();
        let label = label.into();
        let stripped: Vec<Table> = tables
            .iter()
            .map(|t| {
                if t.name() == base {
                    t.drop_columns(&[label.as_str()])
                } else {
                    t.clone()
                }
            })
            .collect();
        let refs: Vec<&Table> = stripped.iter().collect();
        let maintainer = DrgMaintainer::build(&refs, matcher);
        let drg = maintainer.assemble();
        let mut ctx = SearchContext::new(ensure_key_meta(tables), drg, base, label)?;
        ctx.lake = Some(Arc::new(RwLock::new(LakeState {
            tables: Arc::clone(&ctx.tables),
            drg: Arc::clone(&ctx.drg),
            maintainer,
        })));
        Ok(ctx)
    }

    /// Whether this context owns mutable lake state (built via
    /// [`from_discovery`](SearchContext::from_discovery)).
    pub fn is_mutable(&self) -> bool {
        self.lake.is_some()
    }

    /// Resident footprint of the lake's discovery metadata (column
    /// profiles, LSH index, name-sim cache), in bytes. Zero for immutable
    /// contexts. Like [`Table::key_meta_bytes`], this is owned lake state —
    /// it is *not* governed by (or counted against) the join-index cache
    /// budget.
    pub fn lake_index_bytes(&self) -> usize {
        self.lake.as_ref().map_or(0, |cell| {
            cell.read().unwrap_or_else(|e| e.into_inner()).maintainer.resident_bytes()
        })
    }

    fn lake_cell(&self) -> Result<&Arc<RwLock<LakeState>>> {
        self.lake.as_ref().ok_or_else(|| {
            DataError::Invalid(
                "lake mutation requires a discovery-built context \
                 (SearchContext::from_discovery); KFK/explicit-DRG lakes are immutable"
                    .into(),
            )
        })
    }

    /// Add a table to the lake. Profiles only the new table (outside the
    /// lake lock), splices DRG edges incrementally via the resident
    /// [`DrgMaintainer`], and swaps in a new snapshot — concurrent requests
    /// keep the snapshot they started with; requests prepared afterwards
    /// (via [`with_base_label`](SearchContext::with_base_label) or
    /// [`latest`](SearchContext::latest)) see the new table. Cache entries
    /// of other tables are untouched.
    ///
    /// Errors if this context is immutable or a table of that name is
    /// already resident (remove it first — replacement must be explicit).
    pub fn add_table(&self, table: Table) -> Result<()> {
        let cell = self.lake_cell()?;
        let _span = obs::span("lake_add_table");
        let table = if table.has_key_meta() { table } else { table.with_key_dicts() };
        let name = table.name().to_string();
        // The expensive part — profiling the new columns — happens before
        // the write lock, so concurrent request preparation never stalls
        // behind it.
        let profiles = ColumnProfile::build_all(&table);
        {
            let mut state = cell.write().unwrap_or_else(|e| e.into_inner());
            if state.tables.contains_key(&name) {
                return Err(DataError::Invalid(format!(
                    "table `{name}` is already in the lake; remove it first"
                )));
            }
            state.maintainer.add_profiles(&name, profiles);
            let mut tables = (*state.tables).clone();
            tables.insert(name.clone(), table);
            state.tables = Arc::new(tables);
            state.drg = Arc::new(state.maintainer.assemble());
        }
        // Release any slots a removed same-named predecessor left behind.
        // (Slot verification is by column data identity, so the new version
        // could never *hit* them — this is memory hygiene, not correctness.)
        self.cache.invalidate_table(&name);
        obs::incr("lake.tables_added");
        Ok(())
    }

    /// Remove a table from the lake: un-splices its DRG edges via the
    /// resident [`DrgMaintainer`] and invalidates exactly its join-index
    /// cache entries — never a full rebuild, never a full cache flush.
    /// Snapshot semantics match [`add_table`](SearchContext::add_table):
    /// in-flight requests over the old snapshot are unaffected (their
    /// `Arc`s keep the table and any cached indexes alive).
    ///
    /// Errors if this context is immutable, the table is absent, or it is
    /// this view's base table.
    pub fn remove_table(&self, name: &str) -> Result<()> {
        let cell = self.lake_cell()?;
        let _span = obs::span("lake_remove_table");
        if name == self.base {
            return Err(DataError::Invalid(format!(
                "cannot remove `{name}`: it is this context's base table"
            )));
        }
        {
            let mut state = cell.write().unwrap_or_else(|e| e.into_inner());
            if !state.tables.contains_key(name) {
                return Err(DataError::Invalid(format!("table `{name}` not in the lake")));
            }
            state.maintainer.remove_table(name);
            let mut tables = (*state.tables).clone();
            tables.remove(name);
            state.tables = Arc::new(tables);
            state.drg = Arc::new(state.maintainer.assemble());
        }
        self.cache.invalidate_table(name);
        obs::incr("lake.tables_removed");
        Ok(())
    }

    /// The base table.
    pub fn base_table(&self) -> &Table {
        &self.tables[&self.base]
    }

    /// The base table's name.
    pub fn base_name(&self) -> &str {
        &self.base
    }

    /// The label column name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// All table names, sorted (so callers iterating the lake do so in a
    /// process-independent order).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The joinability graph.
    pub fn drg(&self) -> &Drg {
        &self.drg
    }

    /// The lake-wide join-index cache. Shared across clones of this context,
    /// so indexes built by one run (or one worker thread) serve all others.
    /// Constructed with [`LakeIndexCache::new`], so it honours an
    /// `AUTOFEAT_CACHE_BUDGET` byte budget from the environment; discovery
    /// runs may re-apply a configured budget (see
    /// [`AutoFeatConfig::resolve_cache_budget`](crate::AutoFeatConfig::resolve_cache_budget)).
    pub fn lake_cache(&self) -> &LakeIndexCache {
        &self.cache
    }

    /// An owning handle to the lake cache, for consumers that outlive any
    /// one borrow of the context — e.g. the service's background stats
    /// listener, which refreshes cache gauges at scrape time.
    pub fn lake_cache_arc(&self) -> Arc<LakeIndexCache> {
        Arc::clone(&self.cache)
    }

    /// The context-wide run-lifecycle control, shared (via `Arc`) by every
    /// clone of this context. Cancelling it — from any thread — winds down
    /// whatever pipeline stage is currently running against this context
    /// (discovery, materialization, training, baselines) at its next
    /// cooperative checkpoint; an armed deadline does the same on expiry.
    /// Discovery runs layer their own `time_budget` on top via
    /// [`RunControl::scoped`], so per-run deadlines never leak into this
    /// shared handle.
    pub fn control(&self) -> &Arc<RunControl> {
        &self.control
    }

    /// The fault-injection domain scoped to this lake instance. Arm
    /// runtime faults through this handle (instead of the process-global
    /// `autofeat_data::faults::arm`) when the fault should fire only for
    /// runs over this context's tables.
    pub fn fault_domain(&self) -> &Arc<FaultDomain> {
        &self.faults
    }

    /// Convenience for [`RunControl::cancel`] on the shared control: request
    /// that every in-flight pipeline stage on this context wind down and
    /// return its partial result.
    pub fn cancel(&self) {
        self.control.cancel();
    }

    /// Convenience for [`LakeIndexCache::set_budget`] on the shared cache:
    /// (re)apply a byte budget, evicting coldest-first if current residency
    /// exceeds it. Affects every clone of this context.
    pub fn set_cache_budget(&self, budget: Option<u64>) {
        self.cache.set_budget(budget);
    }

    /// Feature columns of the base table: everything except the label.
    pub fn base_features(&self) -> Vec<String> {
        self.base_table()
            .column_names()
            .into_iter()
            .filter(|c| *c != self.label)
            .map(String::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    fn tables() -> Vec<Table> {
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..20).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..20).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let ext = Table::new(
            "ext",
            vec![
                ("k", Column::from_ints((0..20).map(Some).collect::<Vec<_>>())),
                ("f", Column::from_floats((0..20).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        vec![base, ext]
    }

    #[test]
    fn kfk_context_builds() {
        let ctx = SearchContext::from_kfk(
            tables(),
            &[("base".into(), "k".into(), "ext".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        assert_eq!(ctx.n_tables(), 2);
        assert_eq!(ctx.drg().n_edges(), 1);
        assert_eq!(ctx.base_features(), vec!["k".to_string()]);
        assert_eq!(ctx.label(), "target");
    }

    #[test]
    fn control_is_shared_across_clones() {
        let ctx = SearchContext::from_kfk(
            tables(),
            &[("base".into(), "k".into(), "ext".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        let clone = ctx.clone();
        clone.cancel();
        assert!(ctx.control().is_cancelled(), "clones share one control");
        ctx.control().reset();
        assert!(!clone.control().is_cancelled());
    }

    #[test]
    fn base_label_view_shares_lake_state() {
        let ctx = SearchContext::from_kfk(
            tables(),
            &[("base".into(), "k".into(), "ext".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        let view = ctx.with_base_label("ext", "f").unwrap();
        assert_eq!(view.base_name(), "ext");
        assert_eq!(view.label(), "f");
        assert!(std::ptr::eq(ctx.lake_cache(), view.lake_cache()), "one cache per lake");
        assert_eq!(ctx.fault_domain().id(), view.fault_domain().id(), "one fault domain");
        assert!(ctx.with_base_label("ghost", "f").is_err(), "unknown base rejected");
        assert!(ctx.with_base_label("ext", "ghost").is_err(), "missing label rejected");
        // A request-scoped control detaches the view from the shared one.
        let scoped = ctx.control().scoped(None);
        let req = view.with_request_control(scoped);
        req.cancel();
        assert!(!ctx.control().is_cancelled(), "request cancel stays scoped");
    }

    #[test]
    fn missing_base_rejected() {
        let r = SearchContext::from_kfk(tables(), &[], "ghost", "target");
        assert!(r.is_err());
    }

    #[test]
    fn missing_label_rejected() {
        let r = SearchContext::from_kfk(tables(), &[], "base", "ghost");
        assert!(r.is_err());
    }

    #[test]
    fn discovery_context_hides_label() {
        let ctx = SearchContext::from_discovery(
            tables(),
            &SchemaMatcher::paper_default(),
            "base",
            "target",
        )
        .unwrap();
        for e in ctx.drg().edges() {
            assert_ne!(e.a_column, "target");
            assert_ne!(e.b_column, "target");
        }
        // The shared key column must be rediscovered.
        assert!(ctx.drg().n_edges() >= 1);
        // Label survives in the stored base table.
        assert!(ctx.base_table().has_column("target"));
    }

    fn extra_table(name: &str, shift: i64) -> Table {
        Table::new(
            name,
            vec![
                ("k", Column::from_ints((shift..shift + 20).map(Some).collect::<Vec<_>>())),
                ("x", Column::from_ints((400..420).map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap()
    }

    #[test]
    fn add_table_is_visible_to_new_views_not_old_snapshots() {
        let ctx = SearchContext::from_discovery(
            tables(),
            &SchemaMatcher::paper_default(),
            "base",
            "target",
        )
        .unwrap();
        assert!(ctx.is_mutable());
        let snapshot = ctx.clone();
        ctx.add_table(extra_table("extra", 0)).unwrap();
        assert_eq!(snapshot.n_tables(), 2, "pre-mutation snapshot unchanged");
        assert_eq!(ctx.n_tables(), 2, "the handle itself is a snapshot too");
        let fresh = ctx.latest();
        assert_eq!(fresh.n_tables(), 3);
        assert!(fresh.table("extra").is_some());
        assert!(
            fresh.drg().node("extra").is_some(),
            "new table spliced into the DRG: {:?}",
            fresh.drg().edges()
        );
        let view = ctx.with_base_label("extra", "x").unwrap();
        assert_eq!(view.n_tables(), 3, "views re-snapshot the latest lake");
        // And removal takes it back out.
        ctx.remove_table("extra").unwrap();
        assert_eq!(ctx.latest().n_tables(), 2);
        assert!(ctx.latest().drg().node("extra").is_none());
    }

    #[test]
    fn mutated_lake_matches_fresh_discovery_bit_for_bit() {
        let matcher = SchemaMatcher::paper_default();
        let ctx =
            SearchContext::from_discovery(tables(), &matcher, "base", "target").unwrap();
        ctx.add_table(extra_table("extra", 5)).unwrap();
        ctx.add_table(extra_table("other", 10)).unwrap();
        ctx.remove_table("extra").unwrap();
        let mutated = ctx.latest();
        let mut final_tables = tables();
        final_tables.push(extra_table("other", 10));
        let fresh =
            SearchContext::from_discovery(final_tables, &matcher, "base", "target").unwrap();
        let (a, b) = (mutated.drg(), fresh.drg());
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!(a.table_name(x.a), b.table_name(y.a));
            assert_eq!(a.table_name(x.b), b.table_name(y.b));
            assert_eq!((&x.a_column, &x.b_column), (&y.a_column, &y.b_column));
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
    }

    #[test]
    fn immutable_contexts_reject_mutation() {
        let ctx = SearchContext::from_kfk(
            tables(),
            &[("base".into(), "k".into(), "ext".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        assert!(!ctx.is_mutable());
        assert_eq!(ctx.lake_index_bytes(), 0);
        assert!(ctx.add_table(extra_table("extra", 0)).is_err());
        assert!(ctx.remove_table("ext").is_err());
    }

    #[test]
    fn mutation_guards_base_duplicates_and_missing() {
        let ctx = SearchContext::from_discovery(
            tables(),
            &SchemaMatcher::paper_default(),
            "base",
            "target",
        )
        .unwrap();
        assert!(ctx.remove_table("base").is_err(), "base is not removable");
        assert!(ctx.remove_table("ghost").is_err(), "missing table");
        let dup = Table::new("ext", vec![("z", Column::from_ints([Some(1)]))]).unwrap();
        assert!(ctx.add_table(dup).is_err(), "duplicate name must be explicit");
        assert!(ctx.lake_index_bytes() > 0, "discovery metadata is charged");
    }

    fn temp_lake(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("autofeat_lake_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lake_loader_quarantines_bad_files() {
        let dir = temp_lake("quarantine");
        std::fs::write(dir.join("good.csv"), "k,v\n1,10\n2,20\n").unwrap();
        std::fs::write(dir.join("broken.csv"), "k,v\n1\n2\n3\n4\n").unwrap();
        std::fs::write(dir.join("empty.csv"), "").unwrap();
        std::fs::write(dir.join("notes.txt"), "not a csv").unwrap();

        let report = load_lake_dir(&dir, &CsvReadOptions::lenient()).unwrap();
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].name(), "good");
        // `broken` blows the 20% bad-row budget; `empty` has no header.
        let mut q: Vec<&str> =
            report.quarantined.iter().map(|q| q.name.as_str()).collect();
        q.sort();
        assert_eq!(q, vec!["broken", "empty"]);
        assert!(report
            .quarantined
            .iter()
            .all(|q| !q.reason.is_empty()));
        assert!(report.summary().contains("quarantined 2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lake_loader_records_repair_diagnostics() {
        let dir = temp_lake("repairs");
        std::fs::write(dir.join("clean.csv"), "k\n1\n").unwrap();
        // One ragged row in ten: within the lenient budget, so it loads
        // with diagnostics rather than being quarantined.
        let mut ragged = String::from("k,v\n");
        for i in 0..9 {
            ragged.push_str(&format!("{i},{i}\n"));
        }
        ragged.push_str("9\n");
        std::fs::write(dir.join("ragged.csv"), ragged).unwrap();

        let report = load_lake_dir(&dir, &CsvReadOptions::lenient()).unwrap();
        assert_eq!(report.tables.len(), 2);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.diagnostics.len(), 1);
        let (name, diags) = &report.diagnostics[0];
        assert_eq!(name, "ragged");
        assert_eq!(diags.n_repaired_rows, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lake_loader_strict_quarantines_what_lenient_repairs() {
        let dir = temp_lake("strictness");
        std::fs::write(dir.join("t.csv"), "k,v\n1,1\n2,2\n3,3\n4,4\n5\n").unwrap();
        let strict = load_lake_dir(&dir, &CsvReadOptions::strict()).unwrap();
        assert_eq!(strict.quarantined.len(), 1);
        assert!(strict.quarantined[0].reason.contains("ragged"));
        let lenient = load_lake_dir(&dir, &CsvReadOptions::lenient()).unwrap();
        assert!(lenient.quarantined.is_empty());
        assert_eq!(lenient.tables.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lake_loader_missing_dir_is_hard_error() {
        let r = load_lake_dir(
            std::env::temp_dir().join("autofeat_no_such_lake_dir"),
            &CsvReadOptions::lenient(),
        );
        assert!(matches!(r, Err(DataError::Io(_))));
    }
}
