//! Dynamic hyper-parameter tuning — the paper's future-work proposal
//! ("dynamic hyper-parameter tuning, allowing the algorithm to adapt to
//! different data landscapes"). The tuner sweeps τ (and optionally κ) on a
//! sampled context with a cheap validation model, then returns the
//! configuration balancing accuracy against feature-selection time.

use autofeat_data::Result;
use autofeat_ml::eval::ModelKind;

use crate::autofeat::AutoFeat;
use crate::config::AutoFeatConfig;
use crate::context::SearchContext;
use crate::train::train_top_k;

/// Tuning search space.
#[derive(Debug, Clone)]
pub struct TuningGrid {
    /// τ values to try.
    pub taus: Vec<f64>,
    /// κ values to try.
    pub kappas: Vec<usize>,
    /// Accuracy tolerance: among configurations within `tolerance` of the
    /// best accuracy, the fastest (most aggressively pruning) one wins.
    pub tolerance: f64,
    /// Validation model (cheap by default).
    pub model: ModelKind,
}

impl Default for TuningGrid {
    fn default() -> Self {
        TuningGrid {
            taus: vec![0.35, 0.5, 0.65, 0.8],
            kappas: vec![5, 10, 15],
            tolerance: 0.01,
            model: ModelKind::LightGbm,
        }
    }
}

/// One grid point's outcome.
#[derive(Debug, Clone)]
pub struct TuningTrial {
    /// τ used.
    pub tau: f64,
    /// κ used.
    pub kappa: usize,
    /// Validation accuracy of the best trained path.
    pub accuracy: f64,
    /// Feature-discovery seconds.
    pub fs_secs: f64,
}

/// Result of a tuning sweep: the chosen configuration plus the full trace.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// The winning configuration (base config with tuned τ/κ).
    pub config: AutoFeatConfig,
    /// All trials, in sweep order.
    pub trials: Vec<TuningTrial>,
}

/// Sweep the grid and pick the τ/κ pair that is fastest among those within
/// `tolerance` of the best observed accuracy.
pub fn tune(
    ctx: &SearchContext,
    base: &AutoFeatConfig,
    grid: &TuningGrid,
) -> Result<TuningOutcome> {
    assert!(!grid.taus.is_empty() && !grid.kappas.is_empty(), "empty grid");
    let mut trials = Vec::with_capacity(grid.taus.len() * grid.kappas.len());
    for &tau in &grid.taus {
        for &kappa in &grid.kappas {
            let cfg = AutoFeatConfig { tau, kappa, ..base.clone() };
            let discovery = AutoFeat::new(cfg.clone()).discover(ctx)?;
            let fs_secs = discovery.elapsed.as_secs_f64();
            let out = train_top_k(ctx, &discovery, &[grid.model], &cfg)?;
            trials.push(TuningTrial {
                tau,
                kappa,
                accuracy: out.result.mean_accuracy(),
                fs_secs,
            });
        }
    }
    let best_acc = trials
        .iter()
        .map(|t| t.accuracy)
        .fold(f64::NEG_INFINITY, f64::max);
    let winner = trials
        .iter()
        .filter(|t| t.accuracy >= best_acc - grid.tolerance)
        .min_by(|a, b| {
            a.fs_secs
                .total_cmp(&b.fs_secs)
                // Prefer larger τ (more pruning) and smaller κ on ties.
                .then_with(|| b.tau.total_cmp(&a.tau))
                .then_with(|| a.kappa.cmp(&b.kappa))
        })
        .ok_or_else(|| {
            autofeat_data::DataError::Invalid("tuning produced no trials".into())
        })?;
    Ok(TuningOutcome {
        config: AutoFeatConfig { tau: winner.tau, kappa: winner.kappa, ..base.clone() },
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::{Column, Table};

    fn ctx(n: usize) -> SearchContext {
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, s1],
            &[("base".into(), "k".into(), "s1".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn tuner_covers_the_grid() {
        let c = ctx(200);
        let grid = TuningGrid {
            taus: vec![0.3, 0.65],
            kappas: vec![5, 15],
            ..Default::default()
        };
        let out = tune(&c, &AutoFeatConfig::paper(), &grid).unwrap();
        assert_eq!(out.trials.len(), 4);
        assert!(grid.taus.contains(&out.config.tau));
        assert!(grid.kappas.contains(&out.config.kappa));
    }

    #[test]
    fn tuner_keeps_accuracy_on_easy_data() {
        let c = ctx(300);
        let out = tune(&c, &AutoFeatConfig::paper(), &TuningGrid::default()).unwrap();
        let best = out
            .trials
            .iter()
            .map(|t| t.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        let chosen = out
            .trials
            .iter()
            .find(|t| t.tau == out.config.tau && t.kappa == out.config.kappa)
            .unwrap();
        assert!(chosen.accuracy >= best - 0.011);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let c = ctx(50);
        let grid = TuningGrid { taus: vec![], ..Default::default() };
        let _ = tune(&c, &AutoFeatConfig::paper(), &grid);
    }
}
