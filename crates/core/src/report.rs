//! Result records shared by AutoFeat and the baselines — the rows behind
//! Figs. 1, 4, 5, 6, 7.

use std::time::Duration;

use autofeat_ml::eval::ModelKind;

/// One method's outcome on one dataset: what the paper's bar charts plot.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label ("AutoFeat", "BASE", "ARDA", "MAB", "JoinAll",
    /// "JoinAll+F").
    pub method: String,
    /// Test accuracy per ML model.
    pub accuracy_per_model: Vec<(ModelKind, f64)>,
    /// Time spent assessing/choosing features (the contrasting bar segment
    /// of Figs. 4/6).
    pub feature_selection_time: Duration,
    /// Total runtime including model training.
    pub total_time: Duration,
    /// Number of tables joined into the winning augmented table (the number
    /// printed on the paper's bars).
    pub n_tables_joined: usize,
    /// Number of features the method selected for training.
    pub n_features: usize,
}

impl MethodResult {
    /// Mean accuracy across models (the paper averages "over all tested
    /// tree-based ML algorithms").
    pub fn mean_accuracy(&self) -> f64 {
        if self.accuracy_per_model.is_empty() {
            return 0.0;
        }
        self.accuracy_per_model.iter().map(|(_, a)| a).sum::<f64>()
            / self.accuracy_per_model.len() as f64
    }

    /// Accuracy for one model, if evaluated.
    pub fn accuracy_for(&self, kind: ModelKind) -> Option<f64> {
        self.accuracy_per_model
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> MethodResult {
        MethodResult {
            method: "AutoFeat".into(),
            accuracy_per_model: vec![
                (ModelKind::LightGbm, 0.9),
                (ModelKind::RandomForest, 0.8),
            ],
            feature_selection_time: Duration::from_millis(120),
            total_time: Duration::from_millis(500),
            n_tables_joined: 3,
            n_features: 7,
        }
    }

    #[test]
    fn mean_accuracy_averages() {
        assert!((result().mean_accuracy() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        let mut r = result();
        r.accuracy_per_model.clear();
        assert_eq!(r.mean_accuracy(), 0.0);
    }

    #[test]
    fn accuracy_lookup() {
        let r = result();
        assert_eq!(r.accuracy_for(ModelKind::LightGbm), Some(0.9));
        assert_eq!(r.accuracy_for(ModelKind::Knn), None);
    }
}
