//! Result records shared by AutoFeat and the baselines — the rows behind
//! Figs. 1, 4, 5, 6, 7 — plus the fail-soft health report of a discovery
//! run (isolated path failures and early truncation).

use std::fmt::Write as _;
use std::time::Duration;

use autofeat_ml::eval::ModelKind;

use crate::autofeat::{DiscoveryResult, TruncationReason};

/// One method's outcome on one dataset: what the paper's bar charts plot.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label ("AutoFeat", "BASE", "ARDA", "MAB", "JoinAll",
    /// "JoinAll+F").
    pub method: String,
    /// Test accuracy per ML model.
    pub accuracy_per_model: Vec<(ModelKind, f64)>,
    /// Time spent assessing/choosing features (the contrasting bar segment
    /// of Figs. 4/6).
    pub feature_selection_time: Duration,
    /// Total runtime including model training.
    pub total_time: Duration,
    /// Number of tables joined into the winning augmented table (the number
    /// printed on the paper's bars).
    pub n_tables_joined: usize,
    /// Number of features the method selected for training.
    pub n_features: usize,
}

impl MethodResult {
    /// Mean accuracy across models (the paper averages "over all tested
    /// tree-based ML algorithms").
    pub fn mean_accuracy(&self) -> f64 {
        if self.accuracy_per_model.is_empty() {
            return 0.0;
        }
        self.accuracy_per_model.iter().map(|(_, a)| a).sum::<f64>()
            / self.accuracy_per_model.len() as f64
    }

    /// Accuracy for one model, if evaluated.
    pub fn accuracy_for(&self, kind: ModelKind) -> Option<f64> {
        self.accuracy_per_model
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| *a)
    }
}

/// Multi-line human-readable health report of a discovery run: path counts,
/// truncation (and why), and every isolated hop failure with its path
/// context. Empty sections are omitted; a fully healthy run yields a single
/// "healthy" line.
pub fn discovery_health_report(result: &DiscoveryResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "discovery: {} path(s) ranked, {} join(s) evaluated, \
         {} unjoinable, {} below-quality, {} worker thread(s)",
        result.ranked.len(),
        result.n_joins_evaluated,
        result.n_pruned_unjoinable,
        result.n_pruned_quality,
        result.threads_used
    );
    match &result.cache {
        Some(c) => {
            let _ = writeln!(
                out,
                "join-index cache: {} hit(s), {} miss(es), {:?} build time, \
                 {} index(es) resident ({} bytes)",
                c.hits, c.misses, c.build_time, c.entries, c.resident_bytes
            );
            // Governance line, present only when memory governance was
            // actually in play (a budget was set, or pressure events
            // occurred) — unbudgeted healthy runs keep the legacy format.
            if c.budget_bytes.is_some() || c.evictions > 0 || c.rejections > 0 {
                let budget = c
                    .budget_bytes
                    .map_or("unbounded".to_string(), |b| format!("{b} bytes"));
                let _ = writeln!(
                    out,
                    "cache governance: budget {budget}, peak resident {} bytes, \
                     {} eviction(s) ({} bytes), {} admission rejection(s)",
                    c.peak_resident_bytes, c.evictions, c.evicted_bytes, c.rejections
                );
            }
        }
        None => {
            let _ = writeln!(out, "join-index cache: disabled");
        }
    }
    if result.n_pruned_similarity > 0 || result.n_pruned_budget > 0 {
        let _ = writeln!(
            out,
            "also pruned: {} similarity-pruned edge(s), {} budget-dropped candidate(s)",
            result.n_pruned_similarity, result.n_pruned_budget
        );
    }
    match result.truncation {
        Some(TruncationReason::MaxJoins) => {
            let _ = writeln!(out, "truncated: max_joins cap reached");
        }
        Some(TruncationReason::DeadlineExceeded { phase }) => {
            let _ = writeln!(
                out,
                "truncated: time budget exhausted during {phase} after {:?}",
                result.elapsed
            );
        }
        Some(TruncationReason::Cancelled) => {
            let _ = writeln!(out, "truncated: cancelled after {:?}", result.elapsed);
        }
        None => {}
    }
    // Resilience section, present only when the lifecycle layer actually
    // did something: degradation rungs, isolated panics (in the fan-out or
    // the cache), poisoned-lock recoveries, a cancel.
    let res = &result.resilience;
    let cache_lock_recoveries = result.cache.as_ref().map_or(0, |c| c.lock_recoveries);
    let cache_build_panics = result.cache.as_ref().map_or(0, |c| c.build_panics);
    if !res.degradations.is_empty()
        || res.worker_panics > 0
        || res.cancel_latency.is_some()
        || cache_lock_recoveries > 0
        || cache_build_panics > 0
    {
        let mut parts: Vec<String> = Vec::new();
        if !res.degradations.is_empty() {
            parts.push(format!("degraded ({})", res.degradations.join(", ")));
        }
        if res.worker_panics > 0 {
            parts.push(format!("{} worker panic(s) isolated", res.worker_panics));
        }
        if cache_build_panics > 0 {
            parts.push(format!("{cache_build_panics} cache build panic(s) isolated"));
        }
        if cache_lock_recoveries > 0 {
            parts.push(format!("{cache_lock_recoveries} poisoned-lock recovery(ies)"));
        }
        if let Some(latency) = res.cancel_latency {
            parts.push(format!("cancel latency {latency:?}"));
        }
        let _ = writeln!(out, "resilience: {}", parts.join(", "));
    }
    if result.failures.is_empty() {
        if result.truncation.is_none() {
            let _ = writeln!(out, "healthy: no hop failures");
        }
    } else {
        let _ = writeln!(out, "{} hop failure(s) isolated:", result.failures.len());
        for f in &result.failures {
            let _ = writeln!(
                out,
                "  - {} -> {} (on {}={}) after [{}]: {}",
                f.hop.from_table,
                f.hop.to_table,
                f.hop.from_column,
                f.hop.to_column,
                f.path,
                f.error
            );
        }
    }
    // Phase-timing section, present only when the run was traced (the
    // trace is informational: its absence never hides health problems).
    if let Some(trace) = &result.trace {
        let _ = writeln!(out, "phase timings:");
        trace.render_phases_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autofeat::{PathFailure, Phase, ResilienceStats};
    use autofeat_graph::{JoinHop, JoinPath};

    fn discovery(failures: Vec<PathFailure>, truncation: Option<TruncationReason>) -> DiscoveryResult {
        DiscoveryResult {
            ranked: vec![],
            n_joins_evaluated: 5,
            n_pruned_unjoinable: 1,
            n_pruned_quality: 2,
            n_pruned_similarity: 0,
            n_pruned_budget: 0,
            truncated: truncation.is_some(),
            truncation,
            failures,
            elapsed: Duration::from_millis(10),
            selected_features: vec![],
            threads_used: 4,
            cache: Some(autofeat_data::CacheStats {
                hits: 8,
                misses: 2,
                build_time: Duration::from_millis(3),
                resident_bytes: 4096,
                entries: 2,
                evictions: 0,
                evicted_bytes: 0,
                rejections: 0,
                peak_resident_bytes: 4096,
                budget_bytes: None,
                lock_recoveries: 0,
                build_panics: 0,
                invalidations: 0,
                invalidated_bytes: 0,
            }),
            trace: None,
            resilience: Default::default(),
        }
    }

    #[test]
    fn health_report_healthy_run() {
        let r = discovery_health_report(&discovery(vec![], None));
        assert!(r.contains("healthy"), "{r}");
        assert!(r.contains("5 join(s)"), "{r}");
        assert!(r.contains("4 worker thread(s)"), "{r}");
        assert!(r.contains("join-index cache: 8 hit(s), 2 miss(es)"), "{r}");
        assert!(r.contains("2 index(es) resident (4096 bytes)"), "{r}");
    }

    #[test]
    fn health_report_cache_disabled() {
        let mut d = discovery(vec![], None);
        d.cache = None;
        let r = discovery_health_report(&d);
        assert!(r.contains("join-index cache: disabled"), "{r}");
    }

    #[test]
    fn health_report_lists_failures_and_truncation() {
        let failure = PathFailure {
            path: JoinPath::empty(),
            hop: JoinHop {
                from_table: "base".into(),
                from_column: "k".into(),
                to_table: "bad".into(),
                to_column: "k".into(),
                weight: 1.0,
            },
            error: "type mismatch: expected int, got str".into(),
        };
        let r = discovery_health_report(&discovery(
            vec![failure],
            Some(TruncationReason::DeadlineExceeded { phase: Phase::Enumerate }),
        ));
        assert!(r.contains("1 hop failure(s)"), "{r}");
        assert!(r.contains("base -> bad"), "{r}");
        assert!(r.contains("type mismatch"), "{r}");
        assert!(r.contains("time budget"), "{r}");
        assert!(!r.contains("healthy"), "{r}");
    }

    // ---- Golden-style tests: the report is a stable, line-oriented text
    // format; these pin the exact output for inputs whose every field is
    // deterministic (durations are fixed via the fixture).

    #[test]
    fn golden_healthy_report_is_exact() {
        let r = discovery_health_report(&discovery(vec![], None));
        let expected = "\
discovery: 0 path(s) ranked, 5 join(s) evaluated, 1 unjoinable, 2 below-quality, 4 worker thread(s)
join-index cache: 8 hit(s), 2 miss(es), 3ms build time, 2 index(es) resident (4096 bytes)
healthy: no hop failures
";
        assert_eq!(r, expected);
    }

    #[test]
    fn golden_truncation_section_is_exact() {
        let r = discovery_health_report(&discovery(vec![], Some(TruncationReason::MaxJoins)));
        let expected = "\
discovery: 0 path(s) ranked, 5 join(s) evaluated, 1 unjoinable, 2 below-quality, 4 worker thread(s)
join-index cache: 8 hit(s), 2 miss(es), 3ms build time, 2 index(es) resident (4096 bytes)
truncated: max_joins cap reached
";
        assert_eq!(r, expected);
    }

    #[test]
    fn golden_failure_section_is_exact() {
        let failure = PathFailure {
            path: JoinPath::empty(),
            hop: JoinHop {
                from_table: "base".into(),
                from_column: "k".into(),
                to_table: "bad".into(),
                to_column: "k2".into(),
                weight: 1.0,
            },
            error: "column not found".into(),
        };
        let r = discovery_health_report(&discovery(vec![failure], None));
        let expected = "\
discovery: 0 path(s) ranked, 5 join(s) evaluated, 1 unjoinable, 2 below-quality, 4 worker thread(s)
join-index cache: 8 hit(s), 2 miss(es), 3ms build time, 2 index(es) resident (4096 bytes)
1 hop failure(s) isolated:
  - base -> bad (on k=k2) after [(empty path)]: column not found
";
        assert_eq!(r, expected);
    }

    #[test]
    fn golden_governance_section_is_exact() {
        let mut d = discovery(vec![], None);
        d.cache = Some(autofeat_data::CacheStats {
            hits: 8,
            misses: 2,
            build_time: Duration::from_millis(3),
            resident_bytes: 4096,
            entries: 2,
            evictions: 3,
            evicted_bytes: 6144,
            rejections: 1,
            peak_resident_bytes: 8192,
            budget_bytes: Some(10240),
            lock_recoveries: 0,
            build_panics: 0,
            invalidations: 0,
            invalidated_bytes: 0,
        });
        let r = discovery_health_report(&d);
        let expected = "\
discovery: 0 path(s) ranked, 5 join(s) evaluated, 1 unjoinable, 2 below-quality, 4 worker thread(s)
join-index cache: 8 hit(s), 2 miss(es), 3ms build time, 2 index(es) resident (4096 bytes)
cache governance: budget 10240 bytes, peak resident 8192 bytes, 3 eviction(s) (6144 bytes), 1 admission rejection(s)
healthy: no hop failures
";
        assert_eq!(r, expected);
    }

    #[test]
    fn governance_line_absent_without_budget_or_pressure() {
        let r = discovery_health_report(&discovery(vec![], None));
        assert!(!r.contains("cache governance"), "{r}");
        // Pressure without a budget (e.g. budget later removed) still
        // surfaces the line.
        let mut d = discovery(vec![], None);
        if let Some(c) = d.cache.as_mut() {
            c.evictions = 2;
            c.evicted_bytes = 100;
        }
        let r = discovery_health_report(&d);
        assert!(
            r.contains("cache governance: budget unbounded, peak resident 4096 bytes, 2 eviction(s) (100 bytes), 0 admission rejection(s)"),
            "{r}"
        );
    }

    #[test]
    fn golden_resilience_section_is_exact() {
        let mut d = discovery(vec![], None);
        d.resilience = ResilienceStats {
            degradations: vec!["shrunk sample", "skipped redundancy refinement"],
            worker_panics: 1,
            cancel_latency: Some(Duration::from_millis(12)),
        };
        let r = discovery_health_report(&d);
        let expected = "\
discovery: 0 path(s) ranked, 5 join(s) evaluated, 1 unjoinable, 2 below-quality, 4 worker thread(s)
join-index cache: 8 hit(s), 2 miss(es), 3ms build time, 2 index(es) resident (4096 bytes)
resilience: degraded (shrunk sample, skipped redundancy refinement), 1 worker panic(s) isolated, cancel latency 12ms
healthy: no hop failures
";
        assert_eq!(r, expected);
    }

    #[test]
    fn resilience_section_absent_on_healthy_runs() {
        let r = discovery_health_report(&discovery(vec![], None));
        assert!(!r.contains("resilience:"), "{r}");
    }

    #[test]
    fn cancelled_truncation_and_cache_recoveries_reported() {
        let mut d = discovery(vec![], Some(TruncationReason::Cancelled));
        if let Some(c) = d.cache.as_mut() {
            c.lock_recoveries = 2;
            c.build_panics = 1;
        }
        let r = discovery_health_report(&d);
        assert!(r.contains("truncated: cancelled after"), "{r}");
        assert!(r.contains("1 cache build panic(s) isolated"), "{r}");
        assert!(r.contains("2 poisoned-lock recovery(ies)"), "{r}");
    }

    #[test]
    fn deadline_truncation_names_the_phase() {
        let r = discovery_health_report(&discovery(
            vec![],
            Some(TruncationReason::DeadlineExceeded { phase: Phase::Evaluate }),
        ));
        assert!(r.contains("time budget exhausted during evaluate"), "{r}");
    }

    #[test]
    fn report_mentions_similarity_and_budget_pruning() {
        let mut d = discovery(vec![], None);
        d.n_pruned_similarity = 3;
        d.n_pruned_budget = 7;
        let r = discovery_health_report(&d);
        assert!(
            r.contains("also pruned: 3 similarity-pruned edge(s), 7 budget-dropped candidate(s)"),
            "{r}"
        );
    }

    #[test]
    fn report_includes_phase_timings_when_traced() {
        let tracer = autofeat_obs::Tracer::enabled();
        autofeat_obs::with_tracer(&tracer, || {
            let _discover = autofeat_obs::span("discover");
            let _level = autofeat_obs::span("level");
        });
        let mut d = discovery(vec![], None);
        d.trace = Some(tracer.snapshot());
        let r = discovery_health_report(&d);
        assert!(r.contains("phase timings:"), "{r}");
        assert!(r.contains("discover"), "{r}");
        assert!(r.contains("level"), "{r}");
        // Untraced runs keep the legacy format, without the section.
        d.trace = None;
        assert!(!discovery_health_report(&d).contains("phase timings:"));
    }

    fn result() -> MethodResult {
        MethodResult {
            method: "AutoFeat".into(),
            accuracy_per_model: vec![
                (ModelKind::LightGbm, 0.9),
                (ModelKind::RandomForest, 0.8),
            ],
            feature_selection_time: Duration::from_millis(120),
            total_time: Duration::from_millis(500),
            n_tables_joined: 3,
            n_features: 7,
        }
    }

    #[test]
    fn mean_accuracy_averages() {
        assert!((result().mean_accuracy() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        let mut r = result();
        r.accuracy_per_model.clear();
        assert_eq!(r.mean_accuracy(), 0.0);
    }

    #[test]
    fn accuracy_lookup() {
        let r = result();
        assert_eq!(r.accuracy_for(ModelKind::LightGbm), Some(0.9));
        assert_eq!(r.accuracy_for(ModelKind::Knn), None);
    }
}
