//! AutoFeat configuration (hyper-parameters of §VI/§VII).

use std::path::PathBuf;
use std::time::Duration;

use autofeat_metrics::redundancy::RedundancyMethod;
use autofeat_metrics::relevance::RelevanceMethod;

/// Hyper-parameters of the AutoFeat pipeline.
///
/// Defaults follow the paper's evaluation: τ = 0.65, κ = 15, Spearman
/// relevance, MRMR redundancy.
#[derive(Debug, Clone)]
pub struct AutoFeatConfig {
    /// Null-value-ratio threshold τ: a join whose newly added columns have
    /// completeness (fraction of non-null cells) below τ is pruned.
    pub tau: f64,
    /// Maximum features selected from one table (κ of *select-κ-best*).
    pub kappa: usize,
    /// Relevance measure; `None` disables the relevance analysis (ablation
    /// "turn off relevance": every new feature passes straight to the
    /// redundancy step).
    pub relevance: Option<RelevanceMethod>,
    /// Redundancy criterion; `None` disables the redundancy analysis
    /// (ablation: all relevant features are kept).
    pub redundancy: Option<RedundancyMethod>,
    /// Number of top-ranked paths handed to model training.
    pub top_k: usize,
    /// Maximum join-path length explored.
    pub max_path_length: usize,
    /// Hard cap on the number of joins evaluated (guards dense data-lake
    /// multigraphs where the acyclic path space explodes).
    pub max_joins: usize,
    /// Optional wall-clock deadline for the discovery BFS. When elapsed time
    /// exceeds it, exploration stops gracefully and the result is marked
    /// truncated with
    /// [`TruncationReason::DeadlineExceeded`](crate::TruncationReason);
    /// everything ranked so far is still returned. `None` = no deadline.
    /// The deadline composes with the context-wide
    /// [`RunControl`](autofeat_data::RunControl): the tighter of the two
    /// wins, and a cancel on either interrupts the run.
    pub time_budget: Option<Duration>,
    /// Deterministic graceful-degradation ladder, active only when a
    /// deadline is armed (this run's `time_budget`, or a deadline on the
    /// context's [`RunControl`](autofeat_data::RunControl)). Runs without a
    /// deadline never degrade, so their results stay bit-identical whatever
    /// these knobs say.
    pub degrade: DegradeConfig,
    /// Optional beam width: keep only the best-scored `b` frontier entries
    /// per BFS level. `None` = exhaustive level expansion (the paper's
    /// published algorithm); `Some(b)` is the "more aggressive pruning" its
    /// future-work section proposes for dense lakes.
    pub beam_width: Option<usize>,
    /// Row cap for the stratified sample used during feature selection
    /// (§VI: "we use stratified sampling to sample the base table at the
    /// beginning of the process"). `None` = use all rows.
    pub sample_rows: Option<usize>,
    /// RNG seed: drives base-table sampling directly and every join's
    /// representative picks via per-hop seed derivation
    /// (see [`crate::seeding::hop_seed`]).
    pub seed: u64,
    /// Worker threads for the per-level parallel path evaluation. `0` =
    /// auto: honour the `AUTOFEAT_THREADS` environment variable when set to
    /// a positive integer, else use the machine's available parallelism.
    /// Results are bit-identical at any thread count.
    pub threads: usize,
    /// Use the context's lake-wide [`LakeIndexCache`](autofeat_data::LakeIndexCache)
    /// for normalized joins. `false` rebuilds every join index from scratch
    /// (the pre-cache kernel) — results are bit-identical either way; the
    /// switch exists for benchmarking and determinism audits.
    pub cache: bool,
    /// Byte budget for the lake-wide join-index cache (memory governance:
    /// fit-or-deny admission, LRU eviction on budget shrink — see the
    /// `autofeat_data::cache` module docs). `Some(b)` is applied to the
    /// context's cache at the start of each run; `None` defers to the
    /// `AUTOFEAT_CACHE_BUDGET` environment variable (honoured both here and
    /// at cache construction), and when that is unset too the cache is
    /// unbounded. Budgeted, unbounded, and uncached runs are bit-identical —
    /// the budget bounds memory, never results.
    pub cache_budget_bytes: Option<u64>,
    /// Collect a structured [`RunTrace`](autofeat_obs::RunTrace) for every
    /// discovery run: per-phase wall times, pipeline counters, and a bounded
    /// event log, attached to the result as `DiscoveryResult::trace`.
    /// Tracing never perturbs results — traced and untraced runs are
    /// bit-identical. Also enabled implicitly by `trace_path` or the
    /// `AUTOFEAT_TRACE` environment variable.
    pub trace: bool,
    /// Where to write the run trace as JSON (schema
    /// [`autofeat_obs::TRACE_SCHEMA_VERSION`]). Setting a path implies
    /// `trace`. When unset, the `AUTOFEAT_TRACE` environment variable (a
    /// file path) is honoured instead. Write failures are fail-soft: the
    /// run still succeeds and the trace stays on the result.
    pub trace_path: Option<PathBuf>,
}

impl Default for AutoFeatConfig {
    fn default() -> Self {
        AutoFeatConfig {
            tau: 0.65,
            kappa: 15,
            relevance: Some(RelevanceMethod::Spearman),
            redundancy: Some(RedundancyMethod::Mrmr),
            top_k: 4,
            max_path_length: 4,
            max_joins: 2000,
            time_budget: None,
            degrade: DegradeConfig::default(),
            beam_width: None,
            sample_rows: Some(1000),
            seed: 42,
            threads: 0,
            cache: true,
            cache_budget_bytes: None,
            trace: false,
            trace_path: None,
        }
    }
}

impl AutoFeatConfig {
    /// The paper's published configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Builder-style τ override.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Builder-style κ override.
    pub fn with_kappa(mut self, kappa: usize) -> Self {
        self.kappa = kappa;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style discovery deadline override.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Builder-style degradation-ladder override (see [`DegradeConfig`]).
    pub fn with_degrade(mut self, degrade: DegradeConfig) -> Self {
        self.degrade = degrade;
        self
    }

    /// Builder-style worker-thread override (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style join-index-cache toggle.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Builder-style cache byte-budget override (see
    /// [`cache_budget_bytes`](Self::cache_budget_bytes)).
    pub fn with_cache_budget_bytes(mut self, bytes: u64) -> Self {
        self.cache_budget_bytes = Some(bytes);
        self
    }

    /// Builder-style trace toggle (in-memory trace on the result, no file).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style trace output path (implies tracing).
    pub fn with_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Whether this run should collect a trace: the explicit `trace` flag, a
    /// configured `trace_path`, or a non-empty `AUTOFEAT_TRACE` environment
    /// variable.
    pub fn trace_enabled(&self) -> bool {
        self.trace || self.trace_path.is_some() || env_trace_path().is_some()
    }

    /// The JSON output path for the trace, if any: the explicit `trace_path`
    /// wins over the `AUTOFEAT_TRACE` environment variable. `None` means the
    /// trace stays in-memory only.
    pub fn resolve_trace_path(&self) -> Option<PathBuf> {
        self.trace_path.clone().or_else(env_trace_path)
    }

    /// The effective cache byte budget for a run: the explicit
    /// `cache_budget_bytes` when set, else the `AUTOFEAT_CACHE_BUDGET`
    /// environment variable. `None` means this run imposes no budget (the
    /// context's cache keeps whatever budget it already has — so a cache
    /// configured programmatically via
    /// [`LakeIndexCache::set_budget`](autofeat_data::LakeIndexCache::set_budget)
    /// is not clobbered by budget-less runs).
    pub fn resolve_cache_budget(&self) -> Option<u64> {
        self.cache_budget_bytes.or_else(autofeat_data::cache::env_cache_budget)
    }

    /// The effective worker count: the explicit `threads` field when
    /// positive, else the `AUTOFEAT_THREADS` / auto-detect resolution of
    /// [`autofeat_data::parallel::n_workers`].
    pub fn resolve_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            autofeat_data::parallel::n_workers()
        }
    }

    /// Ablation variants of Fig. 9, by name.
    ///
    /// Returns `(label, config)` pairs: Spearman-MRMR (AutoFeat proper),
    /// Pearson-MRMR, Spearman-JMI, Pearson-JMI, Spearman-only, MRMR-only.
    pub fn ablation_variants() -> Vec<(&'static str, AutoFeatConfig)> {
        let base = AutoFeatConfig::default();
        vec![
            ("Spearman-MRMR", base.clone()),
            (
                "Pearson-MRMR",
                AutoFeatConfig { relevance: Some(RelevanceMethod::Pearson), ..base.clone() },
            ),
            (
                "Spearman-JMI",
                AutoFeatConfig { redundancy: Some(RedundancyMethod::Jmi), ..base.clone() },
            ),
            (
                "Pearson-JMI",
                AutoFeatConfig {
                    relevance: Some(RelevanceMethod::Pearson),
                    redundancy: Some(RedundancyMethod::Jmi),
                    ..base.clone()
                },
            ),
            (
                "Spearman-only",
                AutoFeatConfig { redundancy: None, ..base.clone() },
            ),
            ("MRMR-only", AutoFeatConfig { relevance: None, ..base }),
        ]
    }
}

/// The graceful-degradation ladder: deterministic trade-downs a deadline-
/// armed discovery run takes to stay useful as its budget runs out, each
/// recorded on `DiscoveryResult::resilience` and as a
/// `resilience.degradations` trace counter.
///
/// The three rungs, in the order they engage:
///
/// 1. **Shrink the stratified sample** — when the *total* armed budget is
///    below [`shrink_sample_below`](Self::shrink_sample_below), the base-
///    table sample is capped at [`min_sample_rows`](Self::min_sample_rows)
///    instead of `sample_rows`. This rung depends only on configuration, so
///    two runs with the same budget take it identically.
/// 2. **Skip redundancy refinement** — when the *remaining* fraction of the
///    budget falls below
///    [`skip_redundancy_below`](Self::skip_redundancy_below) at a level
///    boundary (or the cache governor has rejected at least
///    [`rejection_pressure`](Self::rejection_pressure) admissions this
///    run), later levels keep every relevance-approved feature without the
///    streaming redundancy pass.
/// 3. **Stop enumerating deeper levels** — when the remaining fraction
///    falls below [`stop_levels_below`](Self::stop_levels_below), the BFS
///    stops before the next level and the result is marked truncated.
///
/// Rungs 2 and 3 read the wall clock, so they are inherently best-effort:
/// they only exist under an armed deadline, where anytime semantics — not
/// bit-identity — are the contract.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// Master switch. `false` = never degrade (a tight deadline then simply
    /// truncates harder).
    pub enabled: bool,
    /// Total-budget threshold below which rung 1 (sample shrink) engages.
    pub shrink_sample_below: Duration,
    /// The shrunken sample cap rung 1 applies.
    pub min_sample_rows: usize,
    /// Remaining-budget fraction below which rung 2 (skip redundancy)
    /// engages.
    pub skip_redundancy_below: f64,
    /// Cache-governor admission rejections (this run) that also trigger
    /// rung 2 — sustained rejection means indexes are being rebuilt over
    /// and over, so the cheaper merge buys the most time back.
    pub rejection_pressure: u64,
    /// Remaining-budget fraction below which rung 3 (stop deeper levels)
    /// engages.
    pub stop_levels_below: f64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            enabled: true,
            shrink_sample_below: Duration::from_secs(1),
            min_sample_rows: 250,
            skip_redundancy_below: 0.25,
            rejection_pressure: 64,
            stop_levels_below: 0.10,
        }
    }
}

/// The `AUTOFEAT_TRACE` environment variable as a path, when set non-empty.
fn env_trace_path() -> Option<PathBuf> {
    match std::env::var("AUTOFEAT_TRACE") {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AutoFeatConfig::paper();
        assert_eq!(c.tau, 0.65);
        assert_eq!(c.kappa, 15);
        assert_eq!(c.relevance, Some(RelevanceMethod::Spearman));
        assert!(matches!(c.redundancy, Some(RedundancyMethod::Mrmr)));
    }

    #[test]
    fn builders_override() {
        let c = AutoFeatConfig::default().with_tau(0.3).with_kappa(5).with_seed(9);
        assert_eq!(c.tau, 0.3);
        assert_eq!(c.kappa, 5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn degrade_defaults_are_armed_but_conservative() {
        let d = DegradeConfig::default();
        assert!(d.enabled);
        assert_eq!(d.shrink_sample_below, Duration::from_secs(1));
        assert_eq!(d.min_sample_rows, 250);
        assert!(d.skip_redundancy_below > d.stop_levels_below);
        let c = AutoFeatConfig::default()
            .with_degrade(DegradeConfig { enabled: false, ..Default::default() });
        assert!(!c.degrade.enabled);
    }

    #[test]
    fn threads_resolution() {
        // Explicit config value wins over everything.
        let c = AutoFeatConfig::default().with_threads(3);
        assert_eq!(c.resolve_threads(), 3);
        // 0 = auto: at least one worker, whatever the environment says.
        let auto = AutoFeatConfig::default();
        assert_eq!(auto.threads, 0);
        assert!(auto.resolve_threads() >= 1);
    }

    #[test]
    fn cache_budget_resolution() {
        // Default: no budget configured, environment decides (unset here).
        let c = AutoFeatConfig::default();
        assert_eq!(c.cache_budget_bytes, None);
        // (cannot assert the env-free branch strictly — another test binary
        // may export the variable — but the builder must always win.)
        let c = AutoFeatConfig::default().with_cache_budget_bytes(24 << 20);
        assert_eq!(c.resolve_cache_budget(), Some(24 << 20));
        let c = AutoFeatConfig::default().with_cache_budget_bytes(0);
        assert_eq!(c.resolve_cache_budget(), Some(0), "zero budget is explicit");
    }

    #[test]
    fn trace_builders_enable_tracing() {
        let c = AutoFeatConfig::default().with_trace(true);
        assert!(c.trace_enabled());
        // A path implies tracing and wins over the environment.
        let c2 = AutoFeatConfig::default().with_trace_path("/tmp/trace.json");
        assert!(c2.trace_enabled());
        assert_eq!(c2.resolve_trace_path(), Some(PathBuf::from("/tmp/trace.json")));
    }

    #[test]
    fn ablation_variants_cover_fig9() {
        let v = AutoFeatConfig::ablation_variants();
        assert_eq!(v.len(), 6);
        let labels: Vec<&str> = v.iter().map(|(l, _)| *l).collect();
        assert!(labels.contains(&"Spearman-MRMR"));
        assert!(labels.contains(&"MRMR-only"));
        let spearman_only = &v.iter().find(|(l, _)| *l == "Spearman-only").unwrap().1;
        assert!(spearman_only.redundancy.is_none());
        let mrmr_only = &v.iter().find(|(l, _)| *l == "MRMR-only").unwrap().1;
        assert!(mrmr_only.relevance.is_none());
    }
}
