//! Algorithm 1: BFS feature discovery over the Dataset Relation Graph.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use autofeat_data::encode::label_encode_column;
use autofeat_data::join::left_join_normalized;
use autofeat_data::sample::stratified_sample;
use autofeat_data::stats::completeness;
use autofeat_data::{Result, Table};
use autofeat_graph::{JoinHop, JoinPath, NodeId};
use autofeat_metrics::discretize::{discretize_equal_frequency, Discretized};
use autofeat_metrics::redundancy::RedundancyScorer;
use autofeat_metrics::relevance::DEFAULT_BINS;
use autofeat_metrics::selection::{select_k_best, select_non_redundant};

use crate::config::AutoFeatConfig;
use crate::context::SearchContext;
use crate::executor::qualified_column;
use crate::ranking::{accumulate, compute_score};

/// One ranked join path: the paper's output unit ("a ranked list of top-k
/// join paths ... with their respective join keys and a list of selected
/// features").
#[derive(Debug, Clone)]
pub struct RankedPath {
    /// The join path (hops with join keys).
    pub path: JoinPath,
    /// Algorithm 2 score, accumulated over the path's hops.
    pub score: f64,
    /// Qualified names of the features selected along this path.
    pub features: Vec<String>,
}

/// Why exploration stopped before exhausting the path space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The `max_joins` cap on evaluated joins was reached.
    MaxJoins,
    /// The configured `time_budget` deadline expired.
    Deadline,
}

/// One join hop that failed during discovery. The failure is *isolated*: the
/// BFS records it and keeps exploring every other path, so a single corrupt
/// table cannot abort an hours-long lake run.
#[derive(Debug, Clone)]
pub struct PathFailure {
    /// The path explored up to (not including) the failed hop.
    pub path: JoinPath,
    /// The hop whose evaluation errored.
    pub hop: JoinHop,
    /// The error text (stringified so the result stays `Clone`).
    pub error: String,
}

/// The outcome of a discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// All scored paths, best first.
    pub ranked: Vec<RankedPath>,
    /// Joins actually evaluated.
    pub n_joins_evaluated: usize,
    /// Paths pruned because the join produced no matches (mismatched
    /// columns — the data-lake failure mode).
    pub n_pruned_unjoinable: usize,
    /// Paths pruned by the τ data-quality rule.
    pub n_pruned_quality: usize,
    /// Whether exploration stopped early (see `truncation` for why).
    pub truncated: bool,
    /// Why exploration stopped early, when it did.
    pub truncation: Option<TruncationReason>,
    /// Hops that errored and were skipped; the paths through them were
    /// abandoned but every other path was still explored.
    pub failures: Vec<PathFailure>,
    /// Wall-clock feature-discovery time (the paper's "feature selection
    /// time").
    pub elapsed: Duration,
    /// Union of all features selected across paths (excluding base
    /// features).
    pub selected_features: Vec<String>,
}

impl DiscoveryResult {
    /// The top-k paths.
    pub fn top_k(&self, k: usize) -> &[RankedPath] {
        &self.ranked[..k.min(self.ranked.len())]
    }
}

struct Frontier {
    node: NodeId,
    path: JoinPath,
    table: Table,
    score: f64,
    features: Vec<String>,
}

/// Total-order sort key for path scores: degenerate inputs (constant
/// columns, all-null features) can make a score NaN, which must neither
/// panic the sort nor outrank healthy paths — NaN ranks below every finite
/// score.
fn rank_key(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

/// The AutoFeat feature-discovery engine.
#[derive(Debug, Clone, Default)]
pub struct AutoFeat {
    /// Hyper-parameters.
    pub config: AutoFeatConfig,
}

impl AutoFeat {
    /// Engine with the given configuration.
    pub fn new(config: AutoFeatConfig) -> Self {
        AutoFeat { config }
    }

    /// Engine with the paper's configuration.
    pub fn paper() -> Self {
        AutoFeat::new(AutoFeatConfig::paper())
    }

    /// Run Algorithm 1 over the context, producing the ranked path list.
    pub fn discover(&self, ctx: &SearchContext) -> Result<DiscoveryResult> {
        let t0 = Instant::now();
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Stratified sample of the base table (only affects feature
        // selection, not final training — §VI).
        let base = ctx.base_table();
        let sampled = match cfg.sample_rows {
            Some(cap) if base.n_rows() > cap => {
                let frac = cap as f64 / base.n_rows() as f64;
                stratified_sample(base, ctx.label(), frac, &mut rng)?
            }
            _ => base.clone(),
        };

        // Label codes aligned with the sampled base (and, by left-join row
        // preservation, with every augmented table derived from it).
        let label_col = label_encode_column(sampled.column(ctx.label())?);
        let labels: Vec<i64> = (0..label_col.len())
            .map(|i| label_col.get_f64(i).map_or(-1, |v| v as i64))
            .collect();
        let label_codes = Discretized::from_codes(labels.iter().map(|&l| Some(l)));

        let drg = ctx.drg();
        // Join columns are infrastructure, not features: they are random
        // identifiers whose noise dilutes the MRMR average and whose
        // near-zero correlations pollute the top-κ slots. They must stay in
        // the tables (they are the stepping stones of transitive joins) but
        // are excluded from relevance/redundancy candidacy and from the
        // R_sel seed.
        let mut join_cols: std::collections::HashSet<(String, String)> =
            std::collections::HashSet::new();
        for e in drg.edges() {
            join_cols.insert((drg.table_name(e.a).to_string(), e.a_column.clone()));
            join_cols.insert((drg.table_name(e.b).to_string(), e.b_column.clone()));
        }

        // R_sel: the running selected-feature set, seeded with the base
        // table's non-key features (Algorithm 1 input).
        let mut r_sel: HashMap<String, Discretized> = HashMap::new();
        for f in ctx.base_features() {
            if join_cols.contains(&(ctx.base_name().to_string(), f.clone())) {
                continue;
            }
            let col = label_encode_column(sampled.column(&f)?);
            r_sel.insert(f.clone(), discretize_equal_frequency(&col.to_f64_lossy(), DEFAULT_BINS));
        }

        let redundancy_scorer = cfg.redundancy.map(RedundancyScorer::new);

        let Some(base_node) = drg.node(ctx.base_name()) else {
            // Base is disconnected from the graph: nothing to discover.
            return Ok(DiscoveryResult {
                ranked: Vec::new(),
                n_joins_evaluated: 0,
                n_pruned_unjoinable: 0,
                n_pruned_quality: 0,
                truncated: false,
                truncation: None,
                failures: Vec::new(),
                elapsed: t0.elapsed(),
                selected_features: Vec::new(),
            });
        };

        let mut ranked: Vec<RankedPath> = Vec::new();
        let mut n_joins = 0usize;
        let mut n_unjoinable = 0usize;
        let mut n_quality = 0usize;
        let mut truncation: Option<TruncationReason> = None;
        let mut failures: Vec<PathFailure> = Vec::new();
        let mut selected_union: Vec<String> = Vec::new();

        // BFS over levels (§IV-A: level-by-level exploration contains join
        // errors); an optional beam keeps only the best-scored frontier
        // entries per level — the "more aggressive pruning" the paper's
        // future-work section calls for on dense lakes.
        let mut current: Vec<Frontier> = vec![Frontier {
            node: base_node,
            path: JoinPath::empty(),
            table: sampled,
            score: 0.0,
            features: Vec::new(),
        }];

        'levels: while !current.is_empty() {
            let mut next_level: Vec<Frontier> = Vec::new();
            for entry in &current {
            if entry.path.len() >= cfg.max_path_length {
                continue;
            }
            for (next, edge_ids) in drg.neighbours(entry.node) {
                let next_name = drg.table_name(next).to_string();
                if next_name == ctx.base_name() || entry.path.visits(&next_name) {
                    continue;
                }
                let Some(right) = ctx.table(&next_name) else {
                    continue;
                };
                // Similarity-score pruning: expand only the top-scored join
                // column(s) toward this neighbour.
                for eid in drg.best_edges(&edge_ids) {
                    if n_joins >= cfg.max_joins {
                        truncation = Some(TruncationReason::MaxJoins);
                        break 'levels;
                    }
                    if let Some(budget) = cfg.time_budget {
                        if t0.elapsed() >= budget {
                            truncation = Some(TruncationReason::Deadline);
                            break 'levels;
                        }
                    }
                    let edge = drg.edge(eid);
                    let Some((_, from_col, to_col)) = edge.oriented_from(entry.node) else {
                        continue;
                    };
                    let left_key = qualified_column(
                        ctx.base_name(),
                        drg.table_name(entry.node),
                        from_col,
                    );
                    if !entry.table.has_column(&left_key) {
                        continue;
                    }
                    let hop = JoinHop {
                        from_table: drg.table_name(entry.node).to_string(),
                        from_column: from_col.to_string(),
                        to_table: next_name.clone(),
                        to_column: to_col.to_string(),
                        weight: edge.weight,
                    };
                    // Per-path error isolation: a hop that errors is
                    // recorded in `failures` and skipped; the BFS keeps
                    // exploring every other path.
                    let fail = |path: &JoinPath, hop: &JoinHop, e: &dyn std::fmt::Display| {
                        PathFailure {
                            path: path.clone(),
                            hop: hop.clone(),
                            error: e.to_string(),
                        }
                    };
                    n_joins += 1;
                    let out = match left_join_normalized(
                        &entry.table,
                        right,
                        &left_key,
                        to_col,
                        &next_name,
                        &mut rng,
                    ) {
                        Ok(out) => out,
                        Err(e) => {
                            failures.push(fail(&entry.path, &hop, &e));
                            continue;
                        }
                    };
                    // Prune: join produced no matches at all.
                    if out.matched == 0 {
                        n_unjoinable += 1;
                        continue;
                    }
                    // Prune: data quality below τ.
                    let new_cols: Vec<&str> =
                        out.right_columns.iter().map(String::as_str).collect();
                    let quality = match completeness(&out.table, &new_cols) {
                        Ok(q) => q,
                        Err(e) => {
                            failures.push(fail(&entry.path, &hop, &e));
                            continue;
                        }
                    };
                    if quality < cfg.tau {
                        n_quality += 1;
                        continue;
                    }

                    // ---- Relevance analysis (select-κ-best). ----
                    // Join columns of the DRG never become feature
                    // candidates (see join_cols above).
                    let candidate_names: Vec<String> = out
                        .right_columns
                        .iter()
                        .filter(|qualified| {
                            let original = qualified
                                .strip_prefix(&format!("{next_name}."))
                                .unwrap_or(qualified);
                            !join_cols.contains(&(next_name.clone(), original.to_string()))
                        })
                        .cloned()
                        .collect();
                    let mut candidate_data: Vec<Vec<f64>> =
                        Vec::with_capacity(candidate_names.len());
                    let mut hop_errored = false;
                    for c in &candidate_names {
                        match out.table.column(c) {
                            Ok(col) => candidate_data
                                .push(label_encode_column(col).to_f64_lossy()),
                            Err(e) => {
                                failures.push(fail(&entry.path, &hop, &e));
                                hop_errored = true;
                                break;
                            }
                        }
                    }
                    if hop_errored {
                        continue;
                    }
                    let (relevant_idx, rel_scores): (Vec<usize>, Vec<f64>) =
                        match cfg.relevance {
                            Some(method) => {
                                let picked = select_k_best(
                                    &candidate_data,
                                    &labels,
                                    method,
                                    cfg.kappa,
                                    0.0,
                                );
                                (
                                    picked.iter().map(|s| s.index).collect(),
                                    picked.iter().map(|s| s.score).collect(),
                                )
                            }
                            // Ablation: relevance off ⇒ every candidate
                            // passes through, no relevance score.
                            None => ((0..candidate_names.len()).collect(), Vec::new()),
                        };

                    // ---- Redundancy analysis (streaming, vs R_sel). ----
                    let candidate_codes: Vec<Discretized> = relevant_idx
                        .iter()
                        .map(|&i| {
                            discretize_equal_frequency(&candidate_data[i], DEFAULT_BINS)
                        })
                        .collect();
                    let (kept_local, red_scores): (Vec<usize>, Vec<f64>) =
                        match &redundancy_scorer {
                            Some(scorer) => {
                                let cands: Vec<(usize, &Discretized)> = candidate_codes
                                    .iter()
                                    .enumerate()
                                    .collect();
                                let already: Vec<&Discretized> = r_sel.values().collect();
                                let kept = select_non_redundant(
                                    &cands,
                                    &already,
                                    &label_codes,
                                    scorer,
                                );
                                (
                                    kept.iter().map(|s| s.index).collect(),
                                    kept.iter().map(|s| s.score).collect(),
                                )
                            }
                            // Ablation: redundancy off ⇒ keep all relevant.
                            None => ((0..candidate_codes.len()).collect(), Vec::new()),
                        };

                    // Update R_sel (Algorithm 1, line 18).
                    let mut new_features = Vec::with_capacity(kept_local.len());
                    for &li in &kept_local {
                        let name = candidate_names[relevant_idx[li]].clone();
                        r_sel.insert(name.clone(), candidate_codes[li].clone());
                        if !selected_union.contains(&name) {
                            selected_union.push(name.clone());
                        }
                        new_features.push(name);
                    }

                    // ---- Ranking (Algorithm 2). ----
                    let hop_score = compute_score(&rel_scores, &red_scores);
                    let path_score = accumulate(entry.score, hop_score);
                    let new_path = entry.path.extended(hop);
                    let mut path_features = entry.features.clone();
                    path_features.extend(new_features);
                    ranked.push(RankedPath {
                        path: new_path.clone(),
                        score: path_score,
                        features: path_features.clone(),
                    });
                    // Even a join contributing nothing stays in the queue:
                    // it may be the gateway to a deeper, relevant table
                    // (streaming-FS requirement, §V-A).
                    next_level.push(Frontier {
                        node: next,
                        path: new_path,
                        table: out.table,
                        score: path_score,
                        features: path_features,
                    });
                }
            }
            }
            if let Some(beam) = cfg.beam_width {
                next_level.sort_by(|a, b| {
                    rank_key(b.score)
                        .total_cmp(&rank_key(a.score))
                        .then_with(|| a.path.to_string().cmp(&b.path.to_string()))
                });
                next_level.truncate(beam);
            }
            current = next_level;
        }

        ranked.sort_by(|a, b| {
            rank_key(b.score)
                .total_cmp(&rank_key(a.score))
                .then_with(|| a.path.len().cmp(&b.path.len()))
                .then_with(|| a.path.to_string().cmp(&b.path.to_string()))
        });
        Ok(DiscoveryResult {
            ranked,
            n_joins_evaluated: n_joins,
            n_pruned_unjoinable: n_unjoinable,
            n_pruned_quality: n_quality,
            truncated: truncation.is_some(),
            truncation,
            failures,
            elapsed: t0.elapsed(),
            selected_features: selected_union,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    /// base(k, weak, target) — s1(k, strong_feature, k2) — s2(k2, stronger).
    fn chain_ctx(n: usize) -> SearchContext {
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "weak",
                    Column::from_floats(
                        (0..n).map(|i| Some(((i * 37) % 11) as f64)).collect::<Vec<_>>(),
                    ),
                ),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(1000 + i)).collect::<Vec<_>>())),
                (
                    "mid",
                    Column::from_floats(
                        labels
                            .iter()
                            .enumerate()
                            .map(|(i, &l)| Some(l as f64 + ((i * 13) % 7) as f64 * 0.3))
                            .collect::<Vec<_>>(),
                    ),
                ),
            ],
        )
        .unwrap();
        let s2 = Table::new(
            "s2",
            vec![
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(1000 + i)).collect::<Vec<_>>())),
                (
                    "strong",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, s1, s2],
            &[
                ("base".into(), "k".into(), "s1".into(), "k".into()),
                ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn discovers_transitive_path() {
        let ctx = chain_ctx(200);
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(result.ranked.len(), 2); // base→s1 and base→s1→s2
        // The two-hop path reaching the perfect feature must rank first.
        let best = &result.ranked[0];
        assert_eq!(best.path.len(), 2);
        assert_eq!(best.path.last_table(), Some("s2"));
        assert!(best.features.iter().any(|f| f == "s2.strong"));
    }

    #[test]
    fn selected_features_include_deep_signal() {
        let ctx = chain_ctx(200);
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        assert!(result.selected_features.iter().any(|f| f == "s2.strong"));
    }

    #[test]
    fn quality_pruning_counts() {
        // s1's keys do not match the base at all ⇒ unjoinable pruning.
        let n = 100;
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((5000..5000 + n).map(Some).collect::<Vec<_>>())),
                ("f", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, s1],
            &[("base".into(), "k".into(), "s1".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(result.ranked.len(), 0);
        assert_eq!(result.n_pruned_unjoinable, 1);
    }

    #[test]
    fn tau_pruning_kicks_in() {
        // Half the keys match ⇒ completeness ≈ 0.5 < τ=0.65 ⇒ pruned.
        let n = 100i64;
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n / 2).map(Some).collect::<Vec<_>>())),
                ("f", Column::from_floats((0..n / 2).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, s1],
            &[("base".into(), "k".into(), "s1".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        let strict = AutoFeat::new(AutoFeatConfig::default().with_tau(0.65));
        let r = strict.discover(&ctx).unwrap();
        assert_eq!(r.n_pruned_quality, 1);
        assert!(r.ranked.is_empty());
        // With τ = 0.3 the same join survives.
        let lax = AutoFeat::new(AutoFeatConfig::default().with_tau(0.3));
        let r2 = lax.discover(&ctx).unwrap();
        assert_eq!(r2.n_pruned_quality, 0);
        assert_eq!(r2.ranked.len(), 1);
    }

    #[test]
    fn kappa_caps_selected_features() {
        let ctx = chain_ctx(150);
        let cfg = AutoFeatConfig::default().with_kappa(1);
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        for rp in &result.ranked {
            // Each hop can add at most κ=1 feature, so a path of length L
            // has at most L features.
            assert!(rp.features.len() <= rp.path.len());
        }
    }

    #[test]
    fn max_joins_truncates() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig { max_joins: 1, ..Default::default() };
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(result.truncated);
        assert_eq!(result.truncation, Some(TruncationReason::MaxJoins));
        assert_eq!(result.n_joins_evaluated, 1);
    }

    #[test]
    fn zero_time_budget_truncates_with_deadline_reason() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig::default().with_time_budget(Duration::ZERO);
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(result.truncated);
        assert_eq!(result.truncation, Some(TruncationReason::Deadline));
        assert_eq!(result.n_joins_evaluated, 0);
        assert!(result.ranked.is_empty());
    }

    #[test]
    fn generous_time_budget_does_not_truncate() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig::default().with_time_budget(Duration::from_secs(600));
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(!result.truncated);
        assert_eq!(result.truncation, None);
        assert!(!result.ranked.is_empty());
    }

    #[test]
    fn nan_scores_sort_last_not_panic() {
        // Regression: the ranked/beam sorts used
        // `partial_cmp().expect("finite scores")`, which panics on NaN.
        let mut scores = [f64::NAN, 0.2, f64::NAN, 1.5, -0.3];
        scores.sort_by(|a, b| rank_key(*b).total_cmp(&rank_key(*a)));
        assert_eq!(scores[0], 1.5);
        assert_eq!(scores[1], 0.2);
        assert_eq!(scores[2], -0.3);
        assert!(scores[3].is_nan() && scores[4].is_nan());
    }

    #[test]
    fn constant_feature_columns_never_panic() {
        // A neighbour whose only feature is constant yields NaN Spearman
        // relevance; discovery (with and without a beam) must complete and
        // never rank a NaN-scored path above a healthy one.
        let n = 120usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let flat = Table::new(
            "flat",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("c", Column::from_floats(vec![Some(7.0); n])),
            ],
        )
        .unwrap();
        let good = Table::new(
            "good",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, flat, good],
            &[
                ("base".into(), "k".into(), "flat".into(), "k".into()),
                ("base".into(), "k".into(), "good".into(), "k".into()),
            ],
            "base",
            "target",
        )
        .unwrap();
        for beam in [None, Some(1)] {
            let cfg = AutoFeatConfig { beam_width: beam, ..Default::default() };
            let r = AutoFeat::new(cfg).discover(&ctx).unwrap();
            assert!(!r.ranked.is_empty());
            // The healthy path must outrank (or displace) the constant one.
            assert_eq!(r.ranked[0].path.last_table(), Some("good"));
            assert!(r.selected_features.iter().any(|f| f == "good.signal"));
        }
    }

    #[test]
    fn broken_hop_is_isolated_not_fatal() {
        // The DRG claims `bad` joins on a column the table does not have;
        // evaluating that hop errors. Discovery must record the failure and
        // still rank the healthy neighbour.
        let n = 100usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let bad = Table::new(
            "bad",
            vec![("other", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>()))],
        )
        .unwrap();
        let good = Table::new(
            "good",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, bad, good],
            &[
                // Edge references `bad.missing`, which does not exist.
                ("base".into(), "k".into(), "bad".into(), "missing".into()),
                ("base".into(), "k".into(), "good".into(), "k".into()),
            ],
            "base",
            "target",
        )
        .unwrap();
        let r = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].hop.to_table, "bad");
        assert!(r.failures[0].error.contains("missing"), "{}", r.failures[0].error);
        // The healthy path is unaffected.
        assert_eq!(r.ranked.len(), 1);
        assert_eq!(r.ranked[0].path.last_table(), Some("good"));
    }

    #[test]
    fn max_path_length_limits_depth() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig { max_path_length: 1, ..Default::default() };
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(result.ranked.iter().all(|r| r.path.len() == 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let ctx = chain_ctx(120);
        let a = AutoFeat::paper().discover(&ctx).unwrap();
        let b = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.path, y.path);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    #[test]
    fn beam_width_limits_frontier() {
        let ctx = chain_ctx(150);
        // Beam of 1: at most one frontier entry survives each level, so at
        // most one path per level is recorded.
        let cfg = AutoFeatConfig { beam_width: Some(1), ..Default::default() };
        let narrow = AutoFeat::new(cfg).discover(&ctx).unwrap();
        let wide = AutoFeat::paper().discover(&ctx).unwrap();
        assert!(narrow.ranked.len() <= wide.ranked.len());
        // The chain graph still reaches the deep signal through the beam.
        assert!(narrow.selected_features.iter().any(|f| f == "s2.strong"));
    }

    #[test]
    fn ablation_variants_run() {
        let ctx = chain_ctx(100);
        for (label, cfg) in AutoFeatConfig::ablation_variants() {
            let r = AutoFeat::new(cfg).discover(&ctx).unwrap();
            assert!(!r.ranked.is_empty(), "{label} produced no paths");
        }
    }

    #[test]
    fn redundant_deep_feature_not_selected_twice() {
        // s2.strong duplicates s1.mid? Here: make s2's feature an exact
        // copy of s1's; redundancy must drop it.
        let n = 150usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let feat: Vec<Option<f64>> = labels.iter().map(|&l| Some(l as f64)).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(900 + i)).collect::<Vec<_>>())),
                ("f", Column::from_floats(feat.clone())),
            ],
        )
        .unwrap();
        let s2 = Table::new(
            "s2",
            vec![
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(900 + i)).collect::<Vec<_>>())),
                ("f_copy", Column::from_floats(feat)),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, s1, s2],
            &[
                ("base".into(), "k".into(), "s1".into(), "k".into()),
                ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ],
            "base",
            "target",
        )
        .unwrap();
        // CMIM penalizes the *worst-case* overlap, so an exact duplicate is
        // always dropped. (MRMR averages over |S|, which dilutes the
        // duplicate penalty once unrelated features are in R_sel — that is
        // faithful to the published criterion, so we assert the stricter
        // behaviour on CMIM.)
        let cfg = crate::config::AutoFeatConfig {
            redundancy: Some(autofeat_metrics::redundancy::RedundancyMethod::Cmim),
            ..Default::default()
        };
        let r = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(r.selected_features.iter().any(|f| f == "s1.f"));
        assert!(
            !r.selected_features.iter().any(|f| f == "s2.f_copy"),
            "exact duplicate of an already-selected feature must be dropped: {:?}",
            r.selected_features
        );
    }
}
