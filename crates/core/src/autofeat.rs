//! Algorithm 1: BFS feature discovery over the Dataset Relation Graph —
//! evaluated level-by-level with deterministic parallel join evaluation.
//!
//! ## Determinism model
//!
//! Every stochastic or order-sensitive piece of the search is pinned to a
//! stable identity, so a run's output is **bit-identical across processes
//! and across worker-thread counts** for a fixed seed:
//!
//! * each hop's join seed is derived from `(config seed, path prefix, hop)`
//!   via [`crate::seeding::hop_seed`] — never from a shared RNG stream, so
//!   evaluation order (or parallelism) cannot perturb representative picks;
//! * the running selected-feature set `R_sel` is an insertion-ordered
//!   vector, not a `HashMap`, so redundancy scores accumulate in the same
//!   floating-point order every run;
//! * per-level candidate hops are enumerated in a deterministic order
//!   (frontier index, then ascending neighbour node, then edge id), fanned
//!   out across scoped worker threads by candidate index, and merged back
//!   in candidate-index order.
//!
//! The parallel fan-out evaluates the expensive, *pure* part of each
//! candidate (join + τ quality + relevance + discretization); the cheap
//! stateful part (streaming redundancy against `R_sel`, ranking, counters)
//! is replayed sequentially in candidate order, preserving the exact
//! semantics of the sequential walk.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use autofeat_data::control;
use autofeat_data::encode::label_encode_column;
use autofeat_data::{cache, faults};
use autofeat_obs as obs;
use autofeat_obs::RunTrace;
use autofeat_data::join::left_join_normalized;
use autofeat_data::parallel::{run_indexed_ctl, ItemOutcome};
use autofeat_data::sample::stratified_sample;
use autofeat_data::stats::completeness;
use autofeat_data::{CacheStats, Interrupt, Result, RunControl, Table};
use autofeat_graph::{JoinHop, JoinPath, NodeId};
use autofeat_metrics::discretize::{discretize_equal_frequency, Discretized};
use autofeat_metrics::redundancy::RedundancyScorer;
use autofeat_metrics::relevance::DEFAULT_BINS;
use autofeat_metrics::selection::{select_k_best, select_non_redundant};

use crate::config::AutoFeatConfig;
use crate::context::SearchContext;
use crate::executor::qualified_column;
use crate::ranking::{accumulate, compute_score};
use crate::seeding::hop_seed;

/// One ranked join path: the paper's output unit ("a ranked list of top-k
/// join paths ... with their respective join keys and a list of selected
/// features").
#[derive(Debug, Clone)]
pub struct RankedPath {
    /// The join path (hops with join keys).
    pub path: JoinPath,
    /// Algorithm 2 score, accumulated over the path's hops.
    pub score: f64,
    /// Qualified names of the features selected along this path.
    pub features: Vec<String>,
}

/// Why exploration stopped before exhausting the path space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The `max_joins` cap on evaluated joins was reached.
    MaxJoins,
    /// The effective wall-clock deadline — the config's `time_budget`, or
    /// one armed on the context's [`RunControl`] — expired.
    DeadlineExceeded {
        /// The pipeline phase whose boundary check noticed the expiry.
        phase: Phase,
    },
    /// The run was cancelled via [`RunControl::cancel`] (on the context's
    /// control, from any thread).
    Cancelled,
}

/// The discovery phase at whose cooperative checkpoint an interrupt was
/// noticed. Coarse by design: checkpoints sit at phase boundaries, so this
/// is where the run *stopped*, not where time was spent (the trace answers
/// that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// At a level boundary, between candidate enumeration and evaluation.
    Enumerate,
    /// Inside the per-candidate evaluation fan-out.
    Evaluate,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Enumerate => write!(f, "enumerate"),
            Phase::Evaluate => write!(f, "evaluate"),
        }
    }
}

/// Map an interrupt reason to the truncation it causes at `phase`.
fn truncation_reason(reason: Interrupt, phase: Phase) -> TruncationReason {
    match reason {
        Interrupt::Cancelled => TruncationReason::Cancelled,
        Interrupt::DeadlineExceeded => TruncationReason::DeadlineExceeded { phase },
    }
}

/// Resilience bookkeeping for one discovery run: what the lifecycle layer
/// had to do to bring the run home. All-default on a healthy run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Degradation-ladder rungs taken, in the order they engaged (see
    /// [`DegradeConfig`](crate::config::DegradeConfig); empty unless a
    /// deadline was armed).
    pub degradations: Vec<&'static str>,
    /// Worker panics caught in the evaluation fan-out and isolated into
    /// [`PathFailure`]s instead of aborting the process.
    pub worker_panics: usize,
    /// Cancel-request → result-return latency, when the run was cancelled.
    pub cancel_latency: Option<Duration>,
}

/// One join hop that failed during discovery. The failure is *isolated*: the
/// BFS records it and keeps exploring every other path, so a single corrupt
/// table cannot abort an hours-long lake run.
#[derive(Debug, Clone)]
pub struct PathFailure {
    /// The path explored up to (not including) the failed hop.
    pub path: JoinPath,
    /// The hop whose evaluation errored.
    pub hop: JoinHop,
    /// The error text (stringified so the result stays `Clone`).
    pub error: String,
}

/// The outcome of a discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// All scored paths, best first.
    pub ranked: Vec<RankedPath>,
    /// Joins actually evaluated.
    pub n_joins_evaluated: usize,
    /// Paths pruned because the join produced no matches (mismatched
    /// columns — the data-lake failure mode). A join against an *empty*
    /// base is vacuous, not unjoinable, and is never counted here (see
    /// [`autofeat_data::join::JoinOutput::match_ratio`]).
    pub n_pruned_unjoinable: usize,
    /// Paths pruned by the τ data-quality rule.
    pub n_pruned_quality: usize,
    /// Candidate edges pruned by the similarity-score rule (per neighbour,
    /// only the top-scored join column(s) are expanded; the rest are
    /// counted here without ever being joined).
    pub n_pruned_similarity: usize,
    /// Enumerated candidates dropped without evaluation because a budget
    /// gate fired: the `max_joins` quota truncated the level, or the
    /// `time_budget` deadline expired before the level ran.
    pub n_pruned_budget: usize,
    /// Whether exploration stopped early (see `truncation` for why).
    pub truncated: bool,
    /// Why exploration stopped early, when it did.
    pub truncation: Option<TruncationReason>,
    /// Hops that errored and were skipped; the paths through them were
    /// abandoned but every other path was still explored.
    pub failures: Vec<PathFailure>,
    /// Wall-clock feature-discovery time (the paper's "feature selection
    /// time").
    pub elapsed: Duration,
    /// Union of all features selected across paths (excluding base
    /// features).
    pub selected_features: Vec<String>,
    /// Worker threads used for path evaluation. Informational only —
    /// results are bit-identical at any thread count.
    pub threads_used: usize,
    /// Lake-index-cache activity attributable to this run
    /// (hit/miss/build/eviction/rejection counters are deltas over the run;
    /// resident bytes, entry count, peak-resident, and the budget are the
    /// cache's state when the run finished, since the cache is owned by the
    /// context and persists across runs — when this run applied a budget,
    /// the peak is this run's own high-water mark). `None` when the run was
    /// configured with `cache: false`. Informational only — results are
    /// bit-identical with the cache on or off, budgeted or not.
    pub cache: Option<CacheStats>,
    /// Structured run trace (per-phase wall times, pipeline counters,
    /// bounded event log), present when the run was configured with
    /// tracing (`trace`, `trace_path`, or `AUTOFEAT_TRACE`). Informational
    /// only — results are bit-identical with tracing on or off.
    pub trace: Option<RunTrace>,
    /// What the request-lifecycle layer did during this run: degradation
    /// rungs taken, worker panics isolated, cancel latency. All-default on
    /// a healthy, unbounded run.
    pub resilience: ResilienceStats,
}

impl DiscoveryResult {
    /// The top-k paths.
    pub fn top_k(&self, k: usize) -> &[RankedPath] {
        &self.ranked[..k.min(self.ranked.len())]
    }
}

struct Frontier {
    node: NodeId,
    path: JoinPath,
    table: Table,
    score: f64,
    features: Vec<String>,
}

/// One `(frontier entry × best edge)` pair of the current BFS level,
/// enumerated in deterministic order before the parallel fan-out.
struct HopCandidate<'a> {
    /// Index into the current frontier.
    entry: usize,
    /// The neighbour node this hop reaches.
    next: NodeId,
    /// The neighbour's table.
    right: &'a Table,
    /// The neighbour's table name (join prefix).
    next_name: String,
    /// The hop's left key, qualified for the intermediate table.
    left_key: String,
    /// The hop itself.
    hop: JoinHop,
}

/// Stage-A outcome of evaluating one candidate hop: the pure part (join, τ
/// quality, relevance, discretization), safe to compute on any thread.
enum HopEval {
    /// The hop errored (error text; path/hop context lives in the
    /// candidate).
    Failed(String),
    /// The hop's evaluation was stopped cooperatively (cancel/deadline)
    /// mid-join. Not a failure: the candidate simply was never evaluated.
    Interrupted(Interrupt),
    /// The join produced no matches on a non-empty base.
    Unjoinable,
    /// New columns' completeness fell below τ.
    LowQuality,
    /// The hop survived pruning and its candidates passed relevance.
    Scored(ScoredHop),
}

/// The data a surviving hop carries into the sequential merge.
struct ScoredHop {
    /// The joined (augmented) table.
    table: Table,
    /// Names of the relevance-approved candidate features, in selection
    /// order (descending relevance).
    relevant_names: Vec<String>,
    /// Relevance scores aligned with `relevant_names` (empty when the
    /// relevance ablation is off).
    rel_scores: Vec<f64>,
    /// Discretized codes aligned with `relevant_names`.
    codes: Vec<Discretized>,
}

/// Total-order sort key for path scores: degenerate inputs (constant
/// columns, all-null features) can make a score NaN, which must neither
/// panic the sort nor outrank healthy paths — NaN ranks below every finite
/// score.
fn rank_key(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

/// Fraction of the armed budget still remaining (`None` when no deadline is
/// armed). Drives degradation rungs 2/3; reads the wall clock, so it only
/// ever runs under an armed deadline where anytime semantics are the
/// contract.
fn remaining_fraction(ctl: &RunControl, total: Option<Duration>) -> Option<f64> {
    let total = total?;
    if total.is_zero() {
        return Some(0.0);
    }
    Some(ctl.remaining()?.as_secs_f64() / total.as_secs_f64())
}

/// The AutoFeat feature-discovery engine.
#[derive(Debug, Clone, Default)]
pub struct AutoFeat {
    /// Hyper-parameters.
    pub config: AutoFeatConfig,
}

impl AutoFeat {
    /// Engine with the given configuration.
    pub fn new(config: AutoFeatConfig) -> Self {
        AutoFeat { config }
    }

    /// Engine with the paper's configuration.
    pub fn paper() -> Self {
        AutoFeat::new(AutoFeatConfig::paper())
    }

    /// Run Algorithm 1 over the context, producing the ranked path list.
    ///
    /// When tracing is enabled (config `trace`/`trace_path` or the
    /// `AUTOFEAT_TRACE` environment variable), the whole run executes under
    /// an ambient [`Tracer`](autofeat_obs::Tracer); the aggregated
    /// [`RunTrace`] is attached to the result and, when a path is
    /// configured, written as JSON. Trace collection never changes the
    /// result: traced and untraced runs are bit-identical, and counter
    /// totals are invariant across worker-thread counts.
    pub fn discover(&self, ctx: &SearchContext) -> Result<DiscoveryResult> {
        if !self.config.trace_enabled() {
            return self.discover_inner(ctx);
        }
        let tracer = obs::Tracer::enabled();
        let mut result = obs::with_tracer(&tracer, || self.discover_inner(ctx))?;
        let trace = tracer.snapshot();
        if let Some(path) = self.config.resolve_trace_path() {
            // Fail-soft: a bad trace destination must not fail a discovery
            // run that already succeeded.
            if let Err(e) = std::fs::write(&path, trace.to_json()) {
                eprintln!("autofeat: could not write trace to {}: {e}", path.display());
            }
        }
        result.trace = Some(trace);
        Ok(result)
    }

    /// Algorithm 1 proper, running under whatever ambient tracer (possibly
    /// the inert one) the caller installed.
    fn discover_inner(&self, ctx: &SearchContext) -> Result<DiscoveryResult> {
        let _discover_span = obs::span("discover");
        let t0 = Instant::now();
        let cfg = &self.config;
        let workers = cfg.resolve_threads();
        // Run-scoped lifecycle control: the config's time budget becomes a
        // deadline on a *child* of the context-wide control, so the
        // effective deadline is the tighter of the two, a cancel on either
        // side interrupts the run, and an expired per-run deadline never
        // leaks into the shared context handle. Installed ambiently so the
        // join kernel and the index cache can poll it without plumbed
        // parameters (fan-out workers re-install it themselves).
        let ctl = ctx
            .control()
            .scoped(cfg.time_budget.and_then(|b| Instant::now().checked_add(b)));
        let _ctl_guard = control::install_ambient(Some(Arc::clone(&ctl)));
        // Scope runtime fault injection to this context's lake: deep layers
        // resolve faults against the context's domain first, so same-named
        // tables in other concurrently-served contexts stay unaffected.
        let _faults_guard =
            faults::install_ambient_domain(Some(Arc::clone(ctx.fault_domain())));
        let total_budget = ctl.deadline().map(|d| d.saturating_duration_since(t0));
        let degrade_armed = cfg.degrade.enabled && total_budget.is_some();
        let mut degradations: Vec<&'static str> = Vec::new();
        let mut worker_panics = 0usize;
        // Per-request cache attribution: an ambient recorder (re-installed
        // by fan-out workers) credits every hit/miss/build/eviction to
        // exactly this run. A before/after stats delta would misattribute
        // the moment two runs share the cache concurrently.
        let cache_recorder = cfg.cache.then(cache::CacheRecorder::new);
        let _rec_guard = cache::install_recorder(cache_recorder.clone());
        // Apply the configured byte budget (config field, else the
        // AUTOFEAT_CACHE_BUDGET environment) before any join: a budget below
        // current residency evicts coldest-first, and the peak-resident
        // epoch restarts so this run reports its own high-water mark. A
        // budget-less run leaves the cache's standing budget untouched.
        // Applied with the recorder already installed, so the eviction burst
        // of bringing an over-budget cache down to this run's budget is
        // attributed to this run.
        if cfg.cache {
            if let Some(budget) = cfg.resolve_cache_budget() {
                ctx.lake_cache().set_budget(Some(budget));
            }
        }
        let cache_report = |rec: &Option<Arc<cache::CacheRecorder>>| {
            rec.as_ref().map(|r| r.attributed(ctx.lake_cache()))
        };

        // Stratified sample of the base table (only affects feature
        // selection, not final training — §VI). The RNG is used for the
        // sample only; joins derive their seeds per hop.
        let sample_span = obs::span("sample");
        let base = ctx.base_table();
        // Degradation rung 1: a total budget below the configured threshold
        // is too tight for the full sample — trade selection fidelity for
        // headroom up front. Depends only on configuration (not the clock),
        // so equal budgets degrade identically.
        let mut sample_cap = cfg.sample_rows;
        if degrade_armed && total_budget.is_some_and(|b| b < cfg.degrade.shrink_sample_below) {
            let shrunk = cfg.degrade.min_sample_rows;
            if sample_cap.is_none_or(|c| c > shrunk) && base.n_rows() > shrunk {
                sample_cap = Some(shrunk);
                degradations.push("shrunk sample");
                obs::event("degraded", || {
                    format!("sample capped at {shrunk} row(s): budget below threshold")
                });
            }
        }
        let sampled = match sample_cap {
            Some(cap) if base.n_rows() > cap => {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let frac = cap as f64 / base.n_rows() as f64;
                stratified_sample(base, ctx.label(), frac, &mut rng)?
            }
            _ => base.clone(),
        };

        // Label codes aligned with the sampled base (and, by left-join row
        // preservation, with every augmented table derived from it).
        let label_col = label_encode_column(sampled.column(ctx.label())?);
        let labels: Vec<i64> = (0..label_col.len())
            .map(|i| label_col.get_f64(i).map_or(-1, |v| v as i64))
            .collect();
        let label_codes = Discretized::from_codes(labels.iter().map(|&l| Some(l)));

        let drg = ctx.drg();
        // Join columns are infrastructure, not features: they are random
        // identifiers whose noise dilutes the MRMR average and whose
        // near-zero correlations pollute the top-κ slots. They must stay in
        // the tables (they are the stepping stones of transitive joins) but
        // are excluded from relevance/redundancy candidacy and from the
        // R_sel seed.
        let mut join_cols: HashSet<(String, String)> = HashSet::new();
        for e in drg.edges() {
            join_cols.insert((drg.table_name(e.a).to_string(), e.a_column.clone()));
            join_cols.insert((drg.table_name(e.b).to_string(), e.b_column.clone()));
        }

        // R_sel: the running selected-feature set, seeded with the base
        // table's non-key features (Algorithm 1 input). Insertion-ordered:
        // redundancy sums must accumulate in the same order every run, so a
        // hash map (whose value order is randomized per process) is not an
        // option here.
        let mut r_sel: Vec<(String, Discretized)> = Vec::new();
        for f in ctx.base_features() {
            if join_cols.contains(&(ctx.base_name().to_string(), f.clone())) {
                continue;
            }
            let col = label_encode_column(sampled.column(&f)?);
            r_sel.push((f.clone(), discretize_equal_frequency(&col.to_f64_lossy(), DEFAULT_BINS)));
        }

        // `mut`: degradation rung 2 drops the scorer mid-run to skip the
        // redundancy refinement for the remaining levels.
        let mut redundancy_scorer = cfg.redundancy.map(RedundancyScorer::new);
        drop(sample_span);

        let Some(base_node) = drg.node(ctx.base_name()) else {
            // Base is disconnected from the graph: nothing to discover.
            return Ok(DiscoveryResult {
                ranked: Vec::new(),
                n_joins_evaluated: 0,
                n_pruned_unjoinable: 0,
                n_pruned_quality: 0,
                n_pruned_similarity: 0,
                n_pruned_budget: 0,
                truncated: false,
                truncation: None,
                failures: Vec::new(),
                elapsed: t0.elapsed(),
                selected_features: Vec::new(),
                threads_used: workers,
                cache: cache_report(&cache_recorder),
                trace: None,
                resilience: ResilienceStats {
                    degradations,
                    worker_panics: 0,
                    cancel_latency: ctl.cancel_latency(),
                },
            });
        };

        let mut ranked: Vec<RankedPath> = Vec::new();
        let mut n_joins = 0usize;
        let mut n_unjoinable = 0usize;
        let mut n_quality = 0usize;
        let mut n_similarity = 0usize;
        let mut n_budget = 0usize;
        let mut n_levels = 0usize;
        let mut truncation: Option<TruncationReason> = None;
        let mut failures: Vec<PathFailure> = Vec::new();
        let mut selected_union: Vec<String> = Vec::new();

        // BFS over levels (§IV-A: level-by-level exploration contains join
        // errors); an optional beam keeps only the best-scored frontier
        // entries per level — the "more aggressive pruning" the paper's
        // future-work section calls for on dense lakes.
        let mut current: Vec<Frontier> = vec![Frontier {
            node: base_node,
            path: JoinPath::empty(),
            table: sampled,
            score: 0.0,
            features: Vec::new(),
        }];

        while !current.is_empty() {
            // ---- Degradation rungs 2/3, checked at level boundaries and
            // only under an armed deadline (unbounded runs never degrade, so
            // their results stay bit-identical — see `DegradeConfig`).
            if degrade_armed && n_levels > 0 {
                let frac = remaining_fraction(&ctl, total_budget);
                if frac.is_some_and(|f| f < cfg.degrade.stop_levels_below) {
                    truncation.get_or_insert(TruncationReason::DeadlineExceeded {
                        phase: Phase::Enumerate,
                    });
                    degradations.push("stopped deeper levels");
                    obs::event("degraded", || {
                        "stopped enumerating deeper levels: budget nearly spent".to_string()
                    });
                    break;
                }
                let pressure = cache_recorder
                    .as_ref()
                    .is_some_and(|r| r.rejections() >= cfg.degrade.rejection_pressure);
                if redundancy_scorer.is_some()
                    && (pressure
                        || frac.is_some_and(|f| f < cfg.degrade.skip_redundancy_below))
                {
                    redundancy_scorer = None;
                    degradations.push("skipped redundancy refinement");
                    obs::event("degraded", || {
                        "redundancy refinement off for remaining levels".to_string()
                    });
                }
            }
            let _level_span = obs::span("level");
            n_levels += 1;
            // ---- Enumerate this level's candidates, in deterministic
            // order: frontier index, then ascending neighbour, then edge.
            let enumerate_span = obs::span("enumerate");
            let mut cands: Vec<HopCandidate> = Vec::new();
            for (ei, entry) in current.iter().enumerate() {
                if entry.path.len() >= cfg.max_path_length {
                    continue;
                }
                for (next, edge_ids) in drg.neighbours(entry.node) {
                    let next_name = drg.table_name(next).to_string();
                    if next_name == ctx.base_name() || entry.path.visits(&next_name) {
                        continue;
                    }
                    let Some(right) = ctx.table(&next_name) else {
                        continue;
                    };
                    // Similarity-score pruning: expand only the top-scored
                    // join column(s) toward this neighbour.
                    let n_edges = edge_ids.len();
                    let best = drg.best_edges(&edge_ids);
                    n_similarity += n_edges - best.len();
                    for eid in best {
                        let edge = drg.edge(eid);
                        let Some((_, from_col, to_col)) = edge.oriented_from(entry.node)
                        else {
                            continue;
                        };
                        let left_key = qualified_column(
                            ctx.base_name(),
                            drg.table_name(entry.node),
                            from_col,
                        );
                        if !entry.table.has_column(&left_key) {
                            continue;
                        }
                        cands.push(HopCandidate {
                            entry: ei,
                            next,
                            right,
                            next_name: next_name.clone(),
                            left_key,
                            hop: JoinHop {
                                from_table: drg.table_name(entry.node).to_string(),
                                from_column: from_col.to_string(),
                                to_table: next_name.clone(),
                                to_column: to_col.to_string(),
                                weight: edge.weight,
                            },
                        });
                    }
                }
            }

            obs::add("discover.candidates_enumerated", cands.len() as u64);
            drop(enumerate_span);

            // ---- Truncation gates, applied level-wise so the evaluated
            // candidate set is a deterministic prefix of the enumeration
            // order regardless of thread count.
            if !cands.is_empty() {
                if let Some(reason) = ctl.interrupted() {
                    truncation = Some(truncation_reason(reason, Phase::Enumerate));
                    n_budget += cands.len();
                    break;
                }
                let quota = cfg.max_joins.saturating_sub(n_joins);
                if cands.len() > quota {
                    n_budget += cands.len() - quota;
                    cands.truncate(quota);
                    truncation = Some(TruncationReason::MaxJoins);
                }
            }

            // ---- Stage A (parallel, pure): join + τ quality + relevance +
            // discretization per candidate, fanned out by candidate index.
            let eval_span = obs::span("eval");
            let evals: Vec<ItemOutcome<HopEval>> = {
                let current = &current;
                let labels = &labels;
                let join_cols = &join_cols;
                let eval_one = |i: usize| -> HopEval {
                    let c = &cands[i];
                    let entry = &current[c.entry];
                    let seed = hop_seed(cfg.seed, entry.path.hops(), &c.hop);
                    // Cached and uncached joins are bit-identical by
                    // construction (the uncached path builds a transient
                    // index and runs the same indexed kernel).
                    let joined = if cfg.cache {
                        ctx.lake_cache().left_join_normalized(
                            &entry.table,
                            c.right,
                            &c.left_key,
                            &c.hop.to_column,
                            &c.next_name,
                            seed,
                        )
                    } else {
                        left_join_normalized(
                            &entry.table,
                            c.right,
                            &c.left_key,
                            &c.hop.to_column,
                            &c.next_name,
                            seed,
                        )
                    };
                    let out = match joined {
                        Ok(out) => out,
                        // A cooperative stop inside the join (or a cache
                        // build denied by an interrupt) is not a hop
                        // failure: the candidate was simply never evaluated.
                        Err(e) => {
                            return match e.interrupt() {
                                Some(reason) => HopEval::Interrupted(reason),
                                None => HopEval::Failed(e.to_string()),
                            }
                        }
                    };
                    // Prune: join produced no matches at all. An empty base
                    // yields `match_ratio() == None` (vacuous) and is *not*
                    // misreported as unjoinable.
                    if out.matched == 0 && out.match_ratio().is_some() {
                        return HopEval::Unjoinable;
                    }
                    // Prune: data quality below τ.
                    let new_cols: Vec<&str> =
                        out.right_columns.iter().map(String::as_str).collect();
                    let quality = match completeness(&out.table, &new_cols) {
                        Ok(q) => q,
                        Err(e) => return HopEval::Failed(e.to_string()),
                    };
                    if quality < cfg.tau {
                        return HopEval::LowQuality;
                    }

                    // ---- Relevance analysis (select-κ-best). ----
                    // Join columns of the DRG never become feature
                    // candidates (see join_cols above).
                    let next_prefix = format!("{}.", c.next_name);
                    let candidate_names: Vec<String> = out
                        .right_columns
                        .iter()
                        .filter(|qualified| {
                            let original =
                                qualified.strip_prefix(&next_prefix).unwrap_or(qualified);
                            !join_cols.contains(&(c.next_name.clone(), original.to_string()))
                        })
                        .cloned()
                        .collect();
                    let mut candidate_data: Vec<Vec<f64>> =
                        Vec::with_capacity(candidate_names.len());
                    for name in &candidate_names {
                        match out.table.column(name) {
                            Ok(col) => {
                                candidate_data.push(label_encode_column(col).to_f64_lossy())
                            }
                            Err(e) => return HopEval::Failed(e.to_string()),
                        }
                    }
                    let (relevant_idx, rel_scores): (Vec<usize>, Vec<f64>) = match cfg.relevance
                    {
                        Some(method) => {
                            let picked =
                                select_k_best(&candidate_data, labels, method, cfg.kappa, 0.0);
                            (
                                picked.iter().map(|s| s.index).collect(),
                                picked.iter().map(|s| s.score).collect(),
                            )
                        }
                        // Ablation: relevance off ⇒ every candidate passes
                        // through, no relevance score.
                        None => ((0..candidate_names.len()).collect(), Vec::new()),
                    };
                    let discretize_span = obs::span("discretize");
                    let codes: Vec<Discretized> = relevant_idx
                        .iter()
                        .map(|&i| discretize_equal_frequency(&candidate_data[i], DEFAULT_BINS))
                        .collect();
                    drop(discretize_span);
                    let relevant_names: Vec<String> = relevant_idx
                        .iter()
                        .map(|&i| candidate_names[i].clone())
                        .collect();
                    HopEval::Scored(ScoredHop {
                        table: out.table,
                        relevant_names,
                        rel_scores,
                        codes,
                    })
                };
                // Panic-isolating, interrupt-aware fan-out: a panicking
                // candidate becomes a structured `ItemOutcome::Panicked`
                // (the run completes), and once the control interrupts, the
                // remaining candidates come back `Skipped` without running.
                run_indexed_ctl(workers, cands.len(), Some(&ctl), eval_one)
            };
            drop(eval_span);

            // ---- Stage B (sequential, stateful): streaming redundancy
            // against R_sel, ranking, and counter merging — replayed in
            // candidate-index order, exactly as the sequential walk would.
            // Trace events are emitted only here, so the event log is
            // identical at any worker-thread count.
            let merge_span = obs::span("merge");
            let mut next_level: Vec<Frontier> = Vec::new();
            for (c, outcome) in cands.iter().zip(evals) {
                let eval = match outcome {
                    ItemOutcome::Done(eval) => eval,
                    // Never ran: the control interrupted before its turn.
                    // Counted with the budget-dropped candidates, exactly
                    // like candidates dropped at the level gate.
                    ItemOutcome::Skipped(reason) => {
                        n_budget += 1;
                        truncation
                            .get_or_insert(truncation_reason(reason, Phase::Evaluate));
                        continue;
                    }
                    // Ran and panicked: the panic was caught on the worker
                    // and lands here as a structured failure (item index +
                    // phase in the message, path identity from the
                    // candidate), via the same path as any other hop error.
                    ItemOutcome::Panicked(panic) => {
                        worker_panics += 1;
                        obs::event("worker_panic", || panic.to_string());
                        HopEval::Failed(panic.to_string())
                    }
                };
                match eval {
                    HopEval::Interrupted(reason) => {
                        n_budget += 1;
                        truncation
                            .get_or_insert(truncation_reason(reason, Phase::Evaluate));
                    }
                    HopEval::Failed(error) => {
                        n_joins += 1;
                        obs::event("hop_failed", || {
                            format!(
                                "{} -> {} after [{}]: {error}",
                                c.hop.from_table,
                                c.hop.to_table,
                                current[c.entry].path
                            )
                        });
                        failures.push(PathFailure {
                            path: current[c.entry].path.clone(),
                            hop: c.hop.clone(),
                            error,
                        });
                    }
                    HopEval::Unjoinable => {
                        n_joins += 1;
                        obs::event("path_pruned", || {
                            format!(
                                "unjoinable: [{}] + {} -> {}",
                                current[c.entry].path, c.hop.from_table, c.hop.to_table
                            )
                        });
                        n_unjoinable += 1;
                    }
                    HopEval::LowQuality => {
                        n_joins += 1;
                        obs::event("path_pruned", || {
                            format!(
                                "below τ quality: [{}] + {} -> {}",
                                current[c.entry].path, c.hop.from_table, c.hop.to_table
                            )
                        });
                        n_quality += 1;
                    }
                    HopEval::Scored(sh) => {
                        n_joins += 1;
                        let entry = &current[c.entry];

                        // ---- Redundancy analysis (streaming, vs R_sel). ----
                        let (kept_local, red_scores): (Vec<usize>, Vec<f64>) =
                            match &redundancy_scorer {
                                Some(scorer) => {
                                    let cands2: Vec<(usize, &Discretized)> =
                                        sh.codes.iter().enumerate().collect();
                                    let already: Vec<&Discretized> =
                                        r_sel.iter().map(|(_, d)| d).collect();
                                    let kept = select_non_redundant(
                                        &cands2,
                                        &already,
                                        &label_codes,
                                        scorer,
                                    );
                                    (
                                        kept.iter().map(|s| s.index).collect(),
                                        kept.iter().map(|s| s.score).collect(),
                                    )
                                }
                                // Ablation: redundancy off ⇒ keep all
                                // relevant.
                                None => ((0..sh.codes.len()).collect(), Vec::new()),
                            };

                        // Update R_sel (Algorithm 1, line 18).
                        let mut new_features = Vec::with_capacity(kept_local.len());
                        for &li in &kept_local {
                            let name = sh.relevant_names[li].clone();
                            match r_sel.iter_mut().find(|(n, _)| *n == name) {
                                Some((_, d)) => *d = sh.codes[li].clone(),
                                None => r_sel.push((name.clone(), sh.codes[li].clone())),
                            }
                            if !selected_union.contains(&name) {
                                selected_union.push(name.clone());
                            }
                            new_features.push(name);
                        }

                        // ---- Ranking (Algorithm 2). ----
                        let hop_score = compute_score(&sh.rel_scores, &red_scores);
                        let path_score = accumulate(entry.score, hop_score);
                        let new_path = entry.path.extended(c.hop.clone());
                        let mut path_features = entry.features.clone();
                        path_features.extend(new_features);
                        ranked.push(RankedPath {
                            path: new_path.clone(),
                            score: path_score,
                            features: path_features.clone(),
                        });
                        // Even a join contributing nothing stays in the
                        // queue: it may be the gateway to a deeper, relevant
                        // table (streaming-FS requirement, §V-A).
                        next_level.push(Frontier {
                            node: c.next,
                            path: new_path,
                            table: sh.table,
                            score: path_score,
                            features: path_features,
                        });
                    }
                }
            }
            drop(merge_span);
            if truncation.is_some() {
                break;
            }
            if let Some(beam) = cfg.beam_width {
                next_level.sort_by(|a, b| {
                    rank_key(b.score)
                        .total_cmp(&rank_key(a.score))
                        .then_with(|| a.path.to_string().cmp(&b.path.to_string()))
                });
                next_level.truncate(beam);
            }
            current = next_level;
        }

        let rank_span = obs::span("rank");
        ranked.sort_by(|a, b| {
            rank_key(b.score)
                .total_cmp(&rank_key(a.score))
                .then_with(|| a.path.len().cmp(&b.path.len()))
                .then_with(|| a.path.to_string().cmp(&b.path.to_string()))
        });
        drop(rank_span);

        match truncation {
            Some(TruncationReason::MaxJoins) => {
                obs::event("truncated", || "max_joins cap reached".to_string());
            }
            Some(TruncationReason::DeadlineExceeded { phase }) => {
                obs::event("truncated", || {
                    format!("time budget exhausted during {phase}")
                });
            }
            Some(TruncationReason::Cancelled) => {
                obs::event("truncated", || "run cancelled".to_string());
            }
            None => {}
        }
        // Emit the run totals once, from the same values the result (and
        // hence the health report) carries — so trace counters and report
        // numbers agree by construction.
        obs::add("discover.joins_evaluated", n_joins as u64);
        obs::add("discover.pruned_unjoinable", n_unjoinable as u64);
        obs::add("discover.pruned_quality", n_quality as u64);
        obs::add("discover.pruned_similarity", n_similarity as u64);
        obs::add("discover.pruned_budget", n_budget as u64);
        obs::add("discover.paths_ranked", ranked.len() as u64);
        obs::add("discover.features_selected", selected_union.len() as u64);
        obs::add("discover.hop_failures", failures.len() as u64);
        obs::add("discover.levels", n_levels as u64);
        // Resilience counters stay absent from healthy runs (`obs::add`
        // drops zero counts), so counter-set invariance across thread
        // counts and cache modes is untouched when nothing fires.
        obs::add("resilience.worker_panics", worker_panics as u64);
        obs::add("resilience.degradations", degradations.len() as u64);
        let cancel_latency = ctl.cancel_latency();
        if let Some(latency) = cancel_latency {
            obs::record_secs("resilience.cancel_latency_secs", latency.as_secs_f64());
        }

        Ok(DiscoveryResult {
            ranked,
            n_joins_evaluated: n_joins,
            n_pruned_unjoinable: n_unjoinable,
            n_pruned_quality: n_quality,
            n_pruned_similarity: n_similarity,
            n_pruned_budget: n_budget,
            truncated: truncation.is_some(),
            truncation,
            failures,
            elapsed: t0.elapsed(),
            selected_features: selected_union,
            threads_used: workers,
            cache: cache_report(&cache_recorder),
            trace: None,
            resilience: ResilienceStats { degradations, worker_panics, cancel_latency },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    /// base(k, weak, target) — s1(k, strong_feature, k2) — s2(k2, stronger).
    fn chain_ctx(n: usize) -> SearchContext {
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "weak",
                    Column::from_floats(
                        (0..n).map(|i| Some(((i * 37) % 11) as f64)).collect::<Vec<_>>(),
                    ),
                ),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(1000 + i)).collect::<Vec<_>>())),
                (
                    "mid",
                    Column::from_floats(
                        labels
                            .iter()
                            .enumerate()
                            .map(|(i, &l)| Some(l as f64 + ((i * 13) % 7) as f64 * 0.3))
                            .collect::<Vec<_>>(),
                    ),
                ),
            ],
        )
        .unwrap();
        let s2 = Table::new(
            "s2",
            vec![
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(1000 + i)).collect::<Vec<_>>())),
                (
                    "strong",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        SearchContext::from_kfk(
            vec![base, s1, s2],
            &[
                ("base".into(), "k".into(), "s1".into(), "k".into()),
                ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ],
            "base",
            "target",
        )
        .unwrap()
    }

    #[test]
    fn discovers_transitive_path() {
        let ctx = chain_ctx(200);
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(result.ranked.len(), 2); // base→s1 and base→s1→s2
        // The two-hop path reaching the perfect feature must rank first.
        let best = &result.ranked[0];
        assert_eq!(best.path.len(), 2);
        assert_eq!(best.path.last_table(), Some("s2"));
        assert!(best.features.iter().any(|f| f == "s2.strong"));
    }

    #[test]
    fn selected_features_include_deep_signal() {
        let ctx = chain_ctx(200);
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        assert!(result.selected_features.iter().any(|f| f == "s2.strong"));
    }

    #[test]
    fn quality_pruning_counts() {
        // s1's keys do not match the base at all ⇒ unjoinable pruning.
        let n = 100;
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((5000..5000 + n).map(Some).collect::<Vec<_>>())),
                ("f", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, s1],
            &[("base".into(), "k".into(), "s1".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(result.ranked.len(), 0);
        assert_eq!(result.n_pruned_unjoinable, 1);
    }

    #[test]
    fn tau_pruning_kicks_in() {
        // Half the keys match ⇒ completeness ≈ 0.5 < τ=0.65 ⇒ pruned.
        let n = 100i64;
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints((0..n).map(|i| Some(i % 2)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n / 2).map(Some).collect::<Vec<_>>())),
                ("f", Column::from_floats((0..n / 2).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, s1],
            &[("base".into(), "k".into(), "s1".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        let strict = AutoFeat::new(AutoFeatConfig::default().with_tau(0.65));
        let r = strict.discover(&ctx).unwrap();
        assert_eq!(r.n_pruned_quality, 1);
        assert!(r.ranked.is_empty());
        // With τ = 0.3 the same join survives.
        let lax = AutoFeat::new(AutoFeatConfig::default().with_tau(0.3));
        let r2 = lax.discover(&ctx).unwrap();
        assert_eq!(r2.n_pruned_quality, 0);
        assert_eq!(r2.ranked.len(), 1);
    }

    #[test]
    fn kappa_caps_selected_features() {
        let ctx = chain_ctx(150);
        let cfg = AutoFeatConfig::default().with_kappa(1);
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        for rp in &result.ranked {
            // Each hop can add at most κ=1 feature, so a path of length L
            // has at most L features.
            assert!(rp.features.len() <= rp.path.len());
        }
    }

    #[test]
    fn max_joins_truncates() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig { max_joins: 1, ..Default::default() };
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(result.truncated);
        assert_eq!(result.truncation, Some(TruncationReason::MaxJoins));
        assert_eq!(result.n_joins_evaluated, 1);
    }

    #[test]
    fn zero_time_budget_truncates_with_deadline_reason() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig::default().with_time_budget(Duration::ZERO);
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(result.truncated);
        assert!(
            matches!(result.truncation, Some(TruncationReason::DeadlineExceeded { .. })),
            "{:?}",
            result.truncation
        );
        assert_eq!(result.n_joins_evaluated, 0);
        assert!(result.ranked.is_empty());
    }

    #[test]
    fn generous_time_budget_does_not_truncate() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig::default().with_time_budget(Duration::from_secs(600));
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(!result.truncated);
        assert_eq!(result.truncation, None);
        assert!(!result.ranked.is_empty());
    }

    #[test]
    fn pre_cancelled_context_returns_ranked_partial_with_reason() {
        let ctx = chain_ctx(100);
        ctx.cancel();
        let result = AutoFeat::paper().discover(&ctx).unwrap();
        assert!(result.truncated);
        assert_eq!(result.truncation, Some(TruncationReason::Cancelled));
        assert!(result.ranked.is_empty());
        assert!(
            result.resilience.cancel_latency.is_some(),
            "cancelled runs report their cancel latency"
        );
        // The context control is reusable after a reset: the next run is
        // healthy and bit-identical to an never-cancelled one.
        ctx.control().reset();
        let again = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(again.truncation, None);
        assert!(!again.ranked.is_empty());
        assert_eq!(again.resilience, ResilienceStats::default());
    }

    #[test]
    fn context_deadline_composes_with_run_budget() {
        // An expired deadline armed on the *context* control truncates a run
        // whose own time budget is generous — the tighter deadline wins —
        // without mutating the run-scoped budget logic.
        let ctx = chain_ctx(100);
        ctx.control().arm_budget(Duration::ZERO);
        let cfg = AutoFeatConfig::default().with_time_budget(Duration::from_secs(600));
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(
            matches!(result.truncation, Some(TruncationReason::DeadlineExceeded { .. })),
            "{:?}",
            result.truncation
        );
        ctx.control().reset();
    }

    #[test]
    fn tight_budget_engages_sample_shrink_rung() {
        // Base bigger than the shrunken cap, budget below the rung-1
        // threshold: the ladder trades sample size for headroom and records
        // the rung on the result.
        let ctx = chain_ctx(400);
        let cfg = AutoFeatConfig::default().with_time_budget(Duration::from_millis(900));
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(
            result.resilience.degradations.contains(&"shrunk sample"),
            "{:?}",
            result.resilience.degradations
        );
        // Without a deadline the ladder never engages, whatever the knobs.
        let unbounded = AutoFeat::paper().discover(&ctx).unwrap();
        assert!(unbounded.resilience.degradations.is_empty());
    }

    #[test]
    fn injected_worker_panic_is_isolated_not_fatal() {
        // Unique table names: the runtime fault registry is process-global
        // and tests in this binary run concurrently.
        let n = 100usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "af_panic_base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let bad = Table::new(
            "af_panic_bad",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("f", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let good = Table::new(
            "af_panic_good",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, bad, good],
            &[
                ("af_panic_base".into(), "k".into(), "af_panic_bad".into(), "k".into()),
                ("af_panic_base".into(), "k".into(), "af_panic_good".into(), "k".into()),
            ],
            "af_panic_base",
            "target",
        )
        .unwrap();
        autofeat_data::faults::arm(
            "af_panic_bad",
            autofeat_data::faults::TableFaults { panic_on_row: Some(0), slow_join_ms: None },
        );

        // Uncached: the panic fires on the fan-out worker and is isolated
        // there — counted, structured, and the healthy path still ranks.
        let uncached = AutoFeat::new(AutoFeatConfig::default().with_cache(false))
            .discover(&ctx)
            .unwrap();
        assert_eq!(uncached.resilience.worker_panics, 1);
        assert_eq!(uncached.failures.len(), 1);
        assert_eq!(uncached.failures[0].hop.to_table, "af_panic_bad");
        assert!(
            uncached.failures[0].error.contains("injected fault"),
            "{}",
            uncached.failures[0].error
        );
        assert_eq!(uncached.ranked.len(), 1);
        assert_eq!(uncached.ranked[0].path.last_table(), Some("af_panic_good"));

        // Cached: the panic fires inside the cache's index build, is caught
        // there, and surfaces as a structured hop failure instead.
        let cached = AutoFeat::new(AutoFeatConfig::default().with_cache(true))
            .discover(&ctx)
            .unwrap();
        assert_eq!(cached.resilience.worker_panics, 0);
        assert_eq!(cached.failures.len(), 1);
        assert!(
            cached.failures[0].error.contains("panicked"),
            "{}",
            cached.failures[0].error
        );
        assert_eq!(cached.ranked.len(), 1);

        autofeat_data::faults::disarm("af_panic_bad");
        // With the fault gone the same context discovers both paths.
        let healed = AutoFeat::new(AutoFeatConfig::default().with_cache(true))
            .discover(&ctx)
            .unwrap();
        assert!(healed.failures.is_empty());
        assert_eq!(healed.ranked.len(), 2);
    }

    #[test]
    fn nan_scores_sort_last_not_panic() {
        // Regression: the ranked/beam sorts used
        // `partial_cmp().expect("finite scores")`, which panics on NaN.
        let mut scores = [f64::NAN, 0.2, f64::NAN, 1.5, -0.3];
        scores.sort_by(|a, b| rank_key(*b).total_cmp(&rank_key(*a)));
        assert_eq!(scores[0], 1.5);
        assert_eq!(scores[1], 0.2);
        assert_eq!(scores[2], -0.3);
        assert!(scores[3].is_nan() && scores[4].is_nan());
    }

    #[test]
    fn constant_feature_columns_never_panic() {
        // A neighbour whose only feature is constant yields NaN Spearman
        // relevance; discovery (with and without a beam) must complete and
        // never rank a NaN-scored path above a healthy one.
        let n = 120usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let flat = Table::new(
            "flat",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("c", Column::from_floats(vec![Some(7.0); n])),
            ],
        )
        .unwrap();
        let good = Table::new(
            "good",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, flat, good],
            &[
                ("base".into(), "k".into(), "flat".into(), "k".into()),
                ("base".into(), "k".into(), "good".into(), "k".into()),
            ],
            "base",
            "target",
        )
        .unwrap();
        for beam in [None, Some(1)] {
            let cfg = AutoFeatConfig { beam_width: beam, ..Default::default() };
            let r = AutoFeat::new(cfg).discover(&ctx).unwrap();
            assert!(!r.ranked.is_empty());
            // The healthy path must outrank (or displace) the constant one.
            assert_eq!(r.ranked[0].path.last_table(), Some("good"));
            assert!(r.selected_features.iter().any(|f| f == "good.signal"));
        }
    }

    #[test]
    fn broken_hop_is_isolated_not_fatal() {
        // The DRG claims `bad` joins on a column the table does not have;
        // evaluating that hop errors. Discovery must record the failure and
        // still rank the healthy neighbour.
        let n = 100usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let bad = Table::new(
            "bad",
            vec![("other", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>()))],
        )
        .unwrap();
        let good = Table::new(
            "good",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                (
                    "signal",
                    Column::from_floats(labels.iter().map(|&l| Some(l as f64)).collect::<Vec<_>>()),
                ),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, bad, good],
            &[
                // Edge references `bad.missing`, which does not exist.
                ("base".into(), "k".into(), "bad".into(), "missing".into()),
                ("base".into(), "k".into(), "good".into(), "k".into()),
            ],
            "base",
            "target",
        )
        .unwrap();
        let r = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].hop.to_table, "bad");
        assert!(r.failures[0].error.contains("missing"), "{}", r.failures[0].error);
        // The healthy path is unaffected.
        assert_eq!(r.ranked.len(), 1);
        assert_eq!(r.ranked[0].path.last_table(), Some("good"));
    }

    #[test]
    fn max_path_length_limits_depth() {
        let ctx = chain_ctx(100);
        let cfg = AutoFeatConfig { max_path_length: 1, ..Default::default() };
        let result = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(result.ranked.iter().all(|r| r.path.len() == 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let ctx = chain_ctx(120);
        let a = AutoFeat::paper().discover(&ctx).unwrap();
        let b = AutoFeat::paper().discover(&ctx).unwrap();
        assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    /// Assert two discovery results are bit-identical in everything except
    /// the informational `threads_used`/`elapsed` fields.
    fn assert_results_identical(a: &DiscoveryResult, b: &DiscoveryResult) {
        assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "path {}", x.path);
            assert_eq!(x.features, y.features);
        }
        assert_eq!(a.n_joins_evaluated, b.n_joins_evaluated);
        assert_eq!(a.n_pruned_unjoinable, b.n_pruned_unjoinable);
        assert_eq!(a.n_pruned_quality, b.n_pruned_quality);
        assert_eq!(a.n_pruned_similarity, b.n_pruned_similarity);
        assert_eq!(a.n_pruned_budget, b.n_pruned_budget);
        assert_eq!(a.truncation, b.truncation);
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.selected_features, b.selected_features);
        assert_eq!(a.resilience, b.resilience);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ctx = chain_ctx(160);
        let baseline = AutoFeat::new(AutoFeatConfig::default().with_threads(1))
            .discover(&ctx)
            .unwrap();
        assert_eq!(baseline.threads_used, 1);
        for threads in [2usize, 4, 8] {
            let r = AutoFeat::new(AutoFeatConfig::default().with_threads(threads))
                .discover(&ctx)
                .unwrap();
            assert_eq!(r.threads_used, threads);
            assert_results_identical(&baseline, &r);
        }
    }

    #[test]
    fn cached_and_uncached_discovery_identical() {
        let ctx = chain_ctx(160);
        let cached = AutoFeat::new(AutoFeatConfig::default().with_cache(true))
            .discover(&ctx)
            .unwrap();
        let uncached = AutoFeat::new(AutoFeatConfig::default().with_cache(false))
            .discover(&ctx)
            .unwrap();
        assert_results_identical(&cached, &uncached);
        assert!(cached.cache.is_some());
        assert!(uncached.cache.is_none());
    }

    #[test]
    fn repeat_run_reports_cache_hits_as_delta() {
        let ctx = chain_ctx(120);
        let engine = AutoFeat::paper();
        let first = engine.discover(&ctx).unwrap();
        let s1 = first.cache.expect("cache enabled by default");
        assert!(s1.misses > 0, "first run must build indexes");
        assert_eq!(s1.hits, 0, "nothing to hit on a cold cache");
        let second = engine.discover(&ctx).unwrap();
        let s2 = second.cache.expect("cache enabled by default");
        assert_eq!(s2.misses, 0, "second run must reuse every index");
        assert!(s2.hits > 0);
        assert_eq!(s2.entries, s1.entries, "occupancy unchanged");
        assert_results_identical(&first, &second);
    }

    /// Regression for the traversal-order coupling bug: with one shared RNG
    /// threaded through the BFS, an *unrelated* neighbour evaluated earlier
    /// consumed RNG draws and perturbed the representative picks — and
    /// hence the scores — of every later join. Per-hop seed derivation
    /// makes each path's picks a function of its own identity only.
    #[test]
    fn unrelated_table_does_not_perturb_other_paths() {
        let n = 120usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        // `dup` has 4 rows per key with *different* feature values, so its
        // hop score depends on which representative each key gets.
        let dup_keys: Vec<Option<i64>> = (0..(n * 4) as i64).map(|i| Some(i / 4)).collect();
        let dup_vals: Vec<Option<f64>> = (0..(n * 4) as i64)
            .map(|i| Some(((i * 31) % 97) as f64 + ((i / 4) % 2) as f64 * 50.0))
            .collect();
        let dup = Table::new(
            "dup",
            vec![
                ("k", Column::from_ints(dup_keys)),
                ("val", Column::from_floats(dup_vals)),
            ],
        )
        .unwrap();
        // `aaa` also has duplicated keys (so the old shared RNG would have
        // drawn for it) but contributes no features — only the join column.
        let aaa = Table::new(
            "aaa",
            vec![("k", Column::from_ints((0..(n * 3) as i64).map(|i| Some(i / 3)).collect::<Vec<_>>()))],
        )
        .unwrap();

        let without = SearchContext::from_kfk(
            vec![base.clone(), dup.clone()],
            &[("base".into(), "k".into(), "dup".into(), "k".into())],
            "base",
            "target",
        )
        .unwrap();
        // `aaa` sits *before* `dup` in table order, so its hop is evaluated
        // first within the level.
        let with = SearchContext::from_kfk(
            vec![base, aaa, dup],
            &[
                ("base".into(), "k".into(), "aaa".into(), "k".into()),
                ("base".into(), "k".into(), "dup".into(), "k".into()),
            ],
            "base",
            "target",
        )
        .unwrap();

        let cfg = AutoFeatConfig { sample_rows: None, ..Default::default() };
        let a = AutoFeat::new(cfg.clone()).discover(&without).unwrap();
        let b = AutoFeat::new(cfg).discover(&with).unwrap();
        let score_of = |r: &DiscoveryResult| {
            r.ranked
                .iter()
                .find(|p| p.path.last_table() == Some("dup"))
                .map(|p| p.score.to_bits())
                .expect("dup path ranked")
        };
        assert_eq!(
            score_of(&a),
            score_of(&b),
            "adding an unrelated table changed another path's score"
        );
    }

    #[test]
    fn beam_width_limits_frontier() {
        let ctx = chain_ctx(150);
        // Beam of 1: at most one frontier entry survives each level, so at
        // most one path per level is recorded.
        let cfg = AutoFeatConfig { beam_width: Some(1), ..Default::default() };
        let narrow = AutoFeat::new(cfg).discover(&ctx).unwrap();
        let wide = AutoFeat::paper().discover(&ctx).unwrap();
        assert!(narrow.ranked.len() <= wide.ranked.len());
        // The chain graph still reaches the deep signal through the beam.
        assert!(narrow.selected_features.iter().any(|f| f == "s2.strong"));
    }

    #[test]
    fn ablation_variants_run() {
        let ctx = chain_ctx(100);
        for (label, cfg) in AutoFeatConfig::ablation_variants() {
            let r = AutoFeat::new(cfg).discover(&ctx).unwrap();
            assert!(!r.ranked.is_empty(), "{label} produced no paths");
        }
    }

    #[test]
    fn redundant_deep_feature_not_selected_twice() {
        // s2.strong duplicates s1.mid? Here: make s2's feature an exact
        // copy of s1's; redundancy must drop it.
        let n = 150usize;
        let labels: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
        let feat: Vec<Option<f64>> = labels.iter().map(|&l| Some(l as f64)).collect();
        let base = Table::new(
            "base",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("target", Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>())),
            ],
        )
        .unwrap();
        let s1 = Table::new(
            "s1",
            vec![
                ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(900 + i)).collect::<Vec<_>>())),
                ("f", Column::from_floats(feat.clone())),
            ],
        )
        .unwrap();
        let s2 = Table::new(
            "s2",
            vec![
                ("k2", Column::from_ints((0..n as i64).map(|i| Some(900 + i)).collect::<Vec<_>>())),
                ("f_copy", Column::from_floats(feat)),
            ],
        )
        .unwrap();
        let ctx = SearchContext::from_kfk(
            vec![base, s1, s2],
            &[
                ("base".into(), "k".into(), "s1".into(), "k".into()),
                ("s1".into(), "k2".into(), "s2".into(), "k2".into()),
            ],
            "base",
            "target",
        )
        .unwrap();
        // CMIM penalizes the *worst-case* overlap, so an exact duplicate is
        // always dropped. (MRMR averages over |S|, which dilutes the
        // duplicate penalty once unrelated features are in R_sel — that is
        // faithful to the published criterion, so we assert the stricter
        // behaviour on CMIM.)
        let cfg = crate::config::AutoFeatConfig {
            redundancy: Some(autofeat_metrics::redundancy::RedundancyMethod::Cmim),
            ..Default::default()
        };
        let r = AutoFeat::new(cfg).discover(&ctx).unwrap();
        assert!(r.selected_features.iter().any(|f| f == "s1.f"));
        assert!(
            !r.selected_features.iter().any(|f| f == "s2.f_copy"),
            "exact duplicate of an already-selected feature must be dropped: {:?}",
            r.selected_features
        );
    }
}
