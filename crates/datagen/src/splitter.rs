//! The snowflake splitter: carve a ground-truth wide table into a base
//! table plus multi-hop satellite tables with known KFK edges — the paper's
//! *benchmark setting* ("we design a technique to divide a dataset into
//! multiple small tables with known KFK constraints", §VII-A).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use autofeat_data::{Column, Table, Value};
use autofeat_graph::{Drg, DrgBuilder};

use crate::generator::GroundTruth;

/// A known KFK edge between two materialized tables. Both sides carry the
/// same column name (satellite keys are named `s{k}_id` on both ends), which
/// is what the MAB baseline's same-name join restriction keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KfkEdge {
    /// Parent (FK-holding) table.
    pub parent_table: String,
    /// FK column in the parent.
    pub parent_column: String,
    /// Child (PK-holding) table.
    pub child_table: String,
    /// PK column in the child.
    pub child_column: String,
}

/// Snowflake-splitting configuration.
#[derive(Debug, Clone)]
pub struct SnowflakeConfig {
    /// Number of satellite tables.
    pub n_satellites: usize,
    /// Maximum children per table in the join tree (1 ⇒ a deep chain).
    pub max_branching: usize,
    /// Number of (weakest) features kept in the base table.
    pub base_features: usize,
    /// Plant the strongest informative features in the deepest satellites,
    /// so only transitive exploration finds them.
    pub deep_signal: bool,
    /// Fraction of satellite rows duplicated with jitter (creates 1:n join
    /// cardinality, exercising normalization).
    pub duplicate_frac: f64,
    /// Fraction of satellite rows dropped (creates unmatched FKs ⇒ nulls,
    /// exercising the τ pruning rule).
    pub missing_key_frac: f64,
    /// Fraction of satellite *feature cells* blanked to null (exercises
    /// imputation, §IV-C: real lakes are incomplete inside tables too, not
    /// only at the join keys).
    pub feature_null_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SnowflakeConfig {
    fn default() -> Self {
        SnowflakeConfig {
            n_satellites: 5,
            max_branching: 2,
            base_features: 2,
            deep_signal: true,
            duplicate_frac: 0.05,
            missing_key_frac: 0.02,
            feature_null_frac: 0.02,
            seed: 11,
        }
    }
}

/// A materialized snowflake schema.
#[derive(Debug, Clone)]
pub struct Snowflake {
    /// The base table (holds the label and the weakest features).
    pub base: Table,
    /// Satellite tables.
    pub satellites: Vec<Table>,
    /// The known KFK edges.
    pub kfk: Vec<KfkEdge>,
    /// Label column name (in the base table).
    pub label: String,
    /// Depth of each table in the join tree (base = 0).
    pub depth: HashMap<String, usize>,
    /// Which feature columns ended up in which table.
    pub placement: HashMap<String, String>,
}

impl Snowflake {
    /// All tables, base first.
    pub fn all_tables(&self) -> Vec<&Table> {
        std::iter::once(&self.base).chain(self.satellites.iter()).collect()
    }

    /// Build the benchmark-setting DRG: KFK edges only, weight 1.
    pub fn build_drg(&self) -> Drg {
        let mut b = DrgBuilder::new();
        b.add_table(self.base.name());
        for t in &self.satellites {
            b.add_table(t.name());
        }
        for e in &self.kfk {
            b.add_kfk(&e.parent_table, &e.parent_column, &e.child_table, &e.child_column);
        }
        b.build()
    }

    /// Maximum table depth (the number of hops needed to reach the deepest
    /// satellite).
    pub fn max_depth(&self) -> usize {
        self.depth.values().copied().max().unwrap_or(0)
    }
}

/// Split a ground-truth wide table into a snowflake.
pub fn split(gt: &GroundTruth, config: &SnowflakeConfig) -> Snowflake {
    assert!(config.n_satellites >= 1, "need at least one satellite");
    assert!(config.max_branching >= 1, "branching must be >= 1");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = gt.table.n_rows();

    // ---- 1. Order features from weakest to strongest. ----
    // Noise first, then categoricals, then redundant, then informative from
    // weakest (highest index) to strongest (inf_0).
    let mut ordered: Vec<String> = Vec::new();
    ordered.extend(gt.noise.iter().cloned());
    ordered.extend(gt.categorical.iter().cloned());
    ordered.extend(gt.redundant.iter().cloned());
    ordered.extend(gt.informative.iter().rev().cloned());
    if !config.deep_signal {
        // Scatter instead: deterministic shuffle.
        for i in (1..ordered.len()).rev() {
            let j = rng.random_range(0..=i);
            ordered.swap(i, j);
        }
    }

    // ---- 2. Base features = the weakest few. ----
    let n_base = config.base_features.min(ordered.len());
    let base_feats: Vec<String> = ordered[..n_base].to_vec();
    let rest: Vec<String> = ordered[n_base..].to_vec();

    // ---- 3. Join-tree structure over satellites. ----
    // parent[k] = None ⇒ base; Some(j) ⇒ satellite j (j < k).
    // Breadth-first attachment: each satellite attaches to the shallowest
    // table with spare branching capacity (base first). `max_branching = m`
    // therefore yields a star schema; `max_branching = 1` a chain.
    let m = config.n_satellites;
    let mut parent: Vec<Option<usize>> = Vec::with_capacity(m);
    let mut depth_of: Vec<usize> = Vec::with_capacity(m);
    let mut child_count_base = 0usize;
    let mut child_count: Vec<usize> = vec![0; m];
    for k in 0..m {
        let choice = if child_count_base < config.max_branching {
            None
        } else {
            (0..k)
                .filter(|&j| child_count[j] < config.max_branching)
                .min_by_key(|&j| (depth_of[j], j))
        };
        match choice {
            None => child_count_base += 1,
            Some(j) => child_count[j] += 1,
        }
        depth_of.push(match choice {
            None => 1,
            Some(j) => depth_of[j] + 1,
        });
        parent.push(choice);
    }

    // ---- 4. Assign features to satellites: shallow get the weak ones. ----
    // Satellites sorted by depth; features dealt in order (weak → strong).
    let mut order_by_depth: Vec<usize> = (0..m).collect();
    order_by_depth.sort_by_key(|&k| depth_of[k]);
    let mut sat_feats: Vec<Vec<String>> = vec![Vec::new(); m];
    if !rest.is_empty() {
        let per = rest.len().div_ceil(m).max(1);
        let chunks: Vec<&[String]> = rest.chunks(per).collect();
        // Deal chunks so the strongest (last) chunk lands on the deepest
        // table; when there are fewer chunks than tables the shallowest
        // tables stay featureless (pure link tables).
        let offset = m - chunks.len();
        for (slot, chunk) in chunks.into_iter().enumerate() {
            let k = order_by_depth[offset + slot];
            sat_feats[k].extend(chunk.iter().cloned());
        }
    }

    // ---- 5. Key spaces: disjoint ranges + per-satellite permutation. ----
    // key_of[k][i] = key value of ground row i in satellite k.
    let mut key_of: Vec<Vec<i64>> = Vec::with_capacity(m);
    for k in 0..m {
        let base_offset = ((k + 1) * n * 2) as i64;
        let mut perm: Vec<i64> = (0..n as i64).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        key_of.push(perm.into_iter().map(|p| base_offset + p).collect());
    }

    let children_of = |k: Option<usize>| -> Vec<usize> {
        (0..m).filter(|&c| parent[c] == k).collect()
    };

    // ---- 6. Materialize satellites. ----
    let mut satellites = Vec::with_capacity(m);
    let mut kfk = Vec::new();
    let mut placement: HashMap<String, String> = HashMap::new();
    for k in 0..m {
        let name = format!("s{k}");
        // Row order: shuffled ground rows, some dropped, some duplicated.
        let mut rows: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            rows.swap(i, j);
        }
        let mut kept: Vec<usize> = rows
            .into_iter()
            .filter(|_| rng.random_range(0.0..1.0) >= config.missing_key_frac)
            .collect();
        let dups: Vec<usize> = kept
            .iter()
            .copied()
            .filter(|_| rng.random_range(0.0..1.0) < config.duplicate_frac)
            .collect();
        kept.extend(dups);

        let mut cols: Vec<(String, Column)> = Vec::new();
        // PK column, named like the FK in the parent.
        let pk_name = format!("s{k}_id");
        cols.push((
            pk_name.clone(),
            Column::from_ints(kept.iter().map(|&i| Some(key_of[k][i])).collect::<Vec<_>>()),
        ));
        // FK columns to this satellite's children.
        for c in children_of(Some(k)) {
            cols.push((
                format!("s{c}_id"),
                Column::from_ints(kept.iter().map(|&i| Some(key_of[c][i])).collect::<Vec<_>>()),
            ));
        }
        // Feature columns, with a sprinkle of nulls.
        for f in &sat_feats[k] {
            let src = gt.table.column(f).expect("feature exists in ground truth");
            let mut col = Column::with_capacity(src.dtype(), kept.len());
            for &i in &kept {
                // Guard the draw: at frac 0 no RNG state is consumed, so
                // generation stays bit-identical to a null-free config.
                if config.feature_null_frac > 0.0
                    && rng.random_range(0.0..1.0) < config.feature_null_frac
                {
                    col.push_null();
                } else {
                    col.push(src.get(i)).expect("same dtype");
                }
            }
            cols.push((f.clone(), col));
            placement.insert(f.clone(), name.clone());
        }
        satellites.push(
            Table::new(name.clone(), cols).expect("unique column names").with_key_dicts(),
        );
        // KFK edge to the parent.
        let parent_name = match parent[k] {
            None => "base".to_string(),
            Some(j) => format!("s{j}"),
        };
        kfk.push(KfkEdge {
            parent_table: parent_name,
            parent_column: pk_name.clone(),
            child_table: format!("s{k}"),
            child_column: pk_name,
        });
    }

    // ---- 7. Materialize the base table. ----
    let mut cols: Vec<(String, Column)> = Vec::new();
    for c in children_of(None) {
        cols.push((
            format!("s{c}_id"),
            Column::from_ints((0..n).map(|i| Some(key_of[c][i])).collect::<Vec<_>>()),
        ));
    }
    for f in &base_feats {
        let src = gt.table.column(f).expect("feature exists");
        let mut col = Column::with_capacity(src.dtype(), n);
        for i in 0..n {
            col.push(src.get(i)).expect("same dtype");
        }
        cols.push((f.clone(), col));
        placement.insert(f.clone(), "base".to_string());
    }
    let label_src = gt.table.column(&gt.label).expect("label exists");
    let mut label_col = Column::with_capacity(label_src.dtype(), n);
    for i in 0..n {
        label_col.push(label_src.get(i)).expect("same dtype");
    }
    cols.push((gt.label.clone(), label_col));
    let base = Table::new("base", cols).expect("unique column names").with_key_dicts();

    let mut depth = HashMap::new();
    depth.insert("base".to_string(), 0usize);
    for (k, &d) in depth_of.iter().enumerate() {
        depth.insert(format!("s{k}"), d);
    }

    Snowflake { base, satellites, kfk, label: gt.label.clone(), depth, placement }
}

/// Quick validity check used in tests and examples: joining every KFK edge
/// back together must reconstruct each ground-truth row's feature values
/// for the rows whose keys survived.
pub fn verify_keys(sf: &Snowflake) -> bool {
    // Each satellite PK must be unique per ground row before duplication;
    // duplicates share values. Here we just sanity-check disjoint key ranges.
    let mut ranges: Vec<(i64, i64)> = Vec::new();
    for t in &sf.satellites {
        let pk = t.column_names()[0].to_string();
        let col = t.column(&pk).expect("pk exists");
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for i in 0..col.len() {
            if let Value::Int(v) = col.get(i) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        ranges.push((lo, hi));
    }
    ranges.sort_unstable();
    ranges.windows(2).all(|w| w[0].1 < w[1].0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GroundTruthConfig};

    fn snowflake() -> Snowflake {
        let gt = generate(&GroundTruthConfig { n_rows: 300, ..Default::default() });
        split(&gt, &SnowflakeConfig::default())
    }

    #[test]
    fn produces_requested_tables() {
        let sf = snowflake();
        assert_eq!(sf.satellites.len(), 5);
        assert_eq!(sf.kfk.len(), 5);
        assert_eq!(sf.all_tables().len(), 6);
    }

    #[test]
    fn base_keeps_label_and_weak_features() {
        let sf = snowflake();
        assert!(sf.base.has_column("target"));
        // Base features are the weakest (noise) ones under deep_signal.
        let base_feats: Vec<&String> = sf
            .placement
            .iter()
            .filter(|(_, t)| *t == "base")
            .map(|(f, _)| f)
            .collect();
        assert_eq!(base_feats.len(), 2);
        assert!(base_feats.iter().all(|f| f.starts_with("noise")));
    }

    #[test]
    fn strongest_feature_is_deepest() {
        let sf = snowflake();
        let inf0_table = sf.placement.get("inf_0").expect("inf_0 placed");
        let inf0_depth = sf.depth[inf0_table];
        let max_depth = sf.max_depth();
        assert_eq!(
            inf0_depth, max_depth,
            "deep_signal should plant inf_0 at depth {max_depth}, got {inf0_depth}"
        );
        assert!(max_depth >= 2, "default config should create multi-hop paths");
    }

    #[test]
    fn key_ranges_are_disjoint() {
        assert!(verify_keys(&snowflake()));
    }

    #[test]
    fn kfk_columns_share_names_across_sides() {
        let sf = snowflake();
        for e in &sf.kfk {
            assert_eq!(e.parent_column, e.child_column);
        }
    }

    #[test]
    fn drg_matches_schema() {
        let sf = snowflake();
        let g = sf.build_drg();
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(g.n_edges(), 5);
        assert!(g.node("base").is_some());
    }

    #[test]
    fn duplication_creates_multi_rows() {
        let gt = generate(&GroundTruthConfig { n_rows: 400, ..Default::default() });
        let sf = split(
            &gt,
            &SnowflakeConfig { duplicate_frac: 0.5, missing_key_frac: 0.0, ..Default::default() },
        );
        let s0 = &sf.satellites[0];
        assert!(s0.n_rows() > 400, "expected duplicated rows, got {}", s0.n_rows());
    }

    #[test]
    fn feature_nulls_are_injected_at_the_configured_rate() {
        let gt = generate(&GroundTruthConfig { n_rows: 500, ..Default::default() });
        let sf = split(
            &gt,
            &SnowflakeConfig {
                feature_null_frac: 0.2,
                missing_key_frac: 0.0,
                duplicate_frac: 0.0,
                ..Default::default()
            },
        );
        // Keys stay null-free; feature columns carry ≈ 20% nulls.
        let mut feature_cells = 0usize;
        let mut feature_nulls = 0usize;
        for t in &sf.satellites {
            for i in 0..t.n_cols() {
                let name = &t.field_at(i).name;
                let col = t.column_at(i);
                if name.ends_with("_id") {
                    assert_eq!(col.null_count(), 0, "key {name} must stay complete");
                } else {
                    feature_cells += col.len();
                    feature_nulls += col.null_count();
                }
            }
        }
        let ratio = feature_nulls as f64 / feature_cells as f64;
        assert!((0.12..0.28).contains(&ratio), "null ratio {ratio}");
    }

    #[test]
    fn zero_feature_null_frac_is_clean() {
        let gt = generate(&GroundTruthConfig { n_rows: 200, ..Default::default() });
        let sf = split(
            &gt,
            &SnowflakeConfig { feature_null_frac: 0.0, ..Default::default() },
        );
        for t in &sf.satellites {
            for i in 0..t.n_cols() {
                assert_eq!(t.column_at(i).null_count(), 0);
            }
        }
    }

    #[test]
    fn missing_keys_shrink_satellites() {
        let gt = generate(&GroundTruthConfig { n_rows: 400, ..Default::default() });
        let sf = split(
            &gt,
            &SnowflakeConfig { duplicate_frac: 0.0, missing_key_frac: 0.3, ..Default::default() },
        );
        assert!(sf.satellites[0].n_rows() < 350);
    }

    #[test]
    fn chain_topology_with_branching_one() {
        let gt = generate(&GroundTruthConfig { n_rows: 100, ..Default::default() });
        let sf = split(
            &gt,
            &SnowflakeConfig { n_satellites: 4, max_branching: 1, ..Default::default() },
        );
        assert_eq!(sf.max_depth(), 4, "branching 1 must produce a chain");
    }

    #[test]
    fn every_feature_is_placed_exactly_once() {
        let gt = generate(&GroundTruthConfig { n_rows: 100, ..Default::default() });
        let sf = split(&gt, &SnowflakeConfig::default());
        let n_feats = gt.feature_names().len();
        assert_eq!(sf.placement.len(), n_feats);
        // No feature column appears in two tables.
        for f in gt.feature_names() {
            let owners: usize = sf
                .all_tables()
                .iter()
                .filter(|t| t.has_column(f))
                .count();
            assert_eq!(owners, 1, "feature {f} appears in {owners} tables");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gt = generate(&GroundTruthConfig { n_rows: 150, ..Default::default() });
        let a = split(&gt, &SnowflakeConfig::default());
        let b = split(&gt, &SnowflakeConfig::default());
        assert_eq!(a.base, b.base);
        assert_eq!(a.satellites, b.satellites);
    }
}
