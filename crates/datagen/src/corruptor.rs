//! Deterministic fault injection for robustness testing.
//!
//! Real data lakes fail in mundane ways: exports truncated mid-row, ragged
//! lines, empty files, columns that are entirely null, NaN-laden floats,
//! foreign keys pointing nowhere, copy-pasted headers. This module injects
//! exactly those faults into serialized CSV tables — deterministically, from
//! a seed — so the fail-soft ingestion ([`autofeat_data::csv`]) and the
//! per-path error isolation of discovery can be tested against a lake that
//! is broken in *known* ways with *known* accounting.
//!
//! All faults operate on CSV **text** (the on-disk representation the
//! lenient reader actually faces). Field splitting is plain `,`-based, which
//! is sufficient for the numeric tables the generator emits.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One kind of lake corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Chop the file mid-row: the last surviving data line is cut in half
    /// (mid-cell), simulating a truncated export.
    TruncatedRows,
    /// Make a fraction of data rows ragged: some lose their last field,
    /// some gain a spurious extra field.
    RaggedRows,
    /// Keep the header but drop every data row (a zero-row table).
    EmptyTable,
    /// Blank every value of one (non-first) column.
    AllNullColumn,
    /// Replace a fraction of one numeric column's values with `NaN`.
    NanFloats,
    /// Shift every value of the first `*_id` column far out of its domain,
    /// so joins through it find no matches.
    DanglingKeys,
    /// Overwrite the second header field with a copy of the first.
    DuplicateHeader,
}

impl FaultKind {
    /// Every fault kind, for exhaustive harness sweeps.
    pub fn all() -> Vec<FaultKind> {
        vec![
            FaultKind::TruncatedRows,
            FaultKind::RaggedRows,
            FaultKind::EmptyTable,
            FaultKind::AllNullColumn,
            FaultKind::NanFloats,
            FaultKind::DanglingKeys,
            FaultKind::DuplicateHeader,
        ]
    }
}

/// A *runtime* fault kind: unlike [`FaultKind`], these do not corrupt CSV
/// text — they arm the process-wide fault registry
/// ([`autofeat_data::faults`]) so the join kernel misbehaves when it touches
/// the planned table. Deliberately kept out of [`FaultKind::all`]: text
/// corruption sweeps and runtime-fault drills are separate harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeFaultKind {
    /// Panic while probing a specific row of the table during a join —
    /// exercises worker panic isolation.
    PanicOnRow,
    /// Sleep this many milliseconds inside each join against the table —
    /// exercises deadline truncation and cancel latency.
    SlowJoinMs,
}

/// One planned runtime fault: the table to sabotage, how, and the
/// seed-deterministic parameter (row index or delay in ms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeFault {
    /// Table name the fault targets.
    pub table: String,
    /// What goes wrong.
    pub kind: RuntimeFaultKind,
    /// Row index ([`RuntimeFaultKind::PanicOnRow`]) or milliseconds
    /// ([`RuntimeFaultKind::SlowJoinMs`]).
    pub value: u64,
}

impl RuntimeFault {
    /// Arm this fault in the process-wide registry. Call
    /// [`autofeat_data::faults::disarm`] (or `disarm_all`) to heal.
    pub fn arm(&self) {
        let faults = match self.kind {
            RuntimeFaultKind::PanicOnRow => autofeat_data::faults::TableFaults {
                panic_on_row: Some(self.value as usize),
                ..Default::default()
            },
            RuntimeFaultKind::SlowJoinMs => autofeat_data::faults::TableFaults {
                slow_join_ms: Some(self.value),
                ..Default::default()
            },
        };
        autofeat_data::faults::arm(&self.table, faults);
    }
}

/// A record of one injected fault: which table, what kind, and what exactly
/// was done — the ground truth a robustness test asserts accounting against.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// Table (file stem) the fault was injected into.
    pub table: String,
    /// What was injected.
    pub kind: FaultKind,
    /// Specifics (which column, how many rows, …).
    pub detail: String,
}

/// Seeded fault injector. Each [`inject`](FaultInjector::inject) call draws
/// from the injector's RNG, so a fixed seed and call sequence reproduces the
/// same corrupted lake byte for byte.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    /// Manifest of everything injected so far.
    pub manifest: Vec<InjectedFault>,
}

impl FaultInjector {
    /// Injector with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector { rng: StdRng::seed_from_u64(seed), manifest: Vec::new() }
    }

    /// Inject `kind` into the CSV text of table `name`, returning the
    /// corrupted text and recording the fault in the manifest.
    pub fn inject(&mut self, name: &str, csv: &str, kind: FaultKind) -> String {
        let mut lines: Vec<String> = csv.lines().map(String::from).collect();
        if lines.is_empty() {
            self.record(name, kind, "input empty; unchanged".into());
            return csv.to_string();
        }
        let header: Vec<String> = lines[0].split(',').map(String::from).collect();
        let detail;
        match kind {
            FaultKind::TruncatedRows => {
                // Keep the header plus roughly the first 70% of data rows,
                // then chop the final kept row in half.
                let n_data = lines.len() - 1;
                let keep = (n_data * 7 / 10).max(1).min(n_data);
                lines.truncate(1 + keep);
                let last = lines.len() - 1;
                let cut = lines[last].len() / 2;
                lines[last].truncate(cut);
                detail = format!("kept {keep}/{n_data} rows, cut last row at byte {cut}");
            }
            FaultKind::RaggedRows => {
                let n_data = lines.len() - 1;
                let mut n_short = 0usize;
                let mut n_long = 0usize;
                for line in lines.iter_mut().skip(1) {
                    if !self.rng.random_bool(0.2) {
                        continue;
                    }
                    if self.rng.random_bool(0.5) {
                        if let Some(pos) = line.rfind(',') {
                            line.truncate(pos);
                            n_short += 1;
                        }
                    } else {
                        line.push_str(",999");
                        n_long += 1;
                    }
                }
                detail = format!("{n_short} rows shortened, {n_long} lengthened of {n_data}");
            }
            FaultKind::EmptyTable => {
                lines.truncate(1);
                detail = "all data rows dropped (header kept)".into();
            }
            FaultKind::AllNullColumn => {
                let col = if header.len() > 1 {
                    1 + self.rng.random_range(0..header.len() - 1)
                } else {
                    0
                };
                for line in lines.iter_mut().skip(1) {
                    let mut fields: Vec<&str> = line.split(',').collect();
                    if col < fields.len() {
                        fields[col] = "";
                    }
                    *line = fields.join(",");
                }
                detail = format!("column `{}` blanked in every row", header[col]);
            }
            FaultKind::NanFloats => {
                // Prefer a column whose values contain a decimal point.
                let sample: Vec<&str> =
                    lines.get(1).map(|l| l.split(',').collect()).unwrap_or_default();
                let col = sample
                    .iter()
                    .position(|v| v.contains('.'))
                    .unwrap_or(header.len().saturating_sub(1));
                let mut n = 0usize;
                for line in lines.iter_mut().skip(1) {
                    if !self.rng.random_bool(0.3) {
                        continue;
                    }
                    let mut fields: Vec<&str> = line.split(',').collect();
                    if col < fields.len() {
                        fields[col] = "NaN";
                        n += 1;
                    }
                    *line = fields.join(",");
                }
                detail = format!("{n} values of column `{}` set to NaN", header[col]);
            }
            FaultKind::DanglingKeys => {
                let col = header
                    .iter()
                    .position(|h| h.ends_with("_id") || h == "id")
                    .unwrap_or(0);
                for line in lines.iter_mut().skip(1) {
                    let mut fields: Vec<String> =
                        line.split(',').map(String::from).collect();
                    if col < fields.len() {
                        if let Ok(v) = fields[col].parse::<i64>() {
                            fields[col] = (v + 10_000_000).to_string();
                        }
                    }
                    *line = fields.join(",");
                }
                detail = format!("key column `{}` shifted out of domain", header[col]);
            }
            FaultKind::DuplicateHeader => {
                let mut fields = header.clone();
                if fields.len() > 1 {
                    fields[1] = fields[0].clone();
                }
                lines[0] = fields.join(",");
                detail = format!("header field 2 overwritten with `{}`", header[0]);
            }
        }
        self.record(name, kind, detail);
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Plan a runtime fault against table `name` with `n_rows` rows. The
    /// parameter (panic row / delay) is drawn from the injector's RNG, so a
    /// fixed seed and call sequence plans the same faults every time. The
    /// fault is only *planned* here — call [`RuntimeFault::arm`] to activate.
    pub fn plan_runtime(
        &mut self,
        name: &str,
        kind: RuntimeFaultKind,
        n_rows: usize,
    ) -> RuntimeFault {
        let value = match kind {
            RuntimeFaultKind::PanicOnRow => self.rng.random_range(0..n_rows.max(1) as u64),
            RuntimeFaultKind::SlowJoinMs => self.rng.random_range(1..=5),
        };
        RuntimeFault { table: name.to_string(), kind, value }
    }

    fn record(&mut self, table: &str, kind: FaultKind, detail: String) {
        self.manifest.push(InjectedFault { table: table.to_string(), kind, detail });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "s1_id,f,g\n0,0.5,7\n1,1.5,8\n2,2.5,9\n3,3.5,10\n4,4.5,11\n";

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(seed);
            FaultKind::all()
                .into_iter()
                .map(|k| inj.inject("t", CSV, k))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        // RaggedRows / NanFloats draw from the RNG, so another seed differs
        // somewhere in the sweep.
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn truncated_rows_cut_mid_line() {
        let mut inj = FaultInjector::new(1);
        let out = inj.inject("t", CSV, FaultKind::TruncatedRows);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() < CSV.lines().count());
        // The last line is a fragment: fewer fields than the header.
        let last = lines.last().unwrap();
        assert!(last.split(',').count() < 3 || !last.ends_with(|c: char| c.is_ascii_digit()));
    }

    #[test]
    fn empty_table_keeps_header_only() {
        let mut inj = FaultInjector::new(1);
        let out = inj.inject("t", CSV, FaultKind::EmptyTable);
        assert_eq!(out, "s1_id,f,g\n");
    }

    #[test]
    fn all_null_column_blanks_one_column() {
        let mut inj = FaultInjector::new(1);
        let out = inj.inject("t", CSV, FaultKind::AllNullColumn);
        // Some column (not the first) is empty in every data row.
        let blanked: Vec<usize> = (1..3)
            .filter(|&c| {
                out.lines().skip(1).all(|l| {
                    l.split(',').nth(c).map(|v| v.is_empty()).unwrap_or(false)
                })
            })
            .collect();
        assert_eq!(blanked.len(), 1);
    }

    #[test]
    fn nan_floats_target_the_float_column() {
        let mut inj = FaultInjector::new(3);
        let out = inj.inject("t", CSV, FaultKind::NanFloats);
        for line in out.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            // NaN only ever lands in the `.`-containing column (index 1).
            assert_ne!(fields[0], "NaN");
            assert_ne!(fields[2], "NaN");
        }
        assert!(inj.manifest[0].detail.contains("`f`"));
    }

    #[test]
    fn dangling_keys_shift_the_id_column() {
        let mut inj = FaultInjector::new(1);
        let out = inj.inject("t", CSV, FaultKind::DanglingKeys);
        for line in out.lines().skip(1) {
            let id: i64 = line.split(',').next().unwrap().parse().unwrap();
            assert!(id >= 10_000_000);
        }
    }

    #[test]
    fn duplicate_header_copies_first_field() {
        let mut inj = FaultInjector::new(1);
        let out = inj.inject("t", CSV, FaultKind::DuplicateHeader);
        assert!(out.starts_with("s1_id,s1_id,g\n"));
    }

    #[test]
    fn runtime_plans_are_seed_deterministic_and_in_range() {
        let plan = |seed| {
            let mut inj = FaultInjector::new(seed);
            (
                inj.plan_runtime("t", RuntimeFaultKind::PanicOnRow, 50),
                inj.plan_runtime("t", RuntimeFaultKind::SlowJoinMs, 50),
            )
        };
        let (p, s) = plan(7);
        assert_eq!((p.clone(), s.clone()), plan(7));
        assert!(p.value < 50, "panic row inside the table: {}", p.value);
        assert!((1..=5).contains(&s.value), "delay in ms range: {}", s.value);
    }

    #[test]
    fn armed_runtime_fault_reaches_the_registry() {
        // Unique table name: the registry is process-global and tests run
        // in parallel.
        let f = RuntimeFault {
            table: "corruptor_rt_probe".into(),
            kind: RuntimeFaultKind::PanicOnRow,
            value: 3,
        };
        f.arm();
        let got = autofeat_data::faults::lookup("corruptor_rt_probe").expect("armed");
        assert_eq!(got.panic_on_row, Some(3));
        autofeat_data::faults::disarm("corruptor_rt_probe");
        assert!(autofeat_data::faults::lookup("corruptor_rt_probe").is_none());
    }

    #[test]
    fn manifest_records_every_injection() {
        let mut inj = FaultInjector::new(5);
        for k in FaultKind::all() {
            inj.inject("lake_table", CSV, k);
        }
        assert_eq!(inj.manifest.len(), FaultKind::all().len());
        assert!(inj.manifest.iter().all(|f| f.table == "lake_table"));
        assert!(inj.manifest.iter().all(|f| !f.detail.is_empty()));
    }
}
