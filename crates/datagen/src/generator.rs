//! Ground-truth wide-table generation with planted relevance/redundancy.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use autofeat_data::{Column, Table};

/// Configuration of the ground-truth generator.
#[derive(Debug, Clone)]
pub struct GroundTruthConfig {
    /// Number of rows.
    pub n_rows: usize,
    /// Features carrying class signal (class-conditional Gaussian means).
    pub n_informative: usize,
    /// Noisy linear images of informative features (redundant).
    pub n_redundant: usize,
    /// Independent noise features.
    pub n_noise: usize,
    /// Number of informative features additionally exposed as categorical
    /// (string) bins, exercising label encoding.
    pub n_categorical: usize,
    /// Class separation: distance between the class means, in σ units.
    /// Larger ⇒ easier task.
    pub class_sep: f64,
    /// Fraction of labels flipped at random (irreducible error).
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            n_rows: 1000,
            n_informative: 5,
            n_redundant: 3,
            n_noise: 8,
            n_categorical: 1,
            class_sep: 1.5,
            label_noise: 0.05,
            seed: 7,
        }
    }
}

/// A generated wide table plus its provenance (which features are which).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The wide table: `row_id`, features, and the `target` label column.
    pub table: Table,
    /// Names of the informative feature columns.
    pub informative: Vec<String>,
    /// Names of the redundant feature columns.
    pub redundant: Vec<String>,
    /// Names of the noise feature columns.
    pub noise: Vec<String>,
    /// Names of the categorical (string) feature columns.
    pub categorical: Vec<String>,
    /// Name of the label column (always `"target"`).
    pub label: String,
}

impl GroundTruth {
    /// All feature names (everything except `row_id` and the label).
    pub fn feature_names(&self) -> Vec<&str> {
        self.informative
            .iter()
            .chain(&self.redundant)
            .chain(&self.noise)
            .chain(&self.categorical)
            .map(String::as_str)
            .collect()
    }
}

/// Standard normal via Box-Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate a ground-truth wide table.
pub fn generate(config: &GroundTruthConfig) -> GroundTruth {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_rows;

    // Balanced labels, then noise-flipped.
    let mut labels: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
    // Shuffle label assignment so row order carries no signal.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        labels.swap(i, j);
    }
    let observed: Vec<i64> = labels
        .iter()
        .map(|&l| {
            if rng.random_range(0.0..1.0) < config.label_noise {
                1 - l
            } else {
                l
            }
        })
        .collect();

    let mut cols: Vec<(String, Column)> = Vec::new();
    cols.push((
        "row_id".to_string(),
        Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>()),
    ));

    let mut informative_names = Vec::new();
    let mut informative_data: Vec<Vec<f64>> = Vec::new();
    for j in 0..config.n_informative {
        // Per-feature decreasing signal strength so features are rankable.
        let sep = config.class_sep * (1.0 - 0.12 * j as f64).max(0.25);
        let data: Vec<f64> = labels
            .iter()
            .map(|&l| normal(&mut rng) + if l == 1 { sep } else { 0.0 })
            .collect();
        let name = format!("inf_{j}");
        cols.push((name.clone(), Column::from_floats(data.iter().map(|&v| Some(v)).collect::<Vec<_>>())));
        informative_names.push(name);
        informative_data.push(data);
    }

    let mut redundant_names = Vec::new();
    for j in 0..config.n_redundant {
        let src = &informative_data[j % informative_data.len().max(1)];
        let scale = 1.0 + 0.5 * (j as f64);
        let data: Vec<f64> = src
            .iter()
            .map(|&v| scale * v + 0.1 * normal(&mut rng))
            .collect();
        let name = format!("red_{j}");
        cols.push((name.clone(), Column::from_floats(data.into_iter().map(Some).collect::<Vec<_>>())));
        redundant_names.push(name);
    }

    let mut noise_names = Vec::new();
    for j in 0..config.n_noise {
        let data: Vec<Option<f64>> = (0..n).map(|_| Some(normal(&mut rng) * 2.0)).collect();
        let name = format!("noise_{j}");
        cols.push((name.clone(), Column::from_floats(data)));
        noise_names.push(name);
    }

    let mut categorical_names = Vec::new();
    for j in 0..config.n_categorical {
        let src = &informative_data[j % informative_data.len().max(1)];
        let data: Vec<Option<String>> = src
            .iter()
            .map(|&v| {
                let bin = if v < 0.0 {
                    "low"
                } else if v < config.class_sep {
                    "mid"
                } else {
                    "high"
                };
                Some(bin.to_string())
            })
            .collect();
        let name = format!("cat_{j}");
        cols.push((name.clone(), Column::from_strs(data)));
        categorical_names.push(name);
    }

    cols.push((
        "target".to_string(),
        Column::from_ints(observed.into_iter().map(Some).collect::<Vec<_>>()),
    ));

    let table = Table::new("ground_truth", cols).expect("generated names are unique");
    GroundTruth {
        table,
        informative: informative_names,
        redundant: redundant_names,
        noise: noise_names,
        categorical: categorical_names,
        label: "target".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::encode::to_matrix;
    use autofeat_metrics::relevance::{Relevance, Spearman};

    fn small() -> GroundTruth {
        generate(&GroundTruthConfig { n_rows: 500, ..Default::default() })
    }

    #[test]
    fn shape_matches_config() {
        let gt = small();
        // row_id + 5 inf + 3 red + 8 noise + 1 cat + target = 19
        assert_eq!(gt.table.n_cols(), 19);
        assert_eq!(gt.table.n_rows(), 500);
        assert_eq!(gt.feature_names().len(), 17);
    }

    #[test]
    fn labels_roughly_balanced() {
        let gt = small();
        let y = gt.table.column("target").unwrap();
        let pos: usize = (0..y.len()).filter(|&i| y.get_f64(i) == Some(1.0)).count();
        let frac = pos as f64 / y.len() as f64;
        assert!((0.4..0.6).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn informative_beats_noise_on_spearman() {
        let gt = small();
        let m = to_matrix(&gt.table, &["inf_0", "noise_0"], "target").unwrap();
        let s = Spearman;
        let inf = s.score(&m.cols[0], &m.labels);
        let noi = s.score(&m.cols[1], &m.labels);
        assert!(inf > 0.3, "informative Spearman {inf}");
        assert!(noi < 0.15, "noise Spearman {noi}");
    }

    #[test]
    fn redundant_tracks_its_source() {
        let gt = small();
        let m = to_matrix(&gt.table, &["inf_0", "red_0"], "target").unwrap();
        let r = autofeat_metrics::relevance::pearson_correlation(&m.cols[0], &m.cols[1]);
        assert!(r > 0.95, "redundant feature should correlate with source, r={r}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GroundTruthConfig::default());
        let b = generate(&GroundTruthConfig::default());
        assert_eq!(a.table, b.table);
        let c = generate(&GroundTruthConfig { seed: 99, ..Default::default() });
        assert_ne!(a.table, c.table);
    }

    #[test]
    fn categorical_column_is_string() {
        let gt = small();
        assert_eq!(
            gt.table.column("cat_0").unwrap().dtype(),
            autofeat_data::DType::Str
        );
    }

    #[test]
    fn zero_counts_are_legal() {
        let gt = generate(&GroundTruthConfig {
            n_rows: 50,
            n_informative: 1,
            n_redundant: 0,
            n_noise: 0,
            n_categorical: 0,
            ..Default::default()
        });
        assert_eq!(gt.table.n_cols(), 3); // row_id, inf_0, target
        assert!(gt.redundant.is_empty());
    }
}
