//! # autofeat-datagen
//!
//! Synthetic data-lake generation — the stand-in for the paper's
//! OpenML/Kaggle/UCI downloads (see DESIGN.md §2 for the substitution
//! rationale).
//!
//! Pipeline:
//!
//! 1. [`generator`] draws a ground-truth **wide table**: a binary label plus
//!    *informative* features (class-conditional Gaussians), *redundant*
//!    features (noisy linear images of informative ones), and pure *noise*
//!    features — so relevance and redundancy structure is known by
//!    construction.
//! 2. [`splitter`] carves the wide table into a **snowflake schema** (the
//!    paper's *benchmark setting*): a deliberately weak base table plus
//!    satellite tables connected by KFK edges, with the strongest features
//!    planted in deep (multi-hop) satellites, optional 1:n duplication
//!    (exercising join-cardinality normalization) and missing keys
//!    (exercising the τ pruning rule).
//! 3. [`lake`] corrupts a snowflake into the **data-lake setting**: KFK
//!    metadata is discarded and decoy columns with overlapping values are
//!    planted so that dataset discovery produces a dense multigraph with
//!    spurious edges.
//! 4. [`registry`] reproduces the *shape* of the paper's evaluation corpus:
//!    the 8 datasets of Table II and the 6 feature-selection-study datasets
//!    of §V, scaled to laptop-friendly sizes (documented per entry).
//! 5. [`corruptor`] deterministically injects *file-level* faults (truncated
//!    or ragged CSV rows, empty tables, all-null columns, NaN floats,
//!    dangling join keys, duplicate headers) into a serialized lake — the
//!    harness behind the fail-soft ingestion and discovery tests.

pub mod corruptor;
pub mod generator;
pub mod lake;
pub mod registry;
pub mod splitter;

pub use corruptor::{FaultInjector, FaultKind, InjectedFault, RuntimeFault, RuntimeFaultKind};
pub use generator::{GroundTruth, GroundTruthConfig};
pub use lake::{corrupt_to_lake, LakeConfig};
pub use registry::{selection_study_datasets, table2_datasets, DatasetSpec};
pub use splitter::{Snowflake, SnowflakeConfig};
