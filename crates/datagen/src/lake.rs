//! The data-lake corruption: strip KFK metadata and plant spurious
//! joinable columns, then let dataset discovery rebuild a dense multigraph
//! (the paper's *data-lake setting*, §VII-A).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use autofeat_data::{Column, Table, Value};
use autofeat_discovery::SchemaMatcher;
use autofeat_graph::Drg;

use crate::splitter::Snowflake;

/// Lake-corruption configuration.
#[derive(Debug, Clone)]
pub struct LakeConfig {
    /// Number of decoy columns planted across satellites. Each decoy copies
    /// values from some other table's key domain under a confusable name,
    /// creating a spurious join opportunity.
    pub n_decoys: usize,
    /// Fraction of a decoy's values drawn from the victim key domain (the
    /// rest is noise) — controls how convincing the spurious edge looks.
    pub decoy_overlap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LakeConfig {
    fn default() -> Self {
        LakeConfig { n_decoys: 3, decoy_overlap: 0.8, seed: 23 }
    }
}

/// A data lake: tables with no relationship metadata.
#[derive(Debug, Clone)]
pub struct Lake {
    /// All tables (base first).
    pub tables: Vec<Table>,
    /// Name of the base table.
    pub base_name: String,
    /// Label column in the base table.
    pub label: String,
}

impl Lake {
    /// Borrow all tables.
    pub fn table_refs(&self) -> Vec<&Table> {
        self.tables.iter().collect()
    }

    /// The base table.
    pub fn base(&self) -> &Table {
        self.tables
            .iter()
            .find(|t| t.name() == self.base_name)
            .expect("base table present")
    }

    /// Run dataset discovery over the lake to build the dense multigraph
    /// DRG (the label column is excluded from matching so no edge ever
    /// leaks the target).
    pub fn discover_drg(&self, matcher: &SchemaMatcher) -> Drg {
        // Hide the label column from the matcher.
        let base_wo_label = self.base().drop_columns(&[self.label.as_str()]);
        let mut refs: Vec<&Table> = Vec::with_capacity(self.tables.len());
        for t in &self.tables {
            if t.name() == self.base_name {
                refs.push(&base_wo_label);
            } else {
                refs.push(t);
            }
        }
        Drg::from_discovery(&refs, matcher)
    }
}

/// Strip a snowflake's KFK metadata and plant decoy columns.
pub fn corrupt_to_lake(sf: &Snowflake, config: &LakeConfig) -> Lake {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tables: Vec<Table> = sf.all_tables().into_iter().cloned().collect();

    let n_sats = sf.satellites.len();
    if n_sats >= 2 {
        for d in 0..config.n_decoys {
            // Victim: the key domain we imitate. Host: where the decoy goes.
            let victim = rng.random_range(0..n_sats);
            let mut host = rng.random_range(0..n_sats);
            if host == victim {
                host = (host + 1) % n_sats;
            }
            let victim_table = &tables[victim + 1]; // +1: base is tables[0]
            let pk_name = format!("s{victim}_id");
            let Ok(pk) = victim_table.column(&pk_name) else {
                continue;
            };
            let domain: Vec<i64> = (0..pk.len())
                .filter_map(|i| match pk.get(i) {
                    Value::Int(v) => Some(v),
                    _ => None,
                })
                .collect();
            if domain.is_empty() {
                continue;
            }
            let host_table = &tables[host + 1];
            let n = host_table.n_rows();
            let decoy: Vec<Option<i64>> = (0..n)
                .map(|_| {
                    if rng.random_range(0.0..1.0) < config.decoy_overlap {
                        Some(domain[rng.random_range(0..domain.len())])
                    } else {
                        Some(rng.random_range(0..i64::MAX / 2))
                    }
                })
                .collect();
            // Confusable name: shares the victim's vocabulary.
            let decoy_name = format!("s{victim}_id_ref{d}");
            if host_table.has_column(&decoy_name) {
                continue;
            }
            tables[host + 1] = host_table
                .with_column(decoy_name, Column::from_ints(decoy))
                .expect("fresh decoy name");
        }
    }

    Lake {
        tables,
        base_name: sf.base.name().to_string(),
        label: sf.label.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GroundTruthConfig};
    use crate::splitter::{split, SnowflakeConfig};

    fn lake() -> Lake {
        let gt = generate(&GroundTruthConfig { n_rows: 200, ..Default::default() });
        let sf = split(&gt, &SnowflakeConfig::default());
        corrupt_to_lake(&sf, &LakeConfig::default())
    }

    #[test]
    fn lake_has_all_tables() {
        let l = lake();
        assert_eq!(l.tables.len(), 6);
        assert_eq!(l.base().name(), "base");
    }

    #[test]
    fn decoys_were_planted() {
        let l = lake();
        let n_decoys: usize = l
            .tables
            .iter()
            .flat_map(|t| t.column_names().into_iter().map(String::from).collect::<Vec<_>>())
            .filter(|c| c.contains("_ref"))
            .count();
        assert!(n_decoys >= 1, "expected at least one decoy column");
    }

    #[test]
    fn discovery_finds_true_edges() {
        let l = lake();
        let drg = l.discover_drg(&SchemaMatcher::paper_default());
        assert_eq!(drg.n_nodes(), 6);
        // Every true KFK pair shares name + full value overlap ⇒ an edge
        // between base and each of its direct children must exist.
        let base = drg.node("base").unwrap();
        assert!(
            !drg.neighbours(base).is_empty(),
            "discovery must reconnect the base table"
        );
    }

    #[test]
    fn discovery_finds_spurious_edges_too() {
        let gt = generate(&GroundTruthConfig { n_rows: 200, ..Default::default() });
        let sf = split(&gt, &SnowflakeConfig::default());
        let kfk_edge_count = sf.kfk.len();
        let l = corrupt_to_lake(&sf, &LakeConfig { n_decoys: 6, ..Default::default() });
        let drg = l.discover_drg(&SchemaMatcher::paper_default());
        assert!(
            drg.n_edges() > kfk_edge_count,
            "lake DRG should be denser than the snowflake: {} vs {}",
            drg.n_edges(),
            kfk_edge_count
        );
    }

    #[test]
    fn label_never_appears_in_matches() {
        let l = lake();
        let drg = l.discover_drg(&SchemaMatcher::paper_default());
        for e in drg.edges() {
            assert_ne!(e.a_column, "target");
            assert_ne!(e.b_column, "target");
        }
    }

    #[test]
    fn zero_decoys_is_clean() {
        let gt = generate(&GroundTruthConfig { n_rows: 100, ..Default::default() });
        let sf = split(&gt, &SnowflakeConfig::default());
        let l = corrupt_to_lake(&sf, &LakeConfig { n_decoys: 0, ..Default::default() });
        let total_cols: usize = l.tables.iter().map(Table::n_cols).sum();
        let orig_cols: usize = sf.all_tables().iter().map(|t| t.n_cols()).sum();
        assert_eq!(total_cols, orig_cols);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = lake();
        let b = lake();
        for (x, y) in a.tables.iter().zip(&b.tables) {
            assert_eq!(x, y);
        }
    }
}
