//! The evaluation corpus: synthetic analogs of the paper's datasets.
//!
//! Table II lists eight OpenML/Kaggle datasets; we reproduce their *shape*
//! (row counts, joinable-table counts, feature counts) with the ground-truth
//! generator, scaling the largest row/feature counts down to laptop-friendly
//! sizes (the paper values are preserved in the spec for reporting). §V's
//! feature-selection study uses six single-table binary-classification
//! datasets with varying row/column ratios, reproduced likewise.

use crate::generator::{generate, GroundTruth, GroundTruthConfig};
use crate::lake::{corrupt_to_lake, Lake, LakeConfig};
use crate::splitter::{split, Snowflake, SnowflakeConfig};

/// A dataset entry of Table II, with both the paper's reported shape and
/// the scaled shape we generate.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Rows reported in Table II.
    pub paper_rows: usize,
    /// Joinable tables reported in Table II.
    pub paper_joinable_tables: usize,
    /// Total features reported in Table II.
    pub paper_features: usize,
    /// Best accuracy reported in Table II (OpenML leaderboard / ARDA).
    pub paper_best_accuracy: f64,
    /// Rows we generate (≤ paper_rows; large datasets scaled down).
    pub rows: usize,
    /// Total features we generate (label excluded).
    pub features: usize,
    /// Satellites in the snowflake (= paper joinable tables).
    pub n_satellites: usize,
    /// Join-tree branching; `usize::MAX`-like wide value ⇒ star schema.
    pub max_branching: usize,
    /// Task difficulty: class separation of the planted signal.
    pub class_sep: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    fn ground_truth_config(&self) -> GroundTruthConfig {
        let f = self.features;
        // Roughly 25% informative, 15% redundant, rest noise, 1 categorical.
        let n_informative = (f / 4).max(2);
        let n_redundant = (f * 3 / 20).max(1);
        let n_categorical = 1usize;
        let n_noise = f
            .saturating_sub(n_informative + n_redundant + n_categorical)
            .max(1);
        GroundTruthConfig {
            n_rows: self.rows,
            n_informative,
            n_redundant,
            n_noise,
            n_categorical,
            class_sep: self.class_sep,
            label_noise: 0.05,
            seed: self.seed,
        }
    }

    /// Generate the wide ground truth.
    pub fn build_ground_truth(&self) -> GroundTruth {
        generate(&self.ground_truth_config())
    }

    /// Generate the *benchmark setting* snowflake (known KFK edges).
    pub fn build_snowflake(&self) -> Snowflake {
        let gt = self.build_ground_truth();
        split(
            &gt,
            &SnowflakeConfig {
                n_satellites: self.n_satellites,
                max_branching: self.max_branching,
                base_features: 2,
                deep_signal: true,
                duplicate_frac: 0.05,
                missing_key_frac: 0.03,
                // Kept at zero so the published EXPERIMENTS.md numbers stay
                // exactly reproducible; flip on to stress imputation.
                feature_null_frac: 0.0,
                seed: self.seed ^ 0x5f0f,
            },
        )
    }

    /// Generate the *data-lake setting*: snowflake, KFK stripped, decoys
    /// planted (≈ one decoy per three satellites).
    pub fn build_lake(&self) -> Lake {
        let sf = self.build_snowflake();
        corrupt_to_lake(
            &sf,
            &LakeConfig {
                n_decoys: (self.n_satellites / 3).max(2),
                decoy_overlap: 0.8,
                seed: self.seed ^ 0xacc5,
            },
        )
    }
}

/// The eight datasets of Table II. Ordering matches the paper (ascending
/// joinable-table count).
pub fn table2_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "credit",
            paper_rows: 1001,
            paper_joinable_tables: 5,
            paper_features: 21,
            paper_best_accuracy: 0.99,
            rows: 1001,
            features: 21,
            n_satellites: 5,
            max_branching: 2,
            class_sep: 2.2,
            seed: 101,
        },
        DatasetSpec {
            name: "eyemove",
            paper_rows: 7609,
            paper_joinable_tables: 6,
            paper_features: 24,
            paper_best_accuracy: 0.894,
            rows: 2400,
            features: 24,
            n_satellites: 6,
            max_branching: 2,
            class_sep: 1.1,
            seed: 102,
        },
        DatasetSpec {
            name: "covertype",
            paper_rows: 423_682,
            paper_joinable_tables: 12,
            paper_features: 21,
            paper_best_accuracy: 0.99,
            rows: 3000,
            features: 21,
            n_satellites: 12,
            max_branching: 3,
            class_sep: 2.2,
            seed: 103,
        },
        DatasetSpec {
            name: "jannis",
            paper_rows: 57_581,
            paper_joinable_tables: 12,
            paper_features: 55,
            paper_best_accuracy: 0.875,
            rows: 2500,
            features: 55,
            n_satellites: 12,
            max_branching: 3,
            class_sep: 1.0,
            seed: 104,
        },
        DatasetSpec {
            name: "miniboone",
            paper_rows: 73_000,
            paper_joinable_tables: 15,
            paper_features: 51,
            paper_best_accuracy: 0.9465,
            rows: 3000,
            features: 51,
            n_satellites: 15,
            max_branching: 3,
            class_sep: 1.6,
            seed: 105,
        },
        DatasetSpec {
            name: "steel",
            paper_rows: 1943,
            paper_joinable_tables: 15,
            paper_features: 34,
            paper_best_accuracy: 1.0,
            rows: 1943,
            features: 34,
            n_satellites: 15,
            max_branching: 3,
            class_sep: 2.5,
            seed: 106,
        },
        DatasetSpec {
            name: "school",
            // Star schema in the paper (ARDA's dataset).
            paper_rows: 1775,
            paper_joinable_tables: 16,
            paper_features: 731,
            paper_best_accuracy: 0.831,
            rows: 1775,
            features: 64,
            n_satellites: 16,
            max_branching: 16,
            class_sep: 0.9,
            seed: 107,
        },
        DatasetSpec {
            name: "bioresponse",
            paper_rows: 3435,
            paper_joinable_tables: 40,
            paper_features: 420,
            paper_best_accuracy: 0.885,
            rows: 2000,
            features: 64,
            n_satellites: 40,
            max_branching: 4,
            class_sep: 1.2,
            seed: 108,
        },
    ]
}

/// Look up a Table II dataset by name.
pub fn dataset(name: &str) -> Option<DatasetSpec> {
    table2_datasets().into_iter().find(|d| d.name == name)
}

/// The six single-table datasets of the §V feature-selection study,
/// "varying in domains, the ratio of rows to columns, and types of
/// features".
pub fn selection_study_datasets() -> Vec<GroundTruth> {
    let configs = [
        // (name hint) rows, inf, red, noise, cat, sep, seed
        (800usize, 4usize, 2usize, 8usize, 1usize, 2.0f64, 201u64), // small & easy (medicine-like)
        (3000, 6, 4, 20, 2, 1.2, 202),                              // mid-size, noisy (web-like)
        (5000, 8, 4, 8, 0, 1.8, 203),                               // many rows, few cols
        (600, 10, 8, 42, 2, 1.0, 204),                              // wide & hard
        (2000, 5, 5, 10, 3, 1.5, 205),                              // heavy categoricals
        (1200, 3, 1, 26, 0, 2.5, 206),                              // sparse signal
    ];
    configs
        .into_iter()
        .map(|(rows, inf, red, noise, cat, sep, seed)| {
            generate(&GroundTruthConfig {
                n_rows: rows,
                n_informative: inf,
                n_redundant: red,
                n_noise: noise,
                n_categorical: cat,
                class_sep: sep,
                label_noise: 0.05,
                seed,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_entries_matching_paper_shapes() {
        let ds = table2_datasets();
        assert_eq!(ds.len(), 8);
        let school = ds.iter().find(|d| d.name == "school").unwrap();
        assert_eq!(school.paper_features, 731);
        assert_eq!(school.n_satellites, 16);
        assert_eq!(school.max_branching, 16, "school is a star schema");
        let bio = ds.iter().find(|d| d.name == "bioresponse").unwrap();
        assert_eq!(bio.paper_joinable_tables, 40);
    }

    #[test]
    fn joinable_table_counts_ascend_like_table2() {
        let ds = table2_datasets();
        for w in ds.windows(2) {
            assert!(w[0].paper_joinable_tables <= w[1].paper_joinable_tables);
        }
    }

    #[test]
    fn credit_builds_end_to_end() {
        let spec = dataset("credit").unwrap();
        let sf = spec.build_snowflake();
        assert_eq!(sf.satellites.len(), 5);
        assert_eq!(sf.base.n_rows(), 1001);
        let lake = spec.build_lake();
        assert_eq!(lake.tables.len(), 6);
    }

    #[test]
    fn school_snowflake_is_star() {
        let spec = dataset("school").unwrap();
        let sf = spec.build_snowflake();
        assert_eq!(sf.max_depth(), 1, "star schema: every satellite at depth 1");
    }

    #[test]
    fn non_star_datasets_have_depth() {
        let spec = dataset("covertype").unwrap();
        let sf = spec.build_snowflake();
        assert!(sf.max_depth() >= 2, "covertype should have multi-hop paths");
    }

    #[test]
    fn feature_budget_respected() {
        for spec in table2_datasets().into_iter().take(3) {
            let gt = spec.build_ground_truth();
            // features + row_id + target
            assert_eq!(gt.table.n_cols(), spec.features + 2, "{}", spec.name);
        }
    }

    #[test]
    fn selection_study_has_six_varied_datasets() {
        let ds = selection_study_datasets();
        assert_eq!(ds.len(), 6);
        let rows: Vec<usize> = ds.iter().map(|g| g.table.n_rows()).collect();
        let mut sorted = rows.clone();
        sorted.dedup();
        assert!(sorted.len() > 3, "row counts should vary: {rows:?}");
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(dataset("nope").is_none());
    }
}
