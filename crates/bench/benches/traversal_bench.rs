//! Criterion: DRG traversal and path enumeration vs. graph density —
//! quantifying why the similarity-score pruning matters on multigraphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autofeat_graph::traversal::{bfs_levels, enumerate_paths, join_all_path_count};
use autofeat_graph::{Drg, DrgBuilder};

/// A snowflake with `n` satellites and branching `b`, plus `extra`
/// discovered multi-edges per adjacent pair (density knob).
fn graph(n: usize, b: usize, extra: usize) -> Drg {
    let mut builder = DrgBuilder::new();
    builder.add_table("base");
    for k in 0..n {
        let parent = if k < b { "base".to_string() } else { format!("s{}", (k - b) / b) };
        let child = format!("s{k}");
        builder.add_kfk(&parent, &format!("s{k}_id"), &child, &format!("s{k}_id"));
        for e in 0..extra {
            builder.add_discovered(
                &parent,
                &format!("c{e}"),
                &child,
                &format!("d{e}"),
                0.6 + 0.01 * e as f64,
            );
        }
    }
    builder.build()
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("drg_traversal");
    group.sample_size(50);
    for &n in &[8usize, 16, 40] {
        let g = graph(n, 3, 0);
        let base = g.node("base").unwrap();
        group.bench_with_input(BenchmarkId::new("bfs_levels", n), &n, |b, _| {
            b.iter(|| black_box(bfs_levels(&g, base)))
        });
    }
    for &extra in &[0usize, 2, 4] {
        let g = graph(12, 3, extra);
        let base = g.node("base").unwrap();
        group.bench_with_input(
            BenchmarkId::new("enumerate_all_edges_density", extra),
            &extra,
            |b, _| b.iter(|| black_box(enumerate_paths(&g, base, 3, false))),
        );
        group.bench_with_input(
            BenchmarkId::new("enumerate_best_edges_density", extra),
            &extra,
            |b, _| b.iter(|| black_box(enumerate_paths(&g, base, 3, true))),
        );
    }
    let g = graph(16, 16, 0); // star
    let base = g.node("base").unwrap();
    group.bench_function("join_all_count_star16", |b| {
        b.iter(|| black_box(join_all_path_count(&g, base)))
    });
    group.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
