//! Criterion: relevance/redundancy metric scaling — the cost asymmetry the
//! paper exploits (Spearman ≪ MI-based methods; MRMR ≪ JMI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autofeat_metrics::discretize::{discretize_equal_frequency, Discretized};
use autofeat_metrics::mi::mutual_information;
use autofeat_metrics::redundancy::{RedundancyMethod, RedundancyScorer};
use autofeat_metrics::relevance::{Relevance, RelevanceMethod, Spearman};

fn feature(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| (((i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed)) % 1000) as f64)
        .collect()
}

fn labels(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| i % 2).collect()
}

fn bench_relevance(c: &mut Criterion) {
    let mut group = c.benchmark_group("relevance");
    group.sample_size(30);
    let n = 10_000;
    let x = feature(n, 7);
    let y = labels(n);
    group.bench_function("spearman_10k", |b| {
        b.iter(|| black_box(Spearman.score(&x, &y)))
    });
    for method in RelevanceMethod::all() {
        let feats = vec![x.clone()];
        group.bench_with_input(
            BenchmarkId::new("method_10k", method.name()),
            &method,
            |b, &m| b.iter(|| black_box(m.scores(&feats, &y))),
        );
    }
    group.finish();
}

fn bench_mi(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutual_information");
    group.sample_size(30);
    for &n in &[1_000usize, 10_000, 100_000] {
        let x = discretize_equal_frequency(&feature(n, 3), 10);
        let y = Discretized::from_codes(labels(n).into_iter().map(Some));
        group.bench_with_input(BenchmarkId::new("rows", n), &n, |b, _| {
            b.iter(|| black_box(mutual_information(&x, &y)))
        });
    }
    group.finish();
}

fn bench_redundancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("redundancy");
    group.sample_size(20);
    let n = 5_000;
    // Pre-discretize (as Algorithm 1 does: codes are computed once per
    // feature and cached) so the bench isolates the criterion cost — the
    // MIFS/MRMR vs CIFE/JMI/CMIM asymmetry of Fig. 3b.
    let candidate = discretize_equal_frequency(&feature(n, 11), 10);
    let selected: Vec<Discretized> = (0..8)
        .map(|s| discretize_equal_frequency(&feature(n, 100 + s), 10))
        .collect();
    let sel_refs: Vec<&Discretized> = selected.iter().collect();
    let y = Discretized::from_codes(labels(n).into_iter().map(Some));
    for method in RedundancyMethod::all() {
        let scorer = RedundancyScorer::new(method);
        group.bench_with_input(
            BenchmarkId::new("J_vs_8_selected", method.name()),
            &method,
            |b, _| b.iter(|| black_box(scorer.score_codes(&candidate, &sel_refs, &y))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_relevance, bench_mi, bench_redundancy);
criterion_main!(benches);
