//! Criterion: normalized-left-join scaling in rows and key multiplicity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autofeat_data::join::left_join_normalized;
use autofeat_data::{Column, Table};

fn tables(n: usize, dup: usize) -> (Table, Table) {
    let left = Table::new(
        "l",
        vec![
            ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            ("x", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    let rkeys: Vec<Option<i64>> = (0..n as i64).flat_map(|k| vec![Some(k); dup]).collect();
    let rvals: Vec<Option<f64>> = rkeys.iter().map(|k| k.map(|v| v as f64)).collect();
    let right = Table::new(
        "r",
        vec![("k", Column::from_ints(rkeys)), ("v", Column::from_floats(rvals))],
    )
    .unwrap();
    (left, right)
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("left_join_normalized");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 50_000] {
        let (l, r) = tables(n, 1);
        group.bench_with_input(BenchmarkId::new("1to1_rows", n), &n, |b, _| {
            b.iter(|| black_box(left_join_normalized(&l, &r, "k", "k", "r", 1).unwrap()))
        });
    }
    for &dup in &[1usize, 4, 16] {
        let (l, r) = tables(5_000, dup);
        group.bench_with_input(BenchmarkId::new("normalization_dup", dup), &dup, |b, _| {
            b.iter(|| black_box(left_join_normalized(&l, &r, "k", "k", "r", 1).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
