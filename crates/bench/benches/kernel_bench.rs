//! Criterion: the hot-path kernels behind path evaluation — join-index
//! construction (hashed vs. dictionary-coded), index probing, and the
//! scoring primitives (discretization, ranking, MI histograms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autofeat_data::join::{left_join_with_index, JoinIndex};
use autofeat_data::{Column, Table};
use autofeat_metrics::discretize::discretize_equal_frequency;
use autofeat_metrics::mi::{mutual_information, mutual_information_corrected};
use autofeat_metrics::ranks::{average_ranks, average_ranks_into};

/// A right table with `n` distinct keys × `dup` rows per key, and the
/// matching left table. `keyed` controls whether ingest key metadata
/// (dictionaries + fingerprints) is attached.
fn join_tables(n: usize, dup: usize, keyed: bool) -> (Table, Table) {
    let left = Table::new(
        "l",
        vec![
            ("k", Column::from_ints((0..n as i64).map(Some).collect::<Vec<_>>())),
            ("x", Column::from_floats((0..n).map(|i| Some(i as f64)).collect::<Vec<_>>())),
        ],
    )
    .unwrap();
    let m = n * dup;
    // Shuffle-ish key order so the coded build's scatter pass is not a
    // straight sequential write.
    let rkeys: Vec<Option<i64>> = (0..m).map(|i| Some(((i * 7 + 3) % m / dup) as i64)).collect();
    let rvals: Vec<Option<f64>> = rkeys.iter().map(|k| k.map(|v| v as f64)).collect();
    let right = Table::new(
        "r",
        vec![("k", Column::from_ints(rkeys)), ("v", Column::from_floats(rvals))],
    )
    .unwrap();
    let right = if keyed { right.with_key_dicts() } else { right };
    (left, right)
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20);
    for &n in &[5_000usize, 20_000] {
        let (_, hashed) = join_tables(n, 3, false);
        let hcol = hashed.column("k").unwrap().clone();
        group.bench_with_input(BenchmarkId::new("hashed", n), &n, |b, _| {
            b.iter(|| black_box(JoinIndex::build(&hashed, &hcol)))
        });
        let (_, coded) = join_tables(n, 3, true);
        let ccol = coded.column("k").unwrap().clone();
        group.bench_with_input(BenchmarkId::new("dict_coded", n), &n, |b, _| {
            b.iter(|| black_box(JoinIndex::build(&coded, &ccol)))
        });
    }
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_probe");
    group.sample_size(20);
    for &keyed in &[false, true] {
        let (l, r) = join_tables(10_000, 3, keyed);
        let rcol = r.column("k").unwrap().clone();
        let idx = JoinIndex::build(&r, &rcol);
        let name = if keyed { "dict_coded" } else { "hashed" };
        group.bench_with_input(BenchmarkId::new(name, 10_000), &keyed, |b, _| {
            b.iter(|| {
                black_box(left_join_with_index(&l, &r, &idx, "k", "r", 1).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_scoring_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring_kernels");
    group.sample_size(20);
    // High-cardinality continuous column: the distinct-cap early exit and
    // the single quantile sort carry this case.
    let continuous: Vec<f64> = (0..20_000).map(|i| ((i * 37 + 11) % 19_997) as f64).collect();
    group.bench_function("discretize_continuous_20k", |b| {
        b.iter(|| black_box(discretize_equal_frequency(black_box(&continuous), 10)))
    });
    // Low-cardinality column: the discrete passthrough.
    let discrete: Vec<f64> = (0..20_000).map(|i| (i % 7) as f64).collect();
    group.bench_function("discretize_discrete_20k", |b| {
        b.iter(|| black_box(discretize_equal_frequency(black_box(&discrete), 10)))
    });

    group.bench_function("average_ranks_alloc_20k", |b| {
        b.iter(|| black_box(average_ranks(black_box(&continuous))))
    });
    let mut idx = Vec::new();
    let mut ranks = Vec::new();
    group.bench_function("average_ranks_into_20k", |b| {
        b.iter(|| {
            average_ranks_into(black_box(&continuous), &mut idx, &mut ranks);
            black_box(ranks.last().copied())
        })
    });

    let dx = discretize_equal_frequency(&continuous, 10);
    let dy = discretize_equal_frequency(&discrete, 10);
    group.bench_function("mi_histogram_20k", |b| {
        b.iter(|| black_box(mutual_information(black_box(&dx), black_box(&dy))))
    });
    group.bench_function("mi_corrected_20k", |b| {
        b.iter(|| black_box(mutual_information_corrected(black_box(&dx), black_box(&dy))))
    });
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_probe, bench_scoring_kernels);
criterion_main!(benches);
