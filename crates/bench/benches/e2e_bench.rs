//! Criterion: AutoFeat end-to-end discovery on a small generated lake —
//! the cost of one full Algorithm 1 run (without model training).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autofeat_bench::{context_from_lake, context_from_snowflake};
use autofeat_core::{AutoFeat, AutoFeatConfig};
use autofeat_datagen::registry::dataset;

fn bench_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("autofeat_e2e");
    group.sample_size(10);

    for name in ["credit", "steel"] {
        let spec = dataset(name).unwrap();
        let ctx = context_from_snowflake(&spec.build_snowflake());
        group.bench_with_input(BenchmarkId::new("discover_kfk", name), &name, |b, _| {
            b.iter(|| {
                black_box(
                    AutoFeat::new(AutoFeatConfig::paper())
                        .discover(&ctx)
                        .unwrap(),
                )
            })
        });
    }

    let spec = dataset("credit").unwrap();
    let lake_ctx = context_from_lake(&spec.build_lake());
    group.bench_function("discover_lake_credit", |b| {
        b.iter(|| {
            black_box(
                AutoFeat::new(AutoFeatConfig::paper())
                    .discover(&lake_ctx)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
