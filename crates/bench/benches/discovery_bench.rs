//! Criterion: schema-matcher scaling — the offline DRG-construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autofeat_data::{Column, Table};
use autofeat_discovery::{ColumnProfile, MinHash, SchemaMatcher};

fn table(name: &str, n_rows: usize, n_cols: usize, offset: i64) -> Table {
    let cols: Vec<(String, Column)> = (0..n_cols)
        .map(|c| {
            (
                format!("col_{name}_{c}"),
                Column::from_ints(
                    (0..n_rows as i64).map(|i| Some(offset + i * (c as i64 + 1))).collect::<Vec<_>>(),
                ),
            )
        })
        .collect();
    Table::new(name, cols).unwrap()
}

fn bench_profiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let t = table("a", n, 8, 0);
        group.bench_with_input(BenchmarkId::new("profile_8cols_rows", n), &n, |b, _| {
            b.iter(|| black_box(ColumnProfile::build_all(&t)))
        });
    }
    let a = ColumnProfile::build_all(&table("a", 5_000, 10, 0));
    let bp = ColumnProfile::build_all(&table("b", 5_000, 10, 2_500));
    let m = SchemaMatcher::paper_default();
    group.bench_function("match_10x10_profiles", |b| {
        b.iter(|| black_box(m.match_profiles(&a, &bp)))
    });
    group.bench_function("minhash_sketch_10k", |b| {
        b.iter(|| {
            black_box(MinHash::from_hashes(
                128,
                (0..10_000u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_profiles);
criterion_main!(benches);
