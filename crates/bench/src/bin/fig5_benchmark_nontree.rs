//! Regenerates **Figure 5**: benchmark-setting accuracy for the non-tree
//! models — KNN and L1 logistic regression ("LR").
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig5_benchmark_nontree [-- --full]
//! ```

use autofeat_bench::{context_from_snowflake, run_all_methods, specs, wants_full, MethodSet};
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);
    println!("Figure 5 — benchmark setting, non-tree models (KNN, LR)\n");
    println!(
        "{:<12} {:<10} {:>9} {:>9} {:>8}",
        "dataset", "method", "KNN", "LR", "#tables"
    );
    for spec in specs(full) {
        let ctx = context_from_snowflake(&spec.build_snowflake());
        let results = run_all_methods(
            &ctx,
            &ModelKind::non_tree_models(),
            spec.seed,
            MethodSet { join_all: true },
        );
        for r in &results {
            println!(
                "{:<12} {:<10} {:>9.3} {:>9.3} {:>8}",
                spec.name,
                r.method,
                r.accuracy_for(ModelKind::Knn).unwrap_or(0.0),
                r.accuracy_for(ModelKind::LogisticL1).unwrap_or(0.0),
                r.n_tables_joined,
            );
        }
        println!();
    }
    println!("Expected shape (paper): LR — AutoFeat at or near the top; KNN weaker on small");
    println!("datasets (insufficient neighbours) and hurt by irrelevant joined features.");
}
