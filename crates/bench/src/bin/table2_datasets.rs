//! Regenerates **Table II**: the dataset overview — paper shape vs. the
//! generated synthetic analog, plus a BASE-model accuracy reference.
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin table2_datasets [-- --full]
//! ```

use autofeat_bench::{context_from_snowflake, specs, wants_full};
use autofeat_core::baselines::run_base;
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);

    println!("Table II — overview of datasets used in evaluation");
    println!(
        "{:<12} {:>10} {:>9} {:>10} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "dataset",
        "rows(pap)",
        "rows",
        "#join(pap)",
        "#join",
        "#feat(pap)",
        "#feat",
        "best(pap)",
        "base_acc"
    );
    for spec in specs(full) {
        let sf = spec.build_snowflake();
        let ctx = context_from_snowflake(&sf);
        let base = run_base(&ctx, &[ModelKind::RandomForest], spec.seed).expect("base runs");
        println!(
            "{:<12} {:>10} {:>9} {:>10} {:>9} {:>10} {:>10} {:>10.3} {:>10.3}",
            spec.name,
            spec.paper_rows,
            spec.rows,
            spec.paper_joinable_tables,
            sf.satellites.len(),
            spec.paper_features,
            spec.features,
            spec.paper_best_accuracy,
            base.mean_accuracy(),
        );
    }
    println!("\n(pap) columns are the values reported in the paper; unmarked columns are the");
    println!("generated synthetic analog (large datasets scaled down — see DESIGN.md §2).");
}
