//! Regenerates **Figure 9**: the ablation study over AutoFeat's metric
//! configuration — {Spearman, Pearson} × {MRMR, JMI}, Spearman-only
//! (redundancy off), and MRMR-only (relevance off) — reporting accuracy
//! and total time per dataset.
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig9_ablation [-- --full]
//! ```

use autofeat_bench::{context_from_snowflake, specs, wants_full};
use autofeat_core::{train_top_k, AutoFeat, AutoFeatConfig};
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);
    println!("Figure 9 — ablation over relevance/redundancy configurations (LightGBM)\n");
    println!(
        "{:<12} {:<15} {:>10} {:>12} {:>11}",
        "dataset", "variant", "accuracy", "fs_time_s", "total_s"
    );
    for spec in specs(full) {
        let ctx = context_from_snowflake(&spec.build_snowflake());
        for (label, cfg) in AutoFeatConfig::ablation_variants() {
            let cfg = AutoFeatConfig { top_k: 2, seed: spec.seed, ..cfg };
            let discovery = AutoFeat::new(cfg.clone()).discover(&ctx).expect("discovery");
            let out = train_top_k(&ctx, &discovery, &[ModelKind::LightGbm], &cfg)
                .expect("train");
            println!(
                "{:<12} {:<15} {:>10.3} {:>12.3} {:>11.3}",
                spec.name,
                label,
                out.result.mean_accuracy(),
                discovery.elapsed.as_secs_f64(),
                out.result.total_time.as_secs_f64(),
            );
        }
        println!();
    }
    println!("Expected shape (paper): JMI variants ≥ 2x slower than AutoFeat; Spearman-MRMR");
    println!("(AutoFeat proper) is the most efficient with minimal accuracy loss; MRMR-only");
    println!("retains too many features (JoinAll-like behaviour on star schemata).");
}
