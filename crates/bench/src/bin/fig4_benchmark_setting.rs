//! Regenerates **Figure 4**: the *benchmark setting* (known KFK snowflake)
//! comparison — runtime (total + feature-selection share), accuracy
//! averaged over the four tree-based models, and the number of joined
//! tables, for BASE / AutoFeat / ARDA / MAB / JoinAll / JoinAll+F on every
//! dataset.
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig4_benchmark_setting [-- --full]
//! ```

use autofeat_bench::{
    context_from_snowflake, print_header, print_result, run_all_methods, specs, wants_full,
    MethodSet,
};
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);
    println!("Figure 4 — benchmark setting (tree models: LightGBM, XGBoost, RF, ExtraTrees)\n");
    print_header();
    for spec in specs(full) {
        let ctx = context_from_snowflake(&spec.build_snowflake());
        let results = run_all_methods(
            &ctx,
            &ModelKind::tree_models(),
            spec.seed,
            MethodSet { join_all: true },
        );
        for r in &results {
            print_result(spec.name, r);
        }
        println!();
    }
    println!("Expected shape (paper): AutoFeat's fs_time ≪ ARDA ≪ MAB; AutoFeat accuracy ≥");
    println!("ARDA/MAB and ≈ JoinAll+F; JoinAll rows absent where Eq. 3 explodes (school).");
}
