//! Regenerates **Figure 6**: the *data-lake setting* comparison — KFK
//! metadata discarded, relationships rediscovered by the schema matcher
//! (threshold 0.55, spurious edges included), tree-model accuracy and
//! runtimes. JoinAll/JoinAll+F are omitted, as in the paper (the Eq. 3
//! ordering count explodes on the dense multigraph).
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig6_lake_setting [-- --full]
//! ```

use autofeat_bench::{
    context_from_lake, print_header, print_result, run_all_methods, specs, wants_full, MethodSet,
};
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);
    println!("Figure 6 — data-lake setting (tree models; JoinAll omitted per Eq. 3)\n");
    print_header();
    for spec in specs(full) {
        let ctx = context_from_lake(&spec.build_lake());
        println!(
            "# {}: discovered DRG has {} edges over {} tables",
            spec.name,
            ctx.drg().n_edges(),
            ctx.drg().n_nodes()
        );
        let results = run_all_methods(
            &ctx,
            &ModelKind::tree_models(),
            spec.seed,
            MethodSet { join_all: false },
        );
        for r in &results {
            print_result(spec.name, r);
        }
        println!();
    }
    println!("Expected shape (paper): AutoFeat ≈ 3x faster than ARDA and ≈ 10x faster than");
    println!("MAB at equal or better accuracy; AutoFeat prunes spurious joins via τ.");
}
