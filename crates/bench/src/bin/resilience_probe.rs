//! Resilience probe: measures the request-lifecycle guarantees of DESIGN.md
//! §3h on a bench-scale lake and gates them with exit codes.
//!
//! Three drills on the same wide lake:
//!
//! * **cancel** — a canceller thread fires mid-run; the run must return a
//!   valid (possibly empty) ranked partial, and the cancel latency — from
//!   `cancel()` to `discover` returning — must stay under 250ms, worst case
//!   over `REPS` runs;
//! * **deadline** — budgets at ~25% and ~50% of the unbounded runtime must
//!   yield `Ok` with a `DeadlineExceeded` truncation (or a clean finish for
//!   generous budgets) and bounded overrun;
//! * **panic** — an armed per-table worker panic must be isolated as a path
//!   failure while every healthy sibling is still ranked, and healing the
//!   fault must restore the full unbounded result bit-for-bit.
//!
//! Emits `BENCH_resilience.json` (hand-rolled JSON — no serde in this
//! workspace) plus `TRACE_resilience_cancel.json`, the run trace of one
//! cancelled run, whose `resilience.cancel_latency_secs` distribution CI
//! greps against the same bound. Exit codes: 2 = cancel latency above
//! bound, no rep observed a cancel, or the cancelled-run trace is missing
//! its latency counter; 3 = a deadline/cancel run errored or overran
//! grossly; 4 = panic escaped isolation or the healed run differs from
//! the reference.
//!
//! Usage: `resilience_probe [--threads N] [--out PATH]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use autofeat_core::{AutoFeat, AutoFeatConfig, DiscoveryResult, SearchContext, TruncationReason};
use autofeat_data::parallel::n_workers;
use autofeat_data::{faults, Column, Table};

/// A base table plus `n_sat` sibling satellites with duplicated join keys —
/// the same shape as `path_eval_throughput`, sized so the unbounded run is
/// long enough for a mid-run cancel to actually land mid-run.
fn wide_lake(n_rows: usize, n_sat: usize, dup: usize) -> SearchContext {
    let labels: Vec<i64> = (0..n_rows as i64).map(|i| (i * 7) % 2).collect();
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n_rows as i64).map(Some).collect::<Vec<_>>())),
            (
                "b0",
                Column::from_floats(
                    (0..n_rows).map(|i| Some(((i * 29) % 23) as f64)).collect::<Vec<_>>(),
                ),
            ),
            (
                "target",
                Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>()),
            ),
        ],
    )
    .expect("base builds");
    let mut tables = vec![base];
    let mut kfk: Vec<(String, String, String, String)> = Vec::new();
    for j in 0..n_sat {
        let name = format!("sat{j:03}");
        let m = n_rows * dup;
        let keys: Vec<Option<i64>> = (0..m as i64).map(|i| Some(i / dup as i64)).collect();
        let vals: Vec<Option<f64>> = (0..m)
            .map(|i| Some(((i * (13 + j) + j * 7) % 101) as f64))
            .collect();
        tables.push(
            Table::new(
                name.clone(),
                vec![("k", Column::from_ints(keys)), ("f", Column::from_floats(vals))],
            )
            .expect("satellite builds"),
        );
        kfk.push(("base".into(), "k".into(), name, "k".into()));
    }
    SearchContext::from_kfk(tables, &kfk, "base", "target").expect("context builds")
}

fn config(threads: usize) -> AutoFeatConfig {
    AutoFeatConfig::paper().with_seed(42).with_threads(threads)
}

fn results_identical(a: &DiscoveryResult, b: &DiscoveryResult) -> bool {
    a.ranked.len() == b.ranked.len()
        && a.ranked.iter().zip(&b.ranked).all(|(x, y)| {
            x.path == y.path
                && x.score.to_bits() == y.score.to_bits()
                && x.features == y.features
        })
        && a.truncation == b.truncation
        && a.selected_features == b.selected_features
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let requested = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(n_workers);
    let threads = requested.clamp(1, avail);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_resilience.json".to_string());

    const LATENCY_BOUND: Duration = Duration::from_millis(250);
    const REPS: usize = 3;

    let (n_rows, n_sat, dup) = (2_000, 48, 6);
    eprintln!("building wide lake: {n_sat} satellites x {} rows (dup {dup})...", n_rows * dup);
    let ctx = wide_lake(n_rows, n_sat, dup);

    // ---- Reference: unbounded, unfaulted (also the warm-up). ----
    let reference = AutoFeat::new(config(threads)).discover(&ctx).expect("reference run");
    let t = Instant::now(); // second run: caches warm, fair baseline
    let reference = {
        let r = AutoFeat::new(config(threads)).discover(&ctx).expect("reference run");
        assert!(results_identical(&reference, &r), "reference not repeatable");
        r
    };
    let secs_unbounded = t.elapsed().as_secs_f64();
    eprintln!(
        "reference: {} path(s) ranked in {secs_unbounded:.3}s ({} joins)",
        reference.ranked.len(),
        reference.n_joins_evaluated
    );

    // ---- Drill 1: mid-run cancel, worst-case latency over REPS. ----
    // The first rep that actually gets cancelled leaves its run trace at
    // `trace_out`, so CI can grep `resilience.cancel_latency_secs` straight
    // off the emitted trace (tracing never perturbs results).
    let trace_out = "TRACE_resilience_cancel.json";
    let mut cancel_latency_worst = Duration::ZERO;
    let mut cancel_ranked_partial = 0usize;
    let mut cancel_all_ok = true;
    let mut cancel_observed = false;
    let mut cancel_trace_captured = false;
    for rep in 0..REPS {
        // Fire at ~40% of the unbounded runtime (at least 5ms in).
        let fire_after = Duration::from_secs_f64((secs_unbounded * 0.4).max(0.005));
        let ctl = Arc::clone(ctx.control());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(fire_after);
            ctl.cancel();
            Instant::now()
        });
        let mut cfg = config(threads);
        if !cancel_trace_captured {
            cfg = cfg.with_trace_path(trace_out);
        }
        let r = AutoFeat::new(cfg).discover(&ctx);
        let returned_at = Instant::now();
        let cancelled_at = canceller.join().expect("canceller thread");
        ctx.control().reset();
        match r {
            Ok(r) => {
                // The run may legitimately finish before the cancel lands;
                // only cancelled runs measure latency.
                if r.truncation == Some(TruncationReason::Cancelled) {
                    let latency = returned_at.saturating_duration_since(cancelled_at);
                    cancel_latency_worst = cancel_latency_worst.max(latency);
                    cancel_ranked_partial = cancel_ranked_partial.max(r.ranked.len());
                    cancel_observed = true;
                    if !cancel_trace_captured {
                        // Keep this trace: later reps run untraced so the
                        // cancelled-run counters survive at `trace_out`.
                        cancel_trace_captured = std::fs::read_to_string(trace_out)
                            .map(|t| t.contains("resilience.cancel_latency_secs"))
                            .unwrap_or(false);
                    }
                    eprintln!(
                        "cancel rep {rep}: latency {latency:?}, {} path(s) ranked partial",
                        r.ranked.len()
                    );
                } else {
                    eprintln!("cancel rep {rep}: run finished before the cancel landed");
                }
            }
            Err(e) => {
                eprintln!("cancel rep {rep}: ERROR {e} (cancellation must not error)");
                cancel_all_ok = false;
            }
        }
    }
    let cancel_latency_ok = cancel_all_ok
        && cancel_observed
        && cancel_trace_captured
        && cancel_latency_worst <= LATENCY_BOUND;

    // ---- Drill 2: deadline sweep. ----
    let mut deadline_json = String::from("[");
    let mut deadline_all_ok = true;
    for (i, frac) in [0.25f64, 0.5].iter().enumerate() {
        let budget = Duration::from_secs_f64((secs_unbounded * frac).max(0.002));
        let t = Instant::now();
        let r = AutoFeat::new(config(threads).with_time_budget(budget)).discover(&ctx);
        let elapsed = t.elapsed();
        let (ok, truncated, ranked) = match &r {
            Ok(r) => (true, r.truncation.is_some(), r.ranked.len()),
            Err(_) => (false, false, 0),
        };
        // Overrun bound: the budget plus one slow checkpoint interval.
        let overrun_ok = elapsed <= budget + LATENCY_BOUND;
        deadline_all_ok &= ok && overrun_ok;
        eprintln!(
            "deadline {frac}: budget {budget:?}, elapsed {elapsed:?}, truncated {truncated}, \
             {ranked} path(s)"
        );
        let _ = write!(
            deadline_json,
            "{}{{\"budget_secs\": {:.6}, \"elapsed_secs\": {:.6}, \"ok\": {ok}, \
             \"truncated\": {truncated}, \"ranked\": {ranked}, \"overrun_ok\": {overrun_ok}}}",
            if i == 0 { "" } else { ", " },
            budget.as_secs_f64(),
            elapsed.as_secs_f64(),
        );
    }
    deadline_json.push(']');

    // ---- Drill 3: panic isolation and healing. ----
    // Cache off: `panic_on_row` fires during index *builds*, and the warm
    // lake cache would otherwise serve sat000's index without ever
    // rebuilding it.
    faults::arm(
        "sat000",
        faults::TableFaults { panic_on_row: Some(0), slow_join_ms: None },
    );
    // The injected panic is expected: mute the default hook's backtrace so
    // the bench output stays readable, then restore it.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let faulted = AutoFeat::new(config(threads).with_cache(false)).discover(&ctx);
    std::panic::set_hook(prev_hook);
    faults::disarm("sat000");
    let (panic_isolated, panic_failures) = match &faulted {
        Ok(r) => (
            (r.resilience.worker_panics >= 1
                || r.failures.iter().any(|f| f.error.contains("panic")))
                && !r.ranked.is_empty(),
            r.failures.len(),
        ),
        Err(_) => (false, 0),
    };
    let healed = AutoFeat::new(config(threads)).discover(&ctx).expect("healed run");
    let healed_identical = results_identical(&reference, &healed);

    println!(
        "cancel latency (worst of {REPS}): {cancel_latency_worst:?} (bound {LATENCY_BOUND:?}, \
         ok {cancel_latency_ok}), panic isolated {panic_isolated} ({panic_failures} failure(s)), \
         healed identical {healed_identical}"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"resilience_probe\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"satellites\": {n_sat}, \"rows_per_satellite\": {}, \"dup_per_key\": {dup}}},",
        n_rows * dup
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"secs_unbounded\": {secs_unbounded:.6},");
    let _ = writeln!(
        json,
        "  \"cancel_latency_secs\": {:.6},",
        cancel_latency_worst.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "  \"cancel_latency_bound_secs\": {:.3},",
        LATENCY_BOUND.as_secs_f64()
    );
    let _ = writeln!(json, "  \"cancel_latency_ok\": {cancel_latency_ok},");
    let _ = writeln!(json, "  \"cancel_observed\": {cancel_observed},");
    let _ = writeln!(json, "  \"cancel_trace\": \"{trace_out}\",");
    let _ = writeln!(json, "  \"cancel_trace_captured\": {cancel_trace_captured},");
    let _ = writeln!(json, "  \"cancel_ranked_partial\": {cancel_ranked_partial},");
    let _ = writeln!(json, "  \"deadlines\": {deadline_json},");
    let _ = writeln!(json, "  \"deadline_all_ok\": {deadline_all_ok},");
    let _ = writeln!(json, "  \"panic_isolated\": {panic_isolated},");
    let _ = writeln!(json, "  \"panic_failures\": {panic_failures},");
    let _ = writeln!(json, "  \"healed_identical\": {healed_identical}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if !cancel_latency_ok {
        eprintln!(
            "CANCEL DRILL VIOLATION: worst latency {cancel_latency_worst:?} (bound \
             {LATENCY_BOUND:?}), cancel observed {cancel_observed}, trace captured \
             {cancel_trace_captured}"
        );
        std::process::exit(2);
    }
    if !deadline_all_ok {
        eprintln!("DEADLINE VIOLATION: a budgeted run errored or grossly overran its budget");
        std::process::exit(3);
    }
    if !(panic_isolated && healed_identical) {
        eprintln!(
            "PANIC ISOLATION VIOLATION: isolated {panic_isolated}, healed identical \
             {healed_identical}"
        );
        std::process::exit(4);
    }
}
