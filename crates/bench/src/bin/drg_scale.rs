//! DRG construction at scale: all-pairs schema matching vs the hybrid
//! LSH + name-pass candidate generator, and full rebuilds vs incremental
//! maintenance ([`DrgMaintainer`]).
//!
//! Three synthetic lake tiers — 50, 200, and 800 total columns (~400 rows
//! per table, 5 columns per table) — are generated with the structure that
//! makes candidate pruning honest:
//!
//! * tables come in **families of 5** sharing a join-key name and an
//!   overlapping key domain, so real edges exist and the name pass (not
//!   LSH luck) guarantees them deterministically;
//! * feature columns carry **table-disjoint float domains** (no value
//!   collisions to prune — LSH must discover that cheaply) under two-word
//!   names drawn from a 40-word vocabulary, so pairwise name similarity
//!   stays below the τ = 0.75 name-candidate gate except for genuine
//!   repeats.
//!
//! Per tier, the all-pairs reference ([`Drg::from_discovery`]) and the
//! hybrid build ([`DrgMaintainer::build`] + `assemble`) are timed and
//! their edge multisets compared **bit-for-bit** (the recall gate: hybrid
//! candidate generation must lose no edge, including name-driven edges
//! whose value overlap is too thin for reliable LSH collision). Then one
//! extra table is added to each tier's maintainer and timed against a
//! full hybrid rebuild over the enlarged lake — incremental splicing must
//! win, and its latency must stay flat as the lake grows 16×.
//!
//! Emits `BENCH_drg.json` (hand-rolled JSON — no serde in this
//! workspace). Exit codes gate the contract: 2 = edge-parity violation,
//! 3 = LSH speedup below 3× at the 800-column tier, 4 = incremental add
//! not faster than rebuild at the top tier, 5 = add latency grew with
//! lake size (not flat).
//!
//! Usage: `drg_scale [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use autofeat_data::{Column, Table};
use autofeat_discovery::SchemaMatcher;
use autofeat_graph::{Drg, DrgMaintainer};

/// 40 mutually dissimilar words (distinct leading characters dominate, so
/// Jaro-Winkler prefix boosts stay rare) for synthetic column names.
const WORDS: [&str; 40] = [
    "orbit", "plasma", "krypton", "meadow", "glacier", "ember", "tundra", "quartz", "viola",
    "zephyr", "anchor", "bramble", "cinder", "dynamo", "eagle", "falcon", "garnet", "harbor",
    "ingot", "jigsaw", "kelp", "lantern", "mosaic", "nectar", "onyx", "prism", "quiver", "ridge",
    "sable", "thicket", "umber", "vortex", "walnut", "xenon", "yarrow", "zeal", "basalt", "cobalt",
    "drift", "fjord",
];

const ROWS: usize = 400;
const COLS_PER_TABLE: usize = 5;
const FAMILY: usize = 5;

/// Table `t` of a tier: one int join key shared (name + overlapping
/// domain) with its family, plus float features in a domain no other
/// table touches.
fn lake_table(t: usize) -> Table {
    let fam = t / FAMILY;
    let key_name = format!("key_{}", WORDS[fam % WORDS.len()]);
    // Family domain base + per-table shift: adjacent family members
    // overlap ~75% of their keys (a real, high-scoring join edge).
    let base = (fam as i64) * 1_000_000 + (t % FAMILY) as i64 * (ROWS as i64 / 4);
    let key = Column::from_ints((0..ROWS as i64).map(|i| Some(base + i)).collect::<Vec<_>>());
    let mut cols = vec![(key_name, key)];
    for j in 1..COLS_PER_TABLE {
        let name = format!(
            "{}_{}",
            WORDS[(t * 7 + j * 3) % WORDS.len()],
            WORDS[(t * 11 + j * 5 + 13) % WORDS.len()]
        );
        let vals = (0..ROWS)
            .map(|i| Some((t * 10_000 + j * 500) as f64 + i as f64 * 0.37))
            .collect::<Vec<_>>();
        cols.push((name, Column::from_floats(vals)));
    }
    let named: Vec<(&str, Column)> = cols.iter().map(|(n, c)| (n.as_str(), c.clone())).collect();
    Table::new(format!("t{t:03}"), named).expect("lake table builds")
}

fn lake(n_tables: usize) -> Vec<Table> {
    (0..n_tables).map(lake_table).collect()
}

/// Canonical edge multiset — endpoints by table *name* (node ids depend
/// on insertion order), weights by bit pattern.
fn canonical_edges(drg: &Drg) -> Vec<(String, String, String, String, u64)> {
    let mut out: Vec<_> = drg
        .edges()
        .iter()
        .map(|e| {
            (
                drg.table_name(e.a).to_string(),
                e.a_column.clone(),
                drg.table_name(e.b).to_string(),
                e.b_column.clone(),
                e.weight.to_bits(),
            )
        })
        .collect();
    out.sort();
    out
}

struct Tier {
    columns: usize,
    tables: usize,
    edges: usize,
    all_pairs_ms: f64,
    hybrid_ms: f64,
    speedup: f64,
    parity: bool,
    add_ms: f64,
    rebuild_ms: f64,
}

fn measure_tier(n_tables: usize, matcher: &SchemaMatcher) -> Tier {
    let tables = lake(n_tables);
    let refs: Vec<&Table> = tables.iter().collect();

    let t0 = Instant::now();
    let all_pairs = Drg::from_discovery(&refs, matcher);
    let all_pairs_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let maintainer = DrgMaintainer::build(&refs, matcher);
    let hybrid = maintainer.assemble();
    let hybrid_ms = t0.elapsed().as_secs_f64() * 1e3;

    let parity = canonical_edges(&all_pairs) == canonical_edges(&hybrid);

    // Incremental add of one fresh table (own family ⇒ key edges to
    // nobody; features disjoint like every other table) vs rebuilding the
    // enlarged lake from scratch through the same hybrid path.
    let newcomer = lake_table(n_tables + FAMILY); // fresh family index
    let mut incremental = maintainer.clone();
    let t0 = Instant::now();
    incremental.add_table(&newcomer);
    let _spliced = incremental.assemble();
    let add_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut enlarged: Vec<&Table> = refs.clone();
    enlarged.push(&newcomer);
    let t0 = Instant::now();
    let rebuilt = DrgMaintainer::build(&enlarged, matcher).assemble();
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let add_parity = canonical_edges(&incremental.assemble()) == canonical_edges(&rebuilt);

    Tier {
        columns: n_tables * COLS_PER_TABLE,
        tables: n_tables,
        edges: hybrid.n_edges(),
        all_pairs_ms,
        hybrid_ms,
        speedup: all_pairs_ms / hybrid_ms.max(1e-6),
        parity: parity && add_parity,
        add_ms,
        rebuild_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_drg.json".to_string());

    let matcher = SchemaMatcher::paper_default();
    let tiers: Vec<Tier> = [10usize, 40, 160]
        .iter()
        .map(|&n| {
            eprintln!("measuring tier: {n} tables ({} columns)...", n * COLS_PER_TABLE);
            measure_tier(n, &matcher)
        })
        .collect();

    let recall_parity = tiers.iter().all(|t| t.parity);
    let top = tiers.last().expect("at least one tier");
    let first = tiers.first().expect("at least one tier");
    let lsh_speedup_ok = top.speedup >= 3.0;
    let incremental_faster_than_rebuild = top.add_ms < top.rebuild_ms;
    // Flatness: a 16× larger lake may not blow up the add latency — the
    // splice is O(tables) with a tiny constant, never O(tables²).
    let add_latency_flat = top.add_ms <= first.add_ms * 4.0 + 5.0;

    println!(
        "{:>8} {:>7} {:>6} {:>13} {:>11} {:>8} {:>7} {:>9} {:>11}",
        "columns", "tables", "edges", "all_pairs_ms", "hybrid_ms", "speedup", "parity", "add_ms",
        "rebuild_ms"
    );
    for t in &tiers {
        println!(
            "{:>8} {:>7} {:>6} {:>13.2} {:>11.2} {:>7.2}x {:>7} {:>9.3} {:>11.2}",
            t.columns, t.tables, t.edges, t.all_pairs_ms, t.hybrid_ms, t.speedup, t.parity,
            t.add_ms, t.rebuild_ms
        );
    }
    println!(
        "gates: recall_parity={recall_parity} lsh_speedup_ok={lsh_speedup_ok} \
         incremental_faster_than_rebuild={incremental_faster_than_rebuild} \
         add_latency_flat={add_latency_flat}"
    );

    let mut json = String::from("{\n  \"tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"columns\": {}, \"tables\": {}, \"edges\": {}, \"all_pairs_ms\": {:.3}, \
             \"hybrid_ms\": {:.3}, \"speedup\": {:.3}, \"parity\": {}, \"add_ms\": {:.4}, \
             \"rebuild_ms\": {:.3}}}{}",
            t.columns,
            t.tables,
            t.edges,
            t.all_pairs_ms,
            t.hybrid_ms,
            t.speedup,
            t.parity,
            t.add_ms,
            t.rebuild_ms,
            if i + 1 < tiers.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"recall_parity\": {recall_parity},\n  \"lsh_speedup_ok\": {lsh_speedup_ok},\n  \
         \"incremental_faster_than_rebuild\": {incremental_faster_than_rebuild},\n  \
         \"add_latency_flat\": {add_latency_flat}\n}}"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_drg.json");
    eprintln!("wrote {out_path}");

    if !recall_parity {
        eprintln!("RECALL PARITY VIOLATION: hybrid candidate generation lost or altered edges");
        std::process::exit(2);
    }
    if !lsh_speedup_ok {
        eprintln!(
            "SPEEDUP GATE FAILED: hybrid only {:.2}x faster at {} columns (need >= 3x)",
            top.speedup, top.columns
        );
        std::process::exit(3);
    }
    if !incremental_faster_than_rebuild {
        eprintln!(
            "INCREMENTAL GATE FAILED: add {:.3}ms vs rebuild {:.3}ms",
            top.add_ms, top.rebuild_ms
        );
        std::process::exit(4);
    }
    if !add_latency_flat {
        eprintln!(
            "FLATNESS GATE FAILED: add {:.3}ms at {} columns vs {:.3}ms at {} columns",
            top.add_ms, top.columns, first.add_ms, first.columns
        );
        std::process::exit(5);
    }
}
