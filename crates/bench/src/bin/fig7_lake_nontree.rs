//! Regenerates **Figure 7**: data-lake-setting accuracy for KNN and LR.
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig7_lake_nontree [-- --full]
//! ```

use autofeat_bench::{context_from_lake, run_all_methods, specs, wants_full, MethodSet};
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);
    println!("Figure 7 — data-lake setting, non-tree models (KNN, LR)\n");
    println!(
        "{:<12} {:<10} {:>9} {:>9} {:>8}",
        "dataset", "method", "KNN", "LR", "#tables"
    );
    for spec in specs(full) {
        let ctx = context_from_lake(&spec.build_lake());
        let results = run_all_methods(
            &ctx,
            &ModelKind::non_tree_models(),
            spec.seed,
            MethodSet { join_all: false },
        );
        for r in &results {
            println!(
                "{:<12} {:<10} {:>9.3} {:>9.3} {:>8}",
                spec.name,
                r.method,
                r.accuracy_for(ModelKind::Knn).unwrap_or(0.0),
                r.accuracy_for(ModelKind::LogisticL1).unwrap_or(0.0),
                r.n_tables_joined,
            );
        }
        println!();
    }
    println!("Expected shape (paper): KNN suffers from noisy joined features (distance");
    println!("distortion); LR — AutoFeat leads on most datasets.");
}
