//! Regenerates **Figure 1**: the headline scatter — feature
//! discovery/augmentation time vs. resulting model accuracy, per method,
//! aggregated over datasets and both schema settings.
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig1_summary [-- --full]
//! ```

use std::collections::BTreeMap;

use autofeat_bench::{
    context_from_lake, context_from_snowflake, run_all_methods, specs, wants_full, MethodSet,
};
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);
    let models = [ModelKind::LightGbm, ModelKind::RandomForest];

    // method -> (sum accuracy, sum fs time, count)
    let mut agg: BTreeMap<String, (f64, f64, usize)> = BTreeMap::new();
    for spec in specs(full) {
        for lake_setting in [false, true] {
            let ctx = if lake_setting {
                context_from_lake(&spec.build_lake())
            } else {
                context_from_snowflake(&spec.build_snowflake())
            };
            let results = run_all_methods(
                &ctx,
                &models,
                spec.seed,
                MethodSet { join_all: !lake_setting },
            );
            for r in results {
                let e = agg.entry(r.method.clone()).or_insert((0.0, 0.0, 0));
                e.0 += r.mean_accuracy();
                e.1 += r.feature_selection_time.as_secs_f64();
                e.2 += 1;
            }
        }
    }

    println!("Figure 1 — augmentation time vs. accuracy (aggregated, both settings)\n");
    println!("{:<10} {:>14} {:>18}", "method", "mean_accuracy", "mean_fs_time_s");
    for (method, (acc, fs, n)) in &agg {
        println!(
            "{:<10} {:>14.3} {:>18.4}",
            method,
            acc / *n as f64,
            fs / *n as f64
        );
    }
    println!("\nExpected shape (paper): AutoFeat sits in the top-left corner — highest");
    println!("accuracy at the lowest feature-discovery time (5x-44x faster than baselines).");
}
