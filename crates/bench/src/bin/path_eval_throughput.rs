//! Path-evaluation throughput: joins/sec of the discovery BFS — uncached vs
//! cold-cache vs warm-cache, and 1 worker vs N workers.
//!
//! The workload is a synthetic *wide* lake built for this measurement: many
//! sibling satellites hanging off the base table, each with duplicated join
//! keys and enough rows that the per-candidate join work (key hashing +
//! representative fingerprints + relevance) dominates thread overhead. That
//! is the shape both the per-level parallel fan-out and the lake-wide
//! [`LakeIndexCache`](autofeat_data::LakeIndexCache) exist for.
//!
//! Four cache modes run on the same workload and must be bit-identical:
//!
//! * **uncached** — `cache: false`, every join rebuilds its index;
//! * **cold cache** — first cached run on a fresh context (pays index
//!   builds). Measured best-of-`REPS` over *fresh contexts* (a cache is
//!   only cold once per context, so each sample rebuilds the lake outside
//!   the timer) — a single cold sample on a shared box is noise, and noise
//!   here gates a regression bound;
//! * **warm cache** — repeat run on a populated context (pure hits);
//! * **budgeted cache** — warm context, byte budget at ~3/4 of the
//!   unbounded working set (or `AUTOFEAT_CACHE_BUDGET` when set): applying
//!   the budget evicts coldest-first, the surviving subset serves hits, and
//!   everything else rebuilds transiently (fit-or-deny admission).
//!
//! Worker threads are clamped to `available_parallelism`: measuring 4
//! workers on a 1-core box reports overhead, not speedup, and earlier
//! versions of this benchmark did exactly that.
//!
//! The uncached mode is additionally measured **with and without** the
//! dictionary-encoded key domain: the normal path (ingest attaches a
//! [`KeyDict`](autofeat_data::KeyDict) per column, index builds
//! counting-sort dense `u32` codes) against a legacy context whose key
//! metadata is stripped (every index build hashes full keys). Both must be
//! bit-identical; the speedup is CI-gated.
//!
//! Emits `BENCH_path_eval.json` (hand-rolled JSON — no serde in this
//! workspace) plus a human-readable table. Exit codes gate the cache
//! contract: 2 = results not bit-identical, 3 = warm run with zero hits,
//! 4 = cold cached run slower than 1.25× uncached, 5 = budgeted run's
//! peak/final residency exceeded its budget, 6 = dictionary-coded uncached
//! speedup below its bound.
//!
//! Usage: `path_eval_throughput [--full] [--threads N] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use autofeat_core::{AutoFeat, AutoFeatConfig, DiscoveryResult, SearchContext};
use autofeat_data::parallel::n_workers;
use autofeat_data::{CacheStats, Column, Table};
use autofeat_graph::DrgBuilder;

/// A base table plus `n_sat` sibling satellites, each `n_rows * dup` rows
/// with `dup` duplicate rows per key (so representative picks are real
/// work), each carrying one feature column.
///
/// `dicts` selects the key domain: `true` is the normal ingest path
/// (`from_kfk` attaches per-column dictionaries + row fingerprints outside
/// any timed region); `false` strips the metadata and assembles the context
/// by hand, forcing every join-index build onto the hashed legacy path —
/// the baseline for the `uncached_speedup` gate.
fn wide_lake(n_rows: usize, n_sat: usize, dup: usize, dicts: bool) -> SearchContext {
    let labels: Vec<i64> = (0..n_rows as i64).map(|i| (i * 7) % 2).collect();
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n_rows as i64).map(Some).collect::<Vec<_>>())),
            (
                "b0",
                Column::from_floats(
                    (0..n_rows).map(|i| Some(((i * 29) % 23) as f64)).collect::<Vec<_>>(),
                ),
            ),
            (
                "target",
                Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>()),
            ),
        ],
    )
    .expect("base builds");
    let mut tables = vec![base];
    let mut kfk: Vec<(String, String, String, String)> = Vec::new();
    for j in 0..n_sat {
        let name = format!("sat{j:03}");
        let m = n_rows * dup;
        let keys: Vec<Option<i64>> = (0..m as i64).map(|i| Some(i / dup as i64)).collect();
        let vals: Vec<Option<f64>> = (0..m)
            .map(|i| Some(((i * (13 + j) + j * 7) % 101) as f64))
            .collect();
        tables.push(
            Table::new(
                name.clone(),
                vec![("k", Column::from_ints(keys)), ("f", Column::from_floats(vals))],
            )
            .expect("satellite builds"),
        );
        kfk.push(("base".into(), "k".into(), name, "k".into()));
    }
    if dicts {
        SearchContext::from_kfk(tables, &kfk, "base", "target").expect("context builds")
    } else {
        let tables: Vec<Table> = tables.into_iter().map(Table::strip_key_meta).collect();
        let mut b = DrgBuilder::new();
        for t in &tables {
            b.add_table(t.name());
        }
        for (pt, pc, ct, cc) in &kfk {
            b.add_kfk(pt, pc, ct, cc);
        }
        SearchContext::new(tables, b.build(), "base", "target").expect("context builds")
    }
}

fn discover(
    ctx: &SearchContext,
    threads: usize,
    cache: bool,
    budget: Option<u64>,
) -> DiscoveryResult {
    let mut cfg = AutoFeatConfig::paper()
        .with_seed(42)
        .with_threads(threads)
        .with_cache(cache);
    if let Some(b) = budget {
        cfg = cfg.with_cache_budget_bytes(b);
    }
    AutoFeat::new(cfg).discover(ctx).expect("discovery runs")
}

/// Everything except `threads_used`/`elapsed`/`cache`, compared to the bit.
fn results_identical(a: &DiscoveryResult, b: &DiscoveryResult) -> bool {
    a.ranked.len() == b.ranked.len()
        && a.ranked.iter().zip(&b.ranked).all(|(x, y)| {
            x.path == y.path
                && x.score.to_bits() == y.score.to_bits()
                && x.features == y.features
        })
        && a.n_joins_evaluated == b.n_joins_evaluated
        && a.n_pruned_unjoinable == b.n_pruned_unjoinable
        && a.n_pruned_quality == b.n_pruned_quality
        && a.n_pruned_similarity == b.n_pruned_similarity
        && a.n_pruned_budget == b.n_pruned_budget
        && a.truncation == b.truncation
        && a.selected_features == b.selected_features
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let requested = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(n_workers);
    // Clamp to the hardware: asking for more workers than cores measures
    // scheduler overhead, not parallel speedup (and misleads the JSON).
    let threads = requested.clamp(1, avail);
    if threads < requested {
        eprintln!("note: clamped --threads {requested} to available_parallelism {avail}");
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_path_eval.json".to_string());

    let (n_rows, n_sat, dup) = if full { (8_000, 96, 6) } else { (4_000, 48, 6) };
    eprintln!("building wide lake: {n_sat} satellites x {} rows (dup {dup})...", n_rows * dup);
    let ctx = wide_lake(n_rows, n_sat, dup, true);
    // The same lake without key metadata: every index build hashes full
    // keys instead of counting-sorting dictionary codes.
    let legacy = wide_lake(n_rows, n_sat, dup, false);

    // Warm-up pass so allocator and page-cache state do not favour either
    // side (on fresh VMs the first run pays first-touch page faults that
    // would otherwise be misattributed to whichever mode ran first). Runs
    // with `cache: false`, which leaves the contexts' caches untouched.
    let _ = discover(&ctx, 1, false, None);
    let _ = discover(&legacy, 1, false, None);

    // ---- Thread scaling (1 worker vs `threads`, both uncached). ----
    let t = Instant::now();
    let r1 = discover(&ctx, 1, false, None);
    let secs_1t = t.elapsed().as_secs_f64();

    const REPS: usize = 5;

    // ---- Cold cache vs uncached vs legacy-uncached: the CI-gated ratios.
    // One sample of each per loop iteration, interleaved, so load drift on
    // a shared box lands on both sides of each ratio instead of biasing
    // whichever mode's measurement phase ran during the slow patch. Cold
    // samples use fresh contexts (a cache is only cold once per context;
    // lake construction stays outside the timer).
    let mut r_cold = discover(&ctx, threads, true, None);
    let cold_stats = r_cold.cache.unwrap_or_default();
    let mut r_uncached = discover(&ctx, threads, false, None);
    let mut r_legacy = discover(&legacy, threads, false, None);
    let mut secs_cold = f64::MAX;
    let mut secs_uncached = f64::MAX;
    let mut secs_uncached_legacy = f64::MAX;
    for _ in 0..REPS {
        let fresh = wide_lake(n_rows, n_sat, dup, true);
        let t = Instant::now();
        r_cold = discover(&fresh, threads, true, None);
        secs_cold = secs_cold.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        r_uncached = discover(&ctx, threads, false, None);
        secs_uncached = secs_uncached.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        r_legacy = discover(&legacy, threads, false, None);
        secs_uncached_legacy = secs_uncached_legacy.min(t.elapsed().as_secs_f64());
    }

    // ---- Warm cache: repeatable on the main context (its cache was
    // populated by the initial cold run above), best-of-REPS.
    let mut r_warm = discover(&ctx, threads, true, None);
    let mut secs_warm = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        r_warm = discover(&ctx, threads, true, None);
        secs_warm = secs_warm.min(t.elapsed().as_secs_f64());
    }
    let warm_stats = r_warm.cache.unwrap_or_default();

    // ---- Budgeted cache: byte budget below the working set, on the warm
    // context. The first budgeted run applies the budget — evicting
    // coldest-first down to it — and later runs serve the surviving subset
    // from the cache while denied indexes rebuild transiently. The budget
    // honours AUTOFEAT_CACHE_BUDGET (the CI budgeted job sets it below the
    // working set), defaulting to 3/4 of the unbounded residency.
    let budget = autofeat_data::env_cache_budget()
        .unwrap_or_else(|| warm_stats.resident_bytes * 3 / 4);
    let mut r_budgeted = discover(&ctx, threads, true, Some(budget));
    // First-application stats carry the eviction burst down to the budget.
    let budgeted_first_stats = r_budgeted.cache.unwrap_or_default();
    let mut secs_budgeted = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        r_budgeted = discover(&ctx, threads, true, Some(budget));
        secs_budgeted = secs_budgeted.min(t.elapsed().as_secs_f64());
    }
    let budgeted_stats = r_budgeted.cache.unwrap_or_default();
    let budget_resident_ok = budgeted_first_stats.peak_resident_bytes <= budget
        && budgeted_stats.peak_resident_bytes <= budget
        && budgeted_stats.resident_bytes <= budget;

    let identical = results_identical(&r1, &r_uncached)
        && results_identical(&r_uncached, &r_legacy)
        && results_identical(&r_uncached, &r_cold)
        && results_identical(&r_cold, &r_warm)
        && results_identical(&r_warm, &r_budgeted);

    let n_joins = r_uncached.n_joins_evaluated;
    let jps = |secs: f64| n_joins as f64 / secs.max(1e-9);
    let (jps_1t, jps_uncached, jps_cold, jps_warm, jps_budgeted) = (
        jps(secs_1t),
        jps(secs_uncached),
        jps(secs_cold),
        jps(secs_warm),
        jps(secs_budgeted),
    );
    // On a single-core box the "N workers" run IS the 1-worker run (threads
    // is clamped above), so a speedup ratio would just be run-to-run noise
    // around 1.0 — report it as not-applicable instead of a bogus number.
    let thread_speedup =
        (avail > 1 && threads > 1).then(|| secs_1t / secs_uncached.max(1e-9));
    let cache_speedup = secs_uncached / secs_warm.max(1e-9);
    let budgeted_speedup = secs_uncached / secs_budgeted.max(1e-9);
    // Cold cached builds must not cost materially more than transient
    // uncached ones (the pre-governance cache was 1.8× worse here).
    const COLD_RATIO_BOUND: f64 = 1.25;
    let cold_ratio = secs_cold / secs_uncached.max(1e-9);
    let cold_within_bound = cold_ratio <= COLD_RATIO_BOUND;
    // The dictionary-coded key domain must keep paying for itself on the
    // uncached hot path (same run, same machine — both sides measured in
    // the interleaved loop above, so the ratio is load-drift-resistant).
    const UNCACHED_SPEEDUP_BOUND: f64 = 1.3;
    let uncached_speedup = secs_uncached_legacy / secs_uncached.max(1e-9);
    let uncached_speedup_ok = uncached_speedup >= UNCACHED_SPEEDUP_BOUND;

    println!(
        "{:<10} {:>8} {:>9} {:>11} {:>9} {:>9} {:>9} {:>11} {:>11} {:>10}",
        "workload", "#joins", "1t_j/s", "uncached_j/s", "cold_j/s", "warm_j/s", "budg_j/s",
        "thread_spd", "cache_spd", "identical"
    );
    println!(
        "{:<10} {:>8} {:>9.1} {:>11.1} {:>9.1} {:>9.1} {:>9.1} {:>11} {:>10.2}x {:>10}",
        if full { "wide-full" } else { "wide" },
        n_joins,
        jps_1t,
        jps_uncached,
        jps_cold,
        jps_warm,
        jps_budgeted,
        thread_speedup.map_or("n/a".to_string(), |s| format!("{s:.2}x")),
        cache_speedup,
        identical,
    );
    println!(
        "cache: cold {} miss(es) / {} hit(s), warm {} miss(es) / {} hit(s), \
         {} index(es) resident ({} bytes), {:?} total build time, cold/uncached {:.2}",
        cold_stats.misses,
        cold_stats.hits,
        warm_stats.misses,
        warm_stats.hits,
        warm_stats.entries,
        warm_stats.resident_bytes,
        cold_stats.build_time,
        cold_ratio,
    );
    println!(
        "key domain: dict-coded uncached {:.4}s vs hashed legacy {:.4}s — {:.2}x speedup \
         (bound {UNCACHED_SPEEDUP_BOUND}x)",
        secs_uncached, secs_uncached_legacy, uncached_speedup,
    );
    println!(
        "governance: budget {} bytes, first application evicted {} index(es) ({} bytes), \
         steady-state {} hit(s) / {} miss(es) / {} rejection(s), peak resident {} bytes, \
         budgeted speedup {:.2}x",
        budget,
        budgeted_first_stats.evictions,
        budgeted_first_stats.evicted_bytes,
        budgeted_stats.hits,
        budgeted_stats.misses,
        budgeted_stats.rejections,
        budgeted_stats.peak_resident_bytes,
        budgeted_speedup,
    );

    let cache_json = |s: &CacheStats| {
        let budget = s
            .budget_bytes
            .map_or("null".to_string(), |b| b.to_string());
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"build_secs\": {:.6}, \"resident_bytes\": {}, \
             \"entries\": {}, \"evictions\": {}, \"evicted_bytes\": {}, \"rejections\": {}, \
             \"peak_resident_bytes\": {}, \"budget_bytes\": {}}}",
            s.hits,
            s.misses,
            s.build_time.as_secs_f64(),
            s.resident_bytes,
            s.entries,
            s.evictions,
            s.evicted_bytes,
            s.rejections,
            s.peak_resident_bytes,
            budget,
        )
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"path_eval_throughput\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"satellites\": {n_sat}, \"rows_per_satellite\": {}, \"dup_per_key\": {dup}}},",
        n_rows * dup
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"available_parallelism\": {avail},");
    let _ = writeln!(json, "  \"n_joins\": {n_joins},");
    let _ = writeln!(json, "  \"secs_1_thread\": {secs_1t:.6},");
    let _ = writeln!(json, "  \"secs_uncached\": {secs_uncached:.6},");
    // `secs_uncached` IS the dict-coded path; the explicit alias plus the
    // legacy (stripped-metadata, hashed-key) time make the comparison
    // greppable without cross-referencing bench versions.
    let _ = writeln!(json, "  \"secs_uncached_dict\": {secs_uncached:.6},");
    let _ = writeln!(json, "  \"secs_uncached_legacy\": {secs_uncached_legacy:.6},");
    let _ = writeln!(json, "  \"secs_cold_cache\": {secs_cold:.6},");
    let _ = writeln!(json, "  \"secs_warm_cache\": {secs_warm:.6},");
    let _ = writeln!(json, "  \"secs_budgeted_cache\": {secs_budgeted:.6},");
    let _ = writeln!(json, "  \"joins_per_sec_1_thread\": {jps_1t:.3},");
    let _ = writeln!(json, "  \"joins_per_sec_uncached\": {jps_uncached:.3},");
    let _ = writeln!(json, "  \"joins_per_sec_cold_cache\": {jps_cold:.3},");
    let _ = writeln!(json, "  \"joins_per_sec_warm_cache\": {jps_warm:.3},");
    let _ = writeln!(json, "  \"joins_per_sec_budgeted_cache\": {jps_budgeted:.3},");
    // `null` (not a fake ~1.0 ratio) when single-core made the comparison
    // meaningless.
    match thread_speedup {
        Some(s) => {
            let _ = writeln!(json, "  \"thread_speedup\": {s:.4},");
        }
        None => {
            let _ = writeln!(json, "  \"thread_speedup\": null,");
        }
    }
    let _ = writeln!(json, "  \"cache_speedup\": {cache_speedup:.4},");
    let _ = writeln!(json, "  \"budgeted_speedup\": {budgeted_speedup:.4},");
    let _ = writeln!(json, "  \"uncached_speedup\": {uncached_speedup:.4},");
    let _ = writeln!(json, "  \"uncached_speedup_bound\": {UNCACHED_SPEEDUP_BOUND},");
    let _ = writeln!(json, "  \"uncached_speedup_ok\": {uncached_speedup_ok},");
    let _ = writeln!(json, "  \"cold_vs_uncached_ratio\": {cold_ratio:.4},");
    let _ = writeln!(json, "  \"cold_ratio_bound\": {COLD_RATIO_BOUND},");
    let _ = writeln!(json, "  \"cold_within_bound\": {cold_within_bound},");
    let _ = writeln!(json, "  \"budget_bytes\": {budget},");
    let _ = writeln!(json, "  \"budget_resident_ok\": {budget_resident_ok},");
    let _ = writeln!(json, "  \"cache_cold\": {},", cache_json(&cold_stats));
    let _ = writeln!(json, "  \"cache_warm\": {},", cache_json(&warm_stats));
    let _ = writeln!(
        json,
        "  \"cache_budgeted_first\": {},",
        cache_json(&budgeted_first_stats)
    );
    let _ = writeln!(json, "  \"cache_budgeted\": {},", cache_json(&budgeted_stats));
    let _ = writeln!(json, "  \"bit_identical\": {identical}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if !identical {
        eprintln!("BIT-IDENTITY VIOLATION: cached/uncached/budgeted/parallel results differ");
        std::process::exit(2);
    }
    if warm_stats.hits == 0 {
        eprintln!("CACHE MISS ANOMALY: warm run recorded zero cache hits");
        std::process::exit(3);
    }
    if !cold_within_bound {
        eprintln!(
            "COLD-CACHE REGRESSION: cold cached run is {cold_ratio:.2}x uncached \
             (bound {COLD_RATIO_BOUND})"
        );
        std::process::exit(4);
    }
    if !budget_resident_ok {
        eprintln!(
            "BUDGET VIOLATION: peak/final residency exceeded the {budget}-byte budget \
             (first peak {}, steady peak {}, resident {})",
            budgeted_first_stats.peak_resident_bytes,
            budgeted_stats.peak_resident_bytes,
            budgeted_stats.resident_bytes,
        );
        std::process::exit(5);
    }
    if !uncached_speedup_ok {
        eprintln!(
            "KEY-DOMAIN REGRESSION: dict-coded uncached run is only {uncached_speedup:.2}x \
             the hashed legacy path (bound {UNCACHED_SPEEDUP_BOUND}x)"
        );
        std::process::exit(6);
    }
}
