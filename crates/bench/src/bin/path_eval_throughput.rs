//! Path-evaluation throughput: joins/sec of the discovery BFS at 1 worker
//! vs N workers.
//!
//! The workload is a synthetic *wide* lake built for this measurement: many
//! sibling satellites hanging off the base table, each with duplicated join
//! keys and enough rows that the per-candidate join work (key hashing +
//! representative fingerprints + relevance) dominates thread overhead. That
//! is the shape the per-level parallel fan-out exists for; the Table II
//! snowflakes are too small (a handful of joins per level) to say anything
//! about scaling.
//!
//! Emits `BENCH_path_eval.json` (hand-rolled JSON — no serde in this
//! workspace) plus a human-readable table, and also verifies the 1-thread
//! and N-thread results are bit-identical, exiting non-zero when not.
//!
//! Usage: `path_eval_throughput [--full] [--threads N] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use autofeat_core::{AutoFeat, AutoFeatConfig, DiscoveryResult, SearchContext};
use autofeat_data::parallel::n_workers;
use autofeat_data::{Column, Table};

/// A base table plus `n_sat` sibling satellites, each `n_rows * dup` rows
/// with `dup` duplicate rows per key (so representative picks are real
/// work), each carrying one feature column.
fn wide_lake(n_rows: usize, n_sat: usize, dup: usize) -> SearchContext {
    let labels: Vec<i64> = (0..n_rows as i64).map(|i| (i * 7) % 2).collect();
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n_rows as i64).map(Some).collect::<Vec<_>>())),
            (
                "b0",
                Column::from_floats(
                    (0..n_rows).map(|i| Some(((i * 29) % 23) as f64)).collect::<Vec<_>>(),
                ),
            ),
            (
                "target",
                Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>()),
            ),
        ],
    )
    .expect("base builds");
    let mut tables = vec![base];
    let mut kfk: Vec<(String, String, String, String)> = Vec::new();
    for j in 0..n_sat {
        let name = format!("sat{j:03}");
        let m = n_rows * dup;
        let keys: Vec<Option<i64>> = (0..m as i64).map(|i| Some(i / dup as i64)).collect();
        let vals: Vec<Option<f64>> = (0..m)
            .map(|i| Some(((i * (13 + j) + j * 7) % 101) as f64))
            .collect();
        tables.push(
            Table::new(
                name.clone(),
                vec![("k", Column::from_ints(keys)), ("f", Column::from_floats(vals))],
            )
            .expect("satellite builds"),
        );
        kfk.push(("base".into(), "k".into(), name, "k".into()));
    }
    SearchContext::from_kfk(tables, &kfk, "base", "target").expect("context builds")
}

fn discover(ctx: &SearchContext, threads: usize) -> DiscoveryResult {
    AutoFeat::new(AutoFeatConfig::paper().with_seed(42).with_threads(threads))
        .discover(ctx)
        .expect("discovery runs")
}

/// Everything except `threads_used`/`elapsed`, compared to the bit.
fn results_identical(a: &DiscoveryResult, b: &DiscoveryResult) -> bool {
    a.ranked.len() == b.ranked.len()
        && a.ranked.iter().zip(&b.ranked).all(|(x, y)| {
            x.path == y.path
                && x.score.to_bits() == y.score.to_bits()
                && x.features == y.features
        })
        && a.n_joins_evaluated == b.n_joins_evaluated
        && a.n_pruned_unjoinable == b.n_pruned_unjoinable
        && a.n_pruned_quality == b.n_pruned_quality
        && a.truncation == b.truncation
        && a.selected_features == b.selected_features
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(n_workers)
        .max(2);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_path_eval.json".to_string());

    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if avail < threads {
        eprintln!(
            "note: measuring {threads} workers on {avail} core(s) — expect overhead, not \
             speedup; the bit-identity check is still meaningful"
        );
    }

    let (n_rows, n_sat, dup) = if full { (8_000, 96, 6) } else { (4_000, 48, 6) };
    eprintln!("building wide lake: {n_sat} satellites x {} rows (dup {dup})...", n_rows * dup);
    let ctx = wide_lake(n_rows, n_sat, dup);

    // Warm-up pass so allocator state does not favour either side.
    let _ = discover(&ctx, 1);

    let t = Instant::now();
    let r1 = discover(&ctx, 1);
    let secs_1t = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let rn = discover(&ctx, threads);
    let secs_nt = t.elapsed().as_secs_f64();

    let identical = results_identical(&r1, &rn);
    let n_joins = r1.n_joins_evaluated;
    let jps_1t = n_joins as f64 / secs_1t.max(1e-9);
    let jps_nt = n_joins as f64 / secs_nt.max(1e-9);
    let speedup = secs_1t / secs_nt.max(1e-9);

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "workload", "#joins", "1t_secs", "nt_secs", "1t_j/s", "nt_j/s", "speedup", "identical"
    );
    println!(
        "{:<10} {:>8} {:>10.4} {:>10.4} {:>9.1} {:>9.1} {:>8.2}x {:>10}",
        if full { "wide-full" } else { "wide" },
        n_joins,
        secs_1t,
        secs_nt,
        jps_1t,
        jps_nt,
        speedup,
        identical,
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"path_eval_throughput\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"satellites\": {n_sat}, \"rows_per_satellite\": {}, \"dup_per_key\": {dup}}},",
        n_rows * dup
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"available_parallelism\": {avail},");
    let _ = writeln!(json, "  \"n_joins\": {n_joins},");
    let _ = writeln!(json, "  \"secs_1_thread\": {secs_1t:.6},");
    let _ = writeln!(json, "  \"secs_n_threads\": {secs_nt:.6},");
    let _ = writeln!(json, "  \"joins_per_sec_1_thread\": {jps_1t:.3},");
    let _ = writeln!(json, "  \"joins_per_sec_n_threads\": {jps_nt:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "  \"bit_identical\": {identical}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if !identical {
        eprintln!("BIT-IDENTITY VIOLATION: parallel result differs from sequential");
        std::process::exit(2);
    }
}
