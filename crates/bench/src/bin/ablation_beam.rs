//! Extension ablation (beyond the paper): **beam pruning** of the BFS
//! frontier — the "more aggressive pruning strategies" the paper's
//! future-work section anticipates for dense data lakes. Compares
//! exhaustive level expansion with beams of several widths on the data-lake
//! setting: joins evaluated, feature-selection time, and accuracy.
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin ablation_beam [-- --full]
//! ```

use autofeat_bench::{context_from_lake, specs, wants_full};
use autofeat_core::{train_top_k, AutoFeat, AutoFeatConfig};
use autofeat_ml::eval::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = wants_full(&args);
    println!("Beam-pruning ablation — data-lake setting (LightGBM)\n");
    println!(
        "{:<12} {:>8} {:>9} {:>12} {:>10}",
        "dataset", "beam", "#joins", "fs_time_s", "accuracy"
    );
    for spec in specs(full) {
        let ctx = context_from_lake(&spec.build_lake());
        for beam in [None, Some(16usize), Some(8), Some(4)] {
            let cfg = AutoFeatConfig {
                beam_width: beam,
                seed: spec.seed,
                ..AutoFeatConfig::paper()
            };
            let discovery = AutoFeat::new(cfg.clone()).discover(&ctx).expect("discovery");
            let out = train_top_k(&ctx, &discovery, &[ModelKind::LightGbm], &cfg)
                .expect("train");
            println!(
                "{:<12} {:>8} {:>9} {:>12.3} {:>10.3}",
                spec.name,
                beam.map(|b| b.to_string()).unwrap_or_else(|| "∞".into()),
                discovery.n_joins_evaluated,
                discovery.elapsed.as_secs_f64(),
                out.result.mean_accuracy(),
            );
        }
        println!();
    }
    println!("Expected shape: narrower beams evaluate fewer joins and run faster; accuracy");
    println!("holds while the beam keeps the top-scored (signal-carrying) branches.");
}
