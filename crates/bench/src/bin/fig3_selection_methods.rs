//! Regenerates **Figure 3**: the empirical comparison of (a) relevance
//! methods — IG, SU, Pearson, Spearman, Relief — and (b) redundancy
//! methods — MIFS, MRMR, CIFE, JMI, CMIM — by aggregated accuracy and
//! runtime over the six feature-selection-study datasets (§V).
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig3_selection_methods [-- relevance|redundancy]
//! ```

use std::time::Instant;

use autofeat_data::encode::to_matrix;
use autofeat_data::sample::train_test_split;
use autofeat_datagen::selection_study_datasets;
use autofeat_metrics::discretize::{discretize_equal_frequency, Discretized};
use autofeat_metrics::redundancy::{RedundancyMethod, RedundancyScorer};
use autofeat_metrics::relevance::{RelevanceMethod, DEFAULT_BINS};
use autofeat_metrics::selection::{select_k_best, select_non_redundant};
use autofeat_ml::eval::{accuracy, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KAPPA: usize = 10;

struct Prepared {
    train: autofeat_data::encode::Matrix,
    test: autofeat_data::encode::Matrix,
}

fn prepare() -> Vec<Prepared> {
    selection_study_datasets()
        .into_iter()
        .enumerate()
        .map(|(i, gt)| {
            let mut rng = StdRng::seed_from_u64(900 + i as u64);
            let split = train_test_split(&gt.table, &gt.label, 0.2, &mut rng).expect("split");
            let features = gt.feature_names();
            Prepared {
                train: to_matrix(&split.train, &features, &gt.label).expect("matrix"),
                test: to_matrix(&split.test, &features, &gt.label).expect("matrix"),
            }
        })
        .collect()
}

fn train_gbdt(
    train: &autofeat_data::encode::Matrix,
    test: &autofeat_data::encode::Matrix,
    keep: &[usize],
) -> f64 {
    if keep.is_empty() {
        return 0.0;
    }
    let tr = train.select_features(keep);
    let te = test.select_features(keep);
    let mut model = ModelKind::LightGbm.build(0);
    match model.fit(&tr) {
        Ok(()) => accuracy(&model.predict(&te), &te.labels),
        Err(_) => 0.0,
    }
}

fn relevance_study(data: &[Prepared]) {
    println!("Figure 3a — relevance methods (κ = {KAPPA}, GBDT, {} datasets)", data.len());
    println!("{:<10} {:>14} {:>16}", "method", "mean_accuracy", "selection_ms");
    for method in RelevanceMethod::all() {
        let mut accs = Vec::new();
        let mut elapsed = 0.0f64;
        for d in data {
            let t0 = Instant::now();
            let picked = select_k_best(&d.train.cols, &d.train.labels, method, KAPPA, 0.0);
            elapsed += t0.elapsed().as_secs_f64() * 1000.0;
            let keep: Vec<usize> = picked.iter().map(|s| s.index).collect();
            accs.push(train_gbdt(&d.train, &d.test, &keep));
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{:<10} {:>14.3} {:>16.2}", method.name(), mean, elapsed);
    }
}

fn redundancy_study(data: &[Prepared]) {
    println!(
        "\nFigure 3b — redundancy methods (Spearman pre-ranking, κ = {KAPPA}, GBDT, {} datasets)",
        data.len()
    );
    println!("{:<10} {:>14} {:>16}", "method", "mean_accuracy", "selection_ms");
    for method in RedundancyMethod::all() {
        let scorer = RedundancyScorer::new(method);
        let mut accs = Vec::new();
        let mut elapsed = 0.0f64;
        for d in data {
            // Common relevance pre-ranking, then the timed redundancy pass.
            let ranked = select_k_best(
                &d.train.cols,
                &d.train.labels,
                RelevanceMethod::Spearman,
                d.train.n_features(),
                0.0,
            );
            let codes: Vec<(usize, Discretized)> = ranked
                .iter()
                .map(|s| (s.index, discretize_equal_frequency(&d.train.cols[s.index], DEFAULT_BINS)))
                .collect();
            let labels =
                Discretized::from_codes(d.train.labels.iter().map(|&l| Some(l)));
            let t0 = Instant::now();
            let cands: Vec<(usize, &Discretized)> =
                codes.iter().map(|(i, c)| (*i, c)).collect();
            let kept = select_non_redundant(&cands, &[], &labels, &scorer);
            elapsed += t0.elapsed().as_secs_f64() * 1000.0;
            let keep: Vec<usize> = kept.iter().take(KAPPA).map(|s| s.index).collect();
            accs.push(train_gbdt(&d.train, &d.test, &keep));
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{:<10} {:>14.3} {:>16.2}", method.name(), mean, elapsed);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("both");
    let data = prepare();
    if which == "relevance" || which == "both" {
        relevance_study(&data);
    }
    if which == "redundancy" || which == "both" {
        redundancy_study(&data);
    }
    println!("\nExpected shape (paper): Pearson/Spearman ≈ 3x faster than SU/IG and more");
    println!("accurate; Relief cheap but weaker. MIFS/MRMR ≈ 3x faster than CIFE/JMI/CMIM;");
    println!("JMI most accurate; MRMR the balanced choice.");
}
