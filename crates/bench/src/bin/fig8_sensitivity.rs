//! Regenerates **Figure 8**: hyper-parameter sensitivity.
//!
//! * 8a — κ ∈ {2, 4, 6, 8, 10, 15, 20}: accuracy and feature-selection
//!   time, aggregated over the datasets;
//! * 8b — τ ∈ [0.05, 1.0] step 0.05: per-dataset accuracy and FS time,
//!   with closer looks at the τ-sensitive datasets (8c/8d; in our corpus
//!   `covertype` and `school`, as in the paper).
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin fig8_sensitivity [-- kappa|tau] [--full]
//! ```

use autofeat_bench::{context_from_snowflake, specs, wants_full};
use autofeat_core::{train_top_k, AutoFeat, AutoFeatConfig, SearchContext};
use autofeat_ml::eval::ModelKind;

const MODEL: [ModelKind; 1] = [ModelKind::LightGbm];

fn run_with(ctx: &SearchContext, cfg: &AutoFeatConfig) -> (f64, f64, bool) {
    let discovery = AutoFeat::new(cfg.clone()).discover(ctx).expect("discovery");
    let produced_output = !discovery.ranked.is_empty();
    let out = train_top_k(ctx, &discovery, &MODEL, cfg).expect("train");
    (
        out.result.mean_accuracy(),
        discovery.elapsed.as_secs_f64(),
        produced_output,
    )
}

fn kappa_sweep(contexts: &[(String, SearchContext)]) {
    println!("Figure 8a — sensitivity to κ (aggregated over {} datasets)", contexts.len());
    println!("{:>6} {:>14} {:>14}", "kappa", "mean_accuracy", "fs_time_s");
    for kappa in [2usize, 4, 6, 8, 10, 15, 20] {
        let mut accs = Vec::new();
        let mut fs = 0.0;
        for (_, ctx) in contexts {
            let cfg = AutoFeatConfig { top_k: 2, ..AutoFeatConfig::paper() }.with_kappa(kappa);
            let (a, t, _) = run_with(ctx, &cfg);
            accs.push(a);
            fs += t;
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{:>6} {:>14.3} {:>14.3}", kappa, mean, fs);
    }
    println!("Expected shape: accuracy climbs to κ ≈ 10-15 then saturates; time grows with κ.\n");
}

fn tau_sweep(contexts: &[(String, SearchContext)]) {
    println!("Figure 8b-d — sensitivity to τ (per dataset)");
    println!("{:<12} {:>6} {:>10} {:>12} {:>8}", "dataset", "tau", "accuracy", "fs_time_s", "output");
    for (name, ctx) in contexts {
        let mut tau = 0.05f64;
        while tau <= 1.0 + 1e-9 {
            let cfg = AutoFeatConfig { top_k: 2, ..AutoFeatConfig::paper() }.with_tau(tau);
            let (a, t, produced) = run_with(ctx, &cfg);
            println!(
                "{:<12} {:>6.2} {:>10.3} {:>12.3} {:>8}",
                name,
                tau,
                a,
                t,
                if produced { "yes" } else { "none" }
            );
            tau += 0.05;
        }
        println!();
    }
    println!("Expected shape: flat for τ ≤ 0.6; for larger τ more tables are pruned (time");
    println!("drops, accuracy can drop); τ = 1 is over-restrictive and can yield no output");
    println!("on datasets without perfect key matches (the paper's school case).");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .skip(1)
        .find(|a| *a == "kappa" || *a == "tau")
        .map(String::as_str)
        .unwrap_or("both");
    let full = wants_full(&args);

    let contexts: Vec<(String, SearchContext)> = specs(full)
        .into_iter()
        .map(|spec| {
            (spec.name.to_string(), context_from_snowflake(&spec.build_snowflake()))
        })
        .collect();

    if which == "kappa" || which == "both" {
        kappa_sweep(&contexts);
    }
    if which == "tau" || which == "both" {
        tau_sweep(&contexts);
    }
}
