//! Export the synthetic evaluation corpus as CSV files — the analog of the
//! paper repository's bundled dataset sources. Each Table II dataset gets a
//! directory with its base table, satellites, and a `kfk_edges.csv`
//! manifest; the data-lake variant (decoy columns included) goes to a
//! `lake/` subdirectory.
//!
//! ```text
//! cargo run --release -p autofeat-bench --bin export_corpus -- [out_dir] [--full]
//! ```

use std::fs;
use std::path::PathBuf;

use autofeat_bench::{specs, wants_full};
use autofeat_data::csv::write_csv;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir: PathBuf = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("corpus"));
    let full = wants_full(&args);

    for spec in specs(full) {
        let dir = out_dir.join(spec.name);
        fs::create_dir_all(&dir).expect("create dataset dir");

        // Benchmark setting: snowflake + KFK manifest.
        let sf = spec.build_snowflake();
        for t in sf.all_tables() {
            write_csv(t, dir.join(format!("{}.csv", t.name()))).expect("write table");
        }
        let mut manifest = String::from("parent_table,parent_column,child_table,child_column\n");
        for e in &sf.kfk {
            manifest.push_str(&format!(
                "{},{},{},{}\n",
                e.parent_table, e.parent_column, e.child_table, e.child_column
            ));
        }
        fs::write(dir.join("kfk_edges.csv"), manifest).expect("write manifest");

        // Data-lake setting: corrupted tables, no manifest.
        let lake = spec.build_lake();
        let lake_dir = dir.join("lake");
        fs::create_dir_all(&lake_dir).expect("create lake dir");
        for t in &lake.tables {
            write_csv(t, lake_dir.join(format!("{}.csv", t.name()))).expect("write lake table");
        }
        println!(
            "exported {:<12} {} tables + lake variant -> {}",
            spec.name,
            sf.all_tables().len(),
            dir.display()
        );
    }
    println!("\nLabel column: `target` in each base.csv; KFK edges in kfk_edges.csv.");
}
