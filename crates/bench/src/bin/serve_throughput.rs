//! Serving throughput: requests/sec of a resident [`DiscoveryService`] under
//! concurrent clients — the serving-model counterpart of
//! `path_eval_throughput` (which measures one run's internal fan-out).
//!
//! One service is built over a synthetic wide lake and its cache warmed;
//! then the same discovery request is served:
//!
//! * **serialized** — one thread, back to back: the baseline a resident
//!   service must beat (it is what "load a lake per request" degenerates to
//!   on a warm page cache);
//! * **concurrently** — 1, 4, and 8 client threads, each issuing its own
//!   stream of requests against the shared service.
//!
//! Every request runs with `threads: 1`, so all parallelism in the
//! concurrent rows comes from request-level concurrency — the thing this
//! benchmark exists to measure — not from the per-request fan-out pool.
//! Every result must be bit-identical to the solo reference: the serving
//! model promises concurrency changes throughput, never answers.
//!
//! The telemetry layer (DESIGN.md §3k) is gated here too: an unmetered
//! twin service (`DiscoveryService::new_unmetered`) serves the same
//! workload, and alternating best-of-3 rounds pin the metrics-on /
//! metrics-off rps ratio (`metrics_overhead`) above 0.97 — telemetry may
//! cost at most 3% throughput — while both services' results stay
//! bit-identical to the solo reference. A live `/metrics` scrape over the
//! TCP stats listener is validated (parseable Prometheus text with latency
//! quantiles, outcome counters, and cache gauges) and written to
//! `METRICS_scrape.txt` as a CI artifact.
//!
//! Emits `BENCH_serving.json` (hand-rolled JSON — no serde in this
//! workspace) plus a human-readable table. Exit codes gate the serving
//! contract: 2 = a concurrent result differed from the solo reference,
//! 3 = a round completed with zero throughput, 4 = 4-client aggregate rps
//! failed to beat the serialized baseline by the required margin (only
//! gated when the box has ≥4 cores; on smaller boxes the ratio is reported
//! as `null`), 5 = telemetry overhead exceeded its 3% budget, 6 = the
//! `/metrics` scrape was missing or malformed.
//!
//! Usage: `serve_throughput [--full] [--out PATH] [--scrape-out PATH]`

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::sync::Barrier;
use std::thread;
use std::time::{Duration, Instant};

use autofeat_core::{
    AutoFeatConfig, DiscoveryRequest, DiscoveryResult, DiscoveryService, SearchContext,
};
use autofeat_data::{Column, Table};

/// A base table plus `n_sat` sibling satellites, each `n_rows * dup` rows
/// with `dup` duplicate rows per key, each carrying one feature column —
/// the same shape `path_eval_throughput` measures, sized for many requests.
fn wide_lake(n_rows: usize, n_sat: usize, dup: usize) -> SearchContext {
    let labels: Vec<i64> = (0..n_rows as i64).map(|i| (i * 7) % 2).collect();
    let base = Table::new(
        "base",
        vec![
            ("k", Column::from_ints((0..n_rows as i64).map(Some).collect::<Vec<_>>())),
            (
                "b0",
                Column::from_floats(
                    (0..n_rows).map(|i| Some(((i * 29) % 23) as f64)).collect::<Vec<_>>(),
                ),
            ),
            (
                "target",
                Column::from_ints(labels.iter().copied().map(Some).collect::<Vec<_>>()),
            ),
        ],
    )
    .expect("base builds");
    let mut tables = vec![base];
    let mut kfk: Vec<(String, String, String, String)> = Vec::new();
    for j in 0..n_sat {
        let name = format!("sat{j:03}");
        let m = n_rows * dup;
        let keys: Vec<Option<i64>> = (0..m as i64).map(|i| Some(i / dup as i64)).collect();
        let vals: Vec<Option<f64>> = (0..m)
            .map(|i| Some(((i * (13 + j) + j * 7) % 101) as f64))
            .collect();
        tables.push(
            Table::new(
                name.clone(),
                vec![("k", Column::from_ints(keys)), ("f", Column::from_floats(vals))],
            )
            .expect("satellite builds"),
        );
        kfk.push(("base".into(), "k".into(), name, "k".into()));
    }
    SearchContext::from_kfk(tables, &kfk, "base", "target").expect("context builds")
}

/// Everything except `threads_used`/`elapsed`/`cache`, compared to the bit.
fn results_identical(a: &DiscoveryResult, b: &DiscoveryResult) -> bool {
    a.ranked.len() == b.ranked.len()
        && a.ranked.iter().zip(&b.ranked).all(|(x, y)| {
            x.path == y.path
                && x.score.to_bits() == y.score.to_bits()
                && x.features == y.features
        })
        && a.n_joins_evaluated == b.n_joins_evaluated
        && a.n_pruned_unjoinable == b.n_pruned_unjoinable
        && a.n_pruned_quality == b.n_pruned_quality
        && a.n_pruned_similarity == b.n_pruned_similarity
        && a.n_pruned_budget == b.n_pruned_budget
        && a.truncation == b.truncation
        && a.selected_features == b.selected_features
}

/// One measured round: aggregate wall time plus every request's latency.
struct Round {
    clients: usize,
    requests: usize,
    secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    identical: bool,
}

impl Round {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.secs.max(1e-9)
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// `clients` threads, each serving `per_client` identical requests against
/// the shared service; a barrier lines the clients up so the timer measures
/// steady concurrent load, not spawn staggering.
fn run_round(
    service: &DiscoveryService,
    reference: &DiscoveryResult,
    cfg: &AutoFeatConfig,
    clients: usize,
    per_client: usize,
) -> Round {
    let barrier = Barrier::new(clients + 1);
    let (latencies, identical, secs) = thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (barrier, cfg) = (&barrier, cfg);
                s.spawn(move || {
                    barrier.wait();
                    let mut lats = Vec::with_capacity(per_client);
                    let mut ok = true;
                    for _ in 0..per_client {
                        let t = Instant::now();
                        let r = service
                            .submit(&DiscoveryRequest::new().with_config(cfg.clone()))
                            .expect("request serves");
                        lats.push(t.elapsed());
                        ok &= results_identical(reference, &r);
                    }
                    (lats, ok)
                })
            })
            .collect();
        barrier.wait();
        let t = Instant::now();
        let mut lats: Vec<Duration> = Vec::with_capacity(clients * per_client);
        let mut identical = true;
        for h in handles {
            let (l, ok) = h.join().expect("client thread");
            lats.extend(l);
            identical &= ok;
        }
        (lats, identical, t.elapsed().as_secs_f64())
    });
    let mut ms: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.total_cmp(b));
    Round {
        clients,
        requests: clients * per_client,
        secs,
        p50_ms: percentile(&ms, 0.50),
        p99_ms: percentile(&ms, 0.99),
        identical,
    }
}

/// Series every scrape must expose (the ISSUE 9 acceptance surface):
/// request-latency quantiles, outcome counters, cache gauges.
const REQUIRED_SCRAPE_SERIES: [&str; 7] = [
    "autofeat_request_latency_seconds_p50",
    "autofeat_request_latency_seconds_p99",
    "autofeat_requests_ok_total",
    "autofeat_requests_truncated_total",
    "autofeat_cache_resident_bytes",
    "autofeat_cache_hit_ratio",
    "autofeat_in_flight",
];

/// Start the service's TCP stats listener on an ephemeral port, issue one
/// `GET /metrics` over a real socket, and validate the exposition: HTTP
/// 200, every sample line `name value` with a float-parseable value, and
/// all of [`REQUIRED_SCRAPE_SERIES`] present. Returns the scrape body.
fn scrape_metrics(service: &DiscoveryService) -> Result<String, String> {
    let mut listener = service
        .serve_metrics("127.0.0.1:0")
        .map_err(|e| format!("cannot start stats listener: {e}"))?;
    let addr = listener.local_addr();
    let body = (|| -> Result<String, String> {
        let mut stream = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        write!(stream, "GET /metrics HTTP/1.0\r\nHost: bench\r\n\r\n")
            .map_err(|e| format!("request failed: {e}"))?;
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .map_err(|e| format!("response read failed: {e}"))?;
        let (head, body) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| "malformed HTTP response (no header/body split)".to_string())?;
        if !head.starts_with("HTTP/1.0 200") {
            return Err(format!("non-200 scrape status: {}", head.lines().next().unwrap_or("")));
        }
        for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let value = line.rsplit_once(' ').map(|(_, v)| v).unwrap_or("");
            if value.parse::<f64>().is_err() {
                return Err(format!("unparseable exposition line: {line}"));
            }
        }
        for series in REQUIRED_SCRAPE_SERIES {
            if !body.contains(series) {
                return Err(format!("scrape missing required series {series}"));
            }
        }
        Ok(body.to_string())
    })();
    listener.stop();
    body
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    let scrape_path = args
        .iter()
        .position(|a| a == "--scrape-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "METRICS_scrape.txt".to_string());
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let (n_rows, n_sat, dup, per_client) =
        if full { (4_000, 48, 6, 6) } else { (2_000, 24, 4, 4) };
    eprintln!("building wide lake: {n_sat} satellites x {} rows (dup {dup})...", n_rows * dup);
    // Per-request `threads: 1`: concurrency comes from clients, not the
    // per-request fan-out — see the module docs.
    let cfg = AutoFeatConfig::paper().with_seed(42).with_threads(1).with_cache(true);
    let service = DiscoveryService::new(wide_lake(n_rows, n_sat, dup), cfg.clone());

    // Solo reference + cache warm-up: the first run builds every join
    // index, the second serves pure hits and is the identity reference
    // (cold and warm answers are bit-identical; the second also confirms
    // the warm path before anything is timed against it).
    let cold = service
        .submit(&DiscoveryRequest::new())
        .expect("warming run serves");
    let reference = service
        .submit(&DiscoveryRequest::new())
        .expect("reference run serves");
    if !results_identical(&cold, &reference) {
        eprintln!("BIT-IDENTITY VIOLATION: cold and warm solo runs differ");
        std::process::exit(2);
    }
    let warm_stats = reference.cache.unwrap_or_default();

    // Serialized baseline: one thread, back to back — run as a 1-client
    // "round" so it is measured by exactly the same harness.
    let serialized = run_round(&service, &reference, &cfg, 1, 2 * per_client);

    // Concurrent rounds. 1 client re-measures the serialized shape under
    // the harness's concurrent bookkeeping; 4 and 8 are the load rows.
    let rounds: Vec<Round> = [1usize, 4, 8]
        .iter()
        .map(|&c| run_round(&service, &reference, &cfg, c, per_client))
        .collect();

    // Telemetry overhead: an unmetered twin over an identical lake serves
    // the same rounds. Alternating best-of-3 cancels drift (thermal, page
    // cache) that a measure-all-of-A-then-all-of-B design would absorb
    // into the ratio; best-of discards scheduler noise.
    const OVERHEAD_BOUND: f64 = 0.97; // metrics-on must keep ≥97% of rps
    eprintln!("measuring telemetry overhead (metered vs unmetered twin)...");
    let unmetered = DiscoveryService::new_unmetered(wide_lake(n_rows, n_sat, dup), cfg.clone());
    unmetered.submit(&DiscoveryRequest::new()).expect("unmetered warming run serves");
    let unmetered_reference =
        unmetered.submit(&DiscoveryRequest::new()).expect("unmetered reference serves");
    let telemetry_identical = results_identical(&reference, &unmetered_reference);
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    let mut overhead_identical = true;
    for _ in 0..3 {
        let on = run_round(&service, &reference, &cfg, 4, per_client);
        let off = run_round(&unmetered, &unmetered_reference, &cfg, 4, per_client);
        overhead_identical &= on.identical && off.identical;
        best_on = best_on.max(on.rps());
        best_off = best_off.max(off.rps());
    }
    let metrics_overhead = best_on / best_off.max(1e-9);
    let metrics_overhead_ok = metrics_overhead >= OVERHEAD_BOUND;

    // Live exposition over a real socket, saved as a CI artifact.
    let scrape = scrape_metrics(&service);
    let scrape_ok = scrape.is_ok();
    match &scrape {
        Ok(body) => {
            if let Err(e) = std::fs::write(&scrape_path, body) {
                eprintln!("cannot write {scrape_path}: {e}");
            } else {
                println!("wrote {scrape_path}");
            }
        }
        Err(e) => eprintln!("SCRAPE FAILURE: {e}"),
    }

    let identical = serialized.identical
        && rounds.iter().all(|r| r.identical)
        && telemetry_identical
        && overhead_identical;
    let zero_throughput = serialized.rps() <= 0.0 || rounds.iter().any(|r| r.rps() <= 0.0);

    // The resident-service claim: with 4 cores to serve 4 clients, the
    // aggregate must clearly beat serialized dispatch. On smaller boxes the
    // clients time-slice one core and the ratio is noise around 1.0 —
    // reported as null, never gated.
    const SPEEDUP_BOUND: f64 = 1.5;
    let four = rounds.iter().find(|r| r.clients == 4).expect("4-client round runs");
    let serving_speedup_4 = (avail >= 4).then(|| four.rps() / serialized.rps().max(1e-9));
    let speedup_ok = serving_speedup_4.is_none_or(|s| s > SPEEDUP_BOUND);

    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "round", "clients", "requests", "rps", "p50_ms", "p99_ms", "identical"
    );
    let row = |name: &str, r: &Round| {
        println!(
            "{:<12} {:>9} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>10}",
            name,
            r.clients,
            r.requests,
            r.rps(),
            r.p50_ms,
            r.p99_ms,
            r.identical,
        );
    };
    row("serialized", &serialized);
    for r in &rounds {
        row(&format!("{}-client", r.clients), r);
    }
    println!(
        "service: {} request(s) served, cache {} hit(s) / {} miss(es), \
         {} index(es) resident ({} bytes), serving_speedup_4 {}",
        service.stats().requests_served,
        service.stats().cache.hits,
        service.stats().cache.misses,
        warm_stats.entries,
        warm_stats.resident_bytes,
        serving_speedup_4.map_or("n/a".to_string(), |s| format!("{s:.2}x")),
    );
    println!(
        "telemetry: metrics_overhead {metrics_overhead:.4} (on {best_on:.1} rps / off \
         {best_off:.1} rps, bound {OVERHEAD_BOUND}), scrape {}",
        if scrape_ok { "ok" } else { "FAILED" },
    );

    let round_json = |r: &Round| {
        format!(
            "{{\"clients\": {}, \"requests\": {}, \"secs\": {:.6}, \"rps\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"identical\": {}}}",
            r.clients,
            r.requests,
            r.secs,
            r.rps(),
            r.p50_ms,
            r.p99_ms,
            r.identical,
        )
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_throughput\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"satellites\": {n_sat}, \"rows_per_satellite\": {}, \"dup_per_key\": {dup}}},",
        n_rows * dup
    );
    let _ = writeln!(json, "  \"available_parallelism\": {avail},");
    let _ = writeln!(json, "  \"requests_per_client\": {per_client},");
    let _ = writeln!(json, "  \"serialized\": {},", round_json(&serialized));
    for r in &rounds {
        let _ = writeln!(json, "  \"clients_{}\": {},", r.clients, round_json(r));
    }
    match serving_speedup_4 {
        Some(s) => {
            let _ = writeln!(json, "  \"serving_speedup_4\": {s:.4},");
        }
        None => {
            let _ = writeln!(json, "  \"serving_speedup_4\": null,");
        }
    }
    let _ = writeln!(json, "  \"speedup_bound\": {SPEEDUP_BOUND},");
    let _ = writeln!(json, "  \"speedup_ok\": {speedup_ok},");
    let _ = writeln!(json, "  \"cache_hits\": {},", service.stats().cache.hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", service.stats().cache.misses);
    let _ = writeln!(json, "  \"metrics_overhead\": {metrics_overhead:.4},");
    let _ = writeln!(json, "  \"metrics_overhead_bound\": {OVERHEAD_BOUND},");
    let _ = writeln!(json, "  \"metrics_overhead_ok\": {metrics_overhead_ok},");
    let _ = writeln!(json, "  \"scrape_ok\": {scrape_ok},");
    let _ = writeln!(json, "  \"bit_identical\": {identical}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if !identical {
        eprintln!("BIT-IDENTITY VIOLATION: a concurrently served result differs from solo");
        std::process::exit(2);
    }
    if zero_throughput {
        eprintln!("THROUGHPUT ANOMALY: a round reported zero requests/sec");
        std::process::exit(3);
    }
    if !speedup_ok {
        eprintln!(
            "SERVING REGRESSION: 4-client aggregate is {:.2}x serialized \
             (bound {SPEEDUP_BOUND}x, {avail} cores)",
            serving_speedup_4.unwrap_or(0.0),
        );
        std::process::exit(4);
    }
    if !metrics_overhead_ok {
        eprintln!(
            "TELEMETRY OVERHEAD: metrics-on serves {metrics_overhead:.4}x the \
             metrics-off rps (bound {OVERHEAD_BOUND}); telemetry must cost < 3%"
        );
        std::process::exit(5);
    }
    if !scrape_ok {
        eprintln!("SCRAPE GATE: /metrics was missing or malformed (see above)");
        std::process::exit(6);
    }
}
