//! # autofeat-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§V and §VII), plus Criterion micro-benchmarks.
//!
//! | target | reproduces |
//! |---|---|
//! | `table2_datasets` | Table II (dataset overview) |
//! | `fig3_selection_methods` | Fig. 3a/3b (relevance & redundancy methods) |
//! | `fig4_benchmark_setting` | Fig. 4 (benchmark setting, tree models) |
//! | `fig5_benchmark_nontree` | Fig. 5 (benchmark setting, KNN & LR) |
//! | `fig6_lake_setting` | Fig. 6 (data-lake setting, tree models) |
//! | `fig7_lake_nontree` | Fig. 7 (data-lake setting, KNN & LR) |
//! | `fig8_sensitivity` | Fig. 8 (κ and τ sensitivity) |
//! | `fig9_ablation` | Fig. 9 (metric ablation) |
//! | `fig1_summary` | Fig. 1 (accuracy vs. augmentation-time summary) |
//!
//! Every binary accepts `--full` to run all eight datasets (default: a
//! four-dataset quick subset so a full sweep stays laptop-friendly) and
//! prints machine-grepable rows.

use std::time::Duration;

use autofeat_core::baselines::{
    run_arda, run_base, run_join_all, run_mab, ArdaConfig, JoinAllConfig, MabConfig,
};
use autofeat_core::{train_top_k, AutoFeat, AutoFeatConfig, MethodResult, SearchContext};
use autofeat_datagen::registry::{table2_datasets, DatasetSpec};
use autofeat_datagen::{Snowflake, lake::Lake};
use autofeat_discovery::SchemaMatcher;
use autofeat_ml::eval::ModelKind;

/// Datasets used when `--full` is not given: the four cheapest of Table II.
pub const QUICK_SET: [&str; 4] = ["credit", "eyemove", "steel", "school"];

/// Parse CLI args for the shared `--full` flag.
pub fn wants_full(args: &[String]) -> bool {
    args.iter().any(|a| a == "--full")
}

/// The dataset specs for a run.
pub fn specs(full: bool) -> Vec<DatasetSpec> {
    table2_datasets()
        .into_iter()
        .filter(|d| full || QUICK_SET.contains(&d.name))
        .collect()
}

/// Build the benchmark-setting context from a snowflake.
pub fn context_from_snowflake(sf: &Snowflake) -> SearchContext {
    let tables = sf.all_tables().into_iter().cloned().collect();
    let kfk: Vec<(String, String, String, String)> = sf
        .kfk
        .iter()
        .map(|e| {
            (
                e.parent_table.clone(),
                e.parent_column.clone(),
                e.child_table.clone(),
                e.child_column.clone(),
            )
        })
        .collect();
    SearchContext::from_kfk(tables, &kfk, sf.base.name().to_string(), sf.label.clone())
        .expect("snowflake context builds")
}

/// Build the data-lake-setting context from a corrupted lake.
pub fn context_from_lake(lake: &Lake) -> SearchContext {
    SearchContext::from_discovery(
        lake.tables.clone(),
        &SchemaMatcher::paper_default(),
        lake.base_name.clone(),
        lake.label.clone(),
    )
    .expect("lake context builds")
}

/// The AutoFeat configuration the experiments use (the paper's
/// hyper-parameters: τ = 0.65, κ = 15, Spearman + MRMR, top-k = 4).
pub fn bench_config(seed: u64) -> AutoFeatConfig {
    AutoFeatConfig::paper().with_seed(seed)
}

/// Run AutoFeat end-to-end and produce its [`MethodResult`].
pub fn run_autofeat(
    ctx: &SearchContext,
    models: &[ModelKind],
    seed: u64,
) -> MethodResult {
    let cfg = bench_config(seed);
    let discovery = AutoFeat::new(cfg.clone()).discover(ctx).expect("discovery runs");
    train_top_k(ctx, &discovery, models, &cfg)
        .expect("training runs")
        .result
}

/// Which baselines to include in a sweep.
#[derive(Debug, Clone, Copy)]
pub struct MethodSet {
    /// Include JoinAll / JoinAll+F (omitted in the data-lake setting).
    pub join_all: bool,
}

/// Run every method on one context. JoinAll entries are omitted when
/// infeasible (Eq. 3 over budget), mirroring the paper's missing bars.
pub fn run_all_methods(
    ctx: &SearchContext,
    models: &[ModelKind],
    seed: u64,
    set: MethodSet,
) -> Vec<MethodResult> {
    let mut out = vec![
        run_base(ctx, models, seed).expect("BASE runs"),
        run_autofeat(ctx, models, seed),
        run_arda(ctx, models, &ArdaConfig { seed, ..Default::default() }).expect("ARDA runs"),
        run_mab(ctx, models, &MabConfig { seed, ..Default::default() }).expect("MAB runs"),
    ];
    if set.join_all {
        if let Some(r) = run_join_all(ctx, models, &JoinAllConfig { seed, ..Default::default() })
            .expect("JoinAll runs")
        {
            out.push(r);
        }
        if let Some(r) = run_join_all(
            ctx,
            models,
            &JoinAllConfig { filter: true, seed, ..Default::default() },
        )
        .expect("JoinAll+F runs")
        {
            out.push(r);
        }
    }
    out
}

/// Header for the standard result table.
pub fn print_header() {
    println!(
        "{:<12} {:<10} {:>9} {:>11} {:>11} {:>8} {:>9}",
        "dataset", "method", "accuracy", "fs_time_s", "total_s", "#tables", "#features"
    );
}

/// One standard result row.
pub fn print_result(dataset: &str, r: &MethodResult) {
    println!(
        "{:<12} {:<10} {:>9.3} {:>11.3} {:>11.3} {:>8} {:>9}",
        dataset,
        r.method,
        r.mean_accuracy(),
        r.feature_selection_time.as_secs_f64(),
        r.total_time.as_secs_f64(),
        r.n_tables_joined,
        r.n_features,
    );
}

/// Seconds as f64, for aggregation.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_specs_are_a_subset() {
        let q = specs(false);
        let f = specs(true);
        assert_eq!(q.len(), 4);
        assert_eq!(f.len(), 8);
        for s in &q {
            assert!(QUICK_SET.contains(&s.name));
        }
    }

    #[test]
    fn full_flag_parsing() {
        assert!(wants_full(&["--full".to_string()]));
        assert!(!wants_full(&["--quick".to_string()]));
    }

    #[test]
    fn credit_all_methods_smoke() {
        let spec = autofeat_datagen::registry::dataset("credit").unwrap();
        let ctx = context_from_snowflake(&spec.build_snowflake());
        let results = run_all_methods(
            &ctx,
            &[ModelKind::RandomForest],
            1,
            MethodSet { join_all: true },
        );
        // BASE, AutoFeat, ARDA, MAB, JoinAll, JoinAll+F all present.
        assert_eq!(results.len(), 6);
        let methods: Vec<&str> = results.iter().map(|r| r.method.as_str()).collect();
        assert!(methods.contains(&"AutoFeat"));
        assert!(methods.contains(&"JoinAll+F"));
    }
}
