//! Random Forest: bagged CART trees with √d feature subsampling.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use autofeat_data::encode::Matrix;

use crate::eval::{Classifier, MlError};
use crate::tree::{DecisionTree, MaxFeatures, TreeConfig};

/// A Random Forest classifier (majority vote over bootstrapped trees).
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree_config: TreeConfig,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Forest with explicit parameters.
    pub fn new(n_trees: usize, tree_config: TreeConfig, seed: u64) -> Self {
        RandomForest { n_trees, tree_config, seed, trees: Vec::new() }
    }

    /// The paper-adequate default: 30 trees, depth 10, √d features.
    pub fn default_seeded(seed: u64) -> Self {
        RandomForest::new(
            30,
            TreeConfig {
                max_depth: 10,
                max_features: MaxFeatures::Sqrt,
                n_thresholds: 16,
                ..Default::default()
            },
            seed,
        )
    }

    /// Mean impurity-based feature importance across trees (used by the
    /// ARDA baseline's random-injection selection).
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_features];
        for t in &self.trees {
            for (i, v) in t.feature_importances(n_features).into_iter().enumerate() {
                imp[i] += v;
            }
        }
        if !self.trees.is_empty() {
            for v in &mut imp {
                *v /= self.trees.len() as f64;
            }
        }
        imp
    }
}

fn bootstrap_rows(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.random_range(0..n)).collect()
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Matrix) -> Result<(), MlError> {
        if data.n_rows == 0 || data.cols.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        // Trees are independent given per-tree seeds, so they fit in
        // parallel; results are identical to a sequential run because every
        // tree's RNG derives only from (ensemble seed, tree index).
        let fitted = crate::parallel::build_indexed(self.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let rows = bootstrap_rows(data.n_rows, &mut rng);
            let sample = data.select_rows(&rows);
            let mut tree = DecisionTree::new(
                self.tree_config.clone(),
                self.seed ^ (t as u64).wrapping_mul(0x9e37),
            );
            tree.fit(&sample).map(|()| tree)
        });
        self.trees = fitted.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> i64 {
        majority_vote(self.trees.iter().map(|t| t.predict_row(row)))
    }

    fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

/// Majority vote with deterministic (smallest-label) tie-break.
pub fn majority_vote(votes: impl Iterator<Item = i64>) -> i64 {
    let mut counts: std::collections::BTreeMap<i64, usize> = std::collections::BTreeMap::new();
    for v in votes {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(label, _)| label)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    fn blob_matrix(n: usize) -> Matrix {
        // Two noisy clusters separable on both features.
        let x0: Vec<f64> = (0..n)
            .map(|i| if i < n / 2 { (i % 7) as f64 * 0.1 } else { 5.0 + (i % 7) as f64 * 0.1 })
            .collect();
        let x1: Vec<f64> = (0..n)
            .map(|i| if i < n / 2 { (i % 5) as f64 * 0.1 } else { 3.0 + (i % 5) as f64 * 0.1 })
            .collect();
        let labels: Vec<i64> = (0..n).map(|i| i64::from(i >= n / 2)).collect();
        Matrix {
            feature_names: vec!["x0".into(), "x1".into()],
            cols: vec![x0, x1],
            labels,
            n_rows: n,
        }
    }

    #[test]
    fn separable_data_learned() {
        let m = blob_matrix(100);
        let mut f = RandomForest::default_seeded(0);
        f.fit(&m).unwrap();
        assert_eq!(accuracy(&f.predict(&m), &m.labels), 1.0);
        assert!(f.is_fitted());
    }

    #[test]
    fn deterministic_per_seed() {
        let m = blob_matrix(60);
        let mut a = RandomForest::default_seeded(5);
        let mut b = RandomForest::default_seeded(5);
        a.fit(&m).unwrap();
        b.fit(&m).unwrap();
        assert_eq!(a.predict(&m), b.predict(&m));
    }

    #[test]
    fn empty_errors() {
        let m = Matrix { feature_names: vec![], cols: vec![], labels: vec![], n_rows: 0 };
        assert!(RandomForest::default_seeded(0).fit(&m).is_err());
    }

    #[test]
    fn majority_vote_tie_breaks_low() {
        assert_eq!(majority_vote([1, 2].into_iter()), 1);
        assert_eq!(majority_vote([3, 3, 2].into_iter()), 3);
        assert_eq!(majority_vote(std::iter::empty()), 0);
    }

    #[test]
    fn importances_cover_used_features() {
        let m = blob_matrix(100);
        let mut f = RandomForest::default_seeded(0);
        f.fit(&m).unwrap();
        let imp = f.feature_importances(2);
        assert!(imp.iter().sum::<f64>() > 0.0);
        assert_eq!(imp.len(), 2);
    }
}
