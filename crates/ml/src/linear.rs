//! L1-regularised logistic regression ("LR" in the paper's Figs. 5/7),
//! trained with proximal gradient descent (ISTA) on standardized features.

use autofeat_data::encode::Matrix;

use crate::dataset::{standardize_fit, Standardizer};
use crate::eval::{Classifier, MlError};

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn soft_threshold(w: f64, t: f64) -> f64 {
    if w > t {
        w - t
    } else if w < -t {
        w + t
    } else {
        0.0
    }
}

/// Binary logistic regression with L1 penalty.
#[derive(Debug, Clone)]
pub struct LogisticL1 {
    /// L1 strength.
    pub alpha: f64,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch iterations.
    pub n_iters: usize,
    scaler: Standardizer,
    weights: Vec<f64>,
    bias: f64,
    classes: [i64; 2],
    fitted: bool,
}

impl LogisticL1 {
    /// Custom configuration.
    pub fn new(alpha: f64, learning_rate: f64, n_iters: usize) -> Self {
        LogisticL1 {
            alpha,
            learning_rate,
            n_iters,
            scaler: Standardizer::default(),
            weights: Vec::new(),
            bias: 0.0,
            classes: [0, 1],
            fitted: false,
        }
    }

    /// Sensible defaults (α=0.01, lr=0.5, 200 iters).
    pub fn default_config() -> Self {
        LogisticL1::new(0.01, 0.5, 200)
    }

    /// The learned weights (post-standardization space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of exactly-zero weights (L1 sparsity effect).
    pub fn n_zero_weights(&self) -> usize {
        self.weights.iter().filter(|w| **w == 0.0).count()
    }

    /// Positive-class probability for a raw (unscaled) row.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let m = Matrix {
            feature_names: (0..row.len()).map(|i| format!("f{i}")).collect(),
            cols: row.iter().map(|&v| vec![v]).collect(),
            labels: vec![0],
            n_rows: 1,
        };
        let scaled = self.scaler.transform(&m);
        let z = self.bias
            + scaled
                .cols
                .iter()
                .zip(&self.weights)
                .map(|(c, w)| c[0] * w)
                .sum::<f64>();
        sigmoid(z)
    }
}

impl Classifier for LogisticL1 {
    fn fit(&mut self, data: &Matrix) -> Result<(), MlError> {
        if data.n_rows == 0 || data.cols.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let mut classes: Vec<i64> = data.labels.clone();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() > 2 {
            return Err(MlError::NotBinary { n_classes: classes.len() });
        }
        if classes.len() == 1 {
            self.classes = [classes[0], classes[0]];
            self.weights = vec![0.0; data.cols.len()];
            self.bias = 1e6;
            self.scaler = standardize_fit(data);
            self.fitted = true;
            return Ok(());
        }
        self.classes = [classes[0], classes[1]];
        self.scaler = standardize_fit(data);
        let x = self.scaler.transform(data);
        let y: Vec<f64> = x
            .labels
            .iter()
            .map(|&l| if l == self.classes[1] { 1.0 } else { 0.0 })
            .collect();

        let n = x.n_rows as f64;
        let d = x.cols.len();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        for _ in 0..self.n_iters {
            // Full-batch gradient of the logistic loss.
            let mut probs = vec![self.bias; x.n_rows];
            for (j, col) in x.cols.iter().enumerate() {
                let w = self.weights[j];
                if w != 0.0 {
                    for (p, &v) in probs.iter_mut().zip(col) {
                        *p += w * v;
                    }
                }
            }
            for p in &mut probs {
                *p = sigmoid(*p);
            }
            let errs: Vec<f64> = probs.iter().zip(&y).map(|(p, t)| p - t).collect();
            let grad_bias = errs.iter().sum::<f64>() / n;
            self.bias -= self.learning_rate * grad_bias;
            for (j, col) in x.cols.iter().enumerate() {
                let g: f64 = col.iter().zip(&errs).map(|(v, e)| v * e).sum::<f64>() / n;
                let w = self.weights[j] - self.learning_rate * g;
                self.weights[j] = soft_threshold(w, self.learning_rate * self.alpha);
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> i64 {
        if self.predict_proba_row(row) >= 0.5 {
            self.classes[1]
        } else {
            self.classes[0]
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    fn linear_data(n: usize) -> Matrix {
        let x0: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let x1: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % n) as f64 / n as f64).collect();
        let labels: Vec<i64> = x0.iter().map(|&v| i64::from(v > 0.5)).collect();
        Matrix {
            feature_names: vec!["signal".into(), "noise".into()],
            cols: vec![x0, x1],
            labels,
            n_rows: n,
        }
    }

    #[test]
    fn learns_linear_boundary() {
        let m = linear_data(200);
        let mut lr = LogisticL1::default_config();
        lr.fit(&m).unwrap();
        let acc = accuracy(&lr.predict(&m), &m.labels);
        assert!(acc > 0.95, "acc = {acc}");
    }

    #[test]
    fn l1_zeroes_noise_weight() {
        let m = linear_data(300);
        let mut lr = LogisticL1::new(0.05, 0.5, 400);
        lr.fit(&m).unwrap();
        assert_eq!(lr.weights()[1], 0.0, "noise weight should be exactly zero");
        assert!(lr.weights()[0].abs() > 0.1);
        assert_eq!(lr.n_zero_weights(), 1);
    }

    #[test]
    fn strong_alpha_kills_everything() {
        let m = linear_data(100);
        let mut lr = LogisticL1::new(100.0, 0.5, 100);
        lr.fit(&m).unwrap();
        assert_eq!(lr.n_zero_weights(), 2);
    }

    #[test]
    fn probabilities_monotone_in_signal() {
        let m = linear_data(200);
        let mut lr = LogisticL1::default_config();
        lr.fit(&m).unwrap();
        assert!(lr.predict_proba_row(&[0.1, 0.5]) < lr.predict_proba_row(&[0.9, 0.5]));
    }

    #[test]
    fn rejects_multiclass_and_empty() {
        let m = Matrix {
            feature_names: vec!["x".into()],
            cols: vec![vec![1.0, 2.0, 3.0]],
            labels: vec![0, 1, 2],
            n_rows: 3,
        };
        assert!(LogisticL1::default_config().fit(&m).is_err());
        let e = Matrix { feature_names: vec![], cols: vec![], labels: vec![], n_rows: 0 };
        assert!(LogisticL1::default_config().fit(&e).is_err());
    }

    #[test]
    fn single_class_constant() {
        let m = Matrix {
            feature_names: vec!["x".into()],
            cols: vec![vec![1.0, 2.0]],
            labels: vec![4, 4],
            n_rows: 2,
        };
        let mut lr = LogisticL1::default_config();
        lr.fit(&m).unwrap();
        assert_eq!(lr.predict(&m), vec![4, 4]);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(2.0, 0.5), 1.5);
        assert_eq!(soft_threshold(-2.0, 0.5), -1.5);
        assert_eq!(soft_threshold(0.3, 0.5), 0.0);
    }
}
