//! Classification quality metrics beyond plain accuracy — confusion
//! matrices, precision/recall/F1, ROC-AUC (the MAB paper reports AUC), and
//! k-fold cross-validation.

use std::collections::BTreeSet;

use autofeat_data::encode::Matrix;

use crate::eval::{accuracy, Classifier, MlError};

/// A binary confusion matrix (positive class fixed by the caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against labels, treating `positive` as the
    /// positive class.
    pub fn from_predictions(predictions: &[i64], labels: &[i64], positive: i64) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&p, &l) in predictions.iter().zip(labels) {
            match (p == positive, l == positive) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// F1 — the harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over the four cells.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// ROC-AUC from positive-class scores, via the rank-sum (Mann-Whitney U)
/// formulation with average ranks for tied scores. Returns 0.5 when either
/// class is absent.
pub fn roc_auc(scores: &[f64], labels: &[i64], positive: i64) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l == positive).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Average ranks of the scores (1-based).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l == positive)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Deterministic stratified k-fold cross-validation: returns the per-fold
/// test accuracies of a fresh model built by `make` for each fold.
pub fn cross_validate<F>(
    data: &Matrix,
    k: usize,
    make: F,
) -> Result<Vec<f64>, MlError>
where
    F: Fn() -> Box<dyn Classifier>,
{
    assert!(k >= 2, "need at least 2 folds");
    if data.n_rows < k {
        return Err(MlError::EmptyDataset);
    }
    // Stratified fold assignment: within each class, rows round-robin over
    // folds.
    let classes: BTreeSet<i64> = data.labels.iter().copied().collect();
    let mut fold_of = vec![0usize; data.n_rows];
    for class in classes {
        for (slot, row) in (0..data.n_rows)
            .filter(|&i| data.labels[i] == class)
            .enumerate()
        {
            fold_of[row] = slot % k;
        }
    }
    let mut accs = Vec::with_capacity(k);
    for fold in 0..k {
        let train_idx: Vec<usize> =
            (0..data.n_rows).filter(|&i| fold_of[i] != fold).collect();
        let test_idx: Vec<usize> =
            (0..data.n_rows).filter(|&i| fold_of[i] == fold).collect();
        if train_idx.is_empty() || test_idx.is_empty() {
            continue;
        }
        let train = data.select_rows(&train_idx);
        let test = data.select_rows(&test_idx);
        let mut model = make();
        model.fit(&train)?;
        accs.push(accuracy(&model.predict(&test), &test.labels));
    }
    Ok(accs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ModelKind;

    #[test]
    fn confusion_counts() {
        let c = Confusion::from_predictions(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1], 1);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn confusion_degenerate() {
        let c = Confusion::from_predictions(&[0, 0], &[0, 0], 1);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn auc_perfect_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0, 0, 1, 1];
        assert!((roc_auc(&scores, &labels, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [0, 0, 1, 1];
        assert!(roc_auc(&scores, &labels, 1).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores tied ⇒ AUC must be exactly 0.5 (average ranks).
        let scores = [0.5; 10];
        let labels = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        assert!((roc_auc(&scores, &labels, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[1, 1], 1), 0.5);
    }

    fn separable_matrix(n: usize) -> Matrix {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<i64> = (0..n).map(|i| i64::from(i >= n / 2)).collect();
        Matrix { feature_names: vec!["x".into()], cols: vec![x], labels, n_rows: n }
    }

    #[test]
    fn cross_validation_on_separable_data() {
        let m = separable_matrix(100);
        let accs = cross_validate(&m, 5, || ModelKind::RandomForest.build(0)).unwrap();
        assert_eq!(accs.len(), 5);
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!(mean > 0.9, "CV mean = {mean}");
    }

    #[test]
    fn cross_validation_too_few_rows_errors() {
        let m = separable_matrix(3);
        assert!(cross_validate(&m, 5, || ModelKind::Knn.build(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let m = separable_matrix(10);
        let _ = cross_validate(&m, 1, || ModelKind::Knn.build(0));
    }
}
