//! Parallel ensemble fitting with `crossbeam` scoped threads.
//!
//! Trees of a bagged ensemble are independent given their seeds, so they
//! fit in parallel without changing results: work is split by tree index
//! and each tree derives its RNG from the ensemble seed and its own index,
//! exactly as in the sequential path. Determinism is preserved because the
//! output order is by tree index, not completion order.

use crossbeam::thread;

/// Number of worker threads used for ensemble fitting.
pub fn n_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Build `n_items` values with `make(i)` in parallel, preserving index
/// order. `make` must be pure given `i` (all randomness derived from `i`).
pub fn build_indexed<T, F>(n_items: usize, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = n_workers().min(n_items.max(1));
    if workers <= 1 || n_items <= 1 {
        return (0..n_items).map(make).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    let make_ref = &make;
    thread::scope(|s| {
        for (w, chunk) in slots.chunks_mut(n_items.div_ceil(workers)).enumerate() {
            let start = w * n_items.div_ceil(workers);
            s.spawn(move |_| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(make_ref(start + off));
                }
            });
        }
    })
    .expect("ensemble worker panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let v = build_indexed(100, |i| i * 2);
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_sequential_path() {
        assert_eq!(build_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_items() {
        let v: Vec<usize> = build_indexed(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn matches_sequential_for_any_size() {
        for n in [2usize, 3, 7, 8, 9, 33] {
            let par = build_indexed(n, |i| i * i);
            let seq: Vec<usize> = (0..n).map(|i| i * i).collect();
            assert_eq!(par, seq, "n = {n}");
        }
    }
}
