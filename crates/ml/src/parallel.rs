//! Parallel ensemble fitting — re-exported from the shared
//! [`autofeat_data::parallel`] module.
//!
//! Trees of a bagged ensemble are independent given their seeds, so they
//! fit in parallel without changing results: work is split by tree index
//! and each tree derives its RNG from the ensemble seed and its own index,
//! exactly as in the sequential path. Determinism is preserved because the
//! output order is by tree index, not completion order.
//!
//! The fan-out primitive moved to `autofeat-data` so the discovery BFS can
//! share it (both must honour the `AUTOFEAT_THREADS` override); this module
//! remains the ML-facing path for existing callers.

pub use autofeat_data::parallel::{build_indexed, build_indexed_with, n_workers};
