//! Extremely Randomised Trees: no bootstrap, uniform-random split
//! thresholds — faster and higher-variance-per-tree than Random Forest.

use autofeat_data::encode::Matrix;

use crate::eval::{Classifier, MlError};
use crate::forest::majority_vote;
use crate::tree::{DecisionTree, MaxFeatures, TreeConfig};

/// An Extra-Trees classifier.
#[derive(Debug, Clone)]
pub struct ExtraTrees {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (random thresholds forced on).
    pub tree_config: TreeConfig,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl ExtraTrees {
    /// Explicit configuration (random thresholds are forced on).
    pub fn new(n_trees: usize, mut tree_config: TreeConfig, seed: u64) -> Self {
        tree_config.random_thresholds = true;
        ExtraTrees { n_trees, tree_config, seed, trees: Vec::new() }
    }

    /// Default: 30 trees, depth 12, √d features, random cuts.
    pub fn default_seeded(seed: u64) -> Self {
        ExtraTrees::new(
            30,
            TreeConfig {
                max_depth: 12,
                max_features: MaxFeatures::Sqrt,
                ..Default::default()
            },
            seed,
        )
    }
}

impl Classifier for ExtraTrees {
    fn fit(&mut self, data: &Matrix) -> Result<(), MlError> {
        if data.n_rows == 0 || data.cols.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        // Whole dataset per tree (no bootstrap) — randomness comes from the
        // random thresholds and feature subsampling; trees fit in parallel.
        let fitted = crate::parallel::build_indexed(self.n_trees, |t| {
            let mut tree = DecisionTree::new(
                self.tree_config.clone(),
                self.seed ^ (t as u64).wrapping_mul(0x51_7c_c1),
            );
            tree.fit(data).map(|()| tree)
        });
        self.trees = fitted.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> i64 {
        majority_vote(self.trees.iter().map(|t| t.predict_row(row)))
    }

    fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    fn stripes(n: usize) -> Matrix {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<i64> = (0..n).map(|i| i64::from(i >= n / 2)).collect();
        Matrix { feature_names: vec!["x".into()], cols: vec![x], labels, n_rows: n }
    }

    #[test]
    fn learns_threshold() {
        let m = stripes(200);
        let mut et = ExtraTrees::default_seeded(1);
        et.fit(&m).unwrap();
        let acc = accuracy(&et.predict(&m), &m.labels);
        assert!(acc > 0.97, "acc = {acc}");
    }

    #[test]
    fn random_thresholds_forced_on() {
        let et = ExtraTrees::new(5, TreeConfig { random_thresholds: false, ..Default::default() }, 0);
        assert!(et.tree_config.random_thresholds);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = stripes(80);
        let mut a = ExtraTrees::default_seeded(3);
        let mut b = ExtraTrees::default_seeded(3);
        a.fit(&m).unwrap();
        b.fit(&m).unwrap();
        assert_eq!(a.predict(&m), b.predict(&m));
    }

    #[test]
    fn empty_errors() {
        let m = Matrix { feature_names: vec![], cols: vec![], labels: vec![], n_rows: 0 };
        assert!(ExtraTrees::default_seeded(0).fit(&m).is_err());
    }
}
