//! Gradient-boosted decision trees with logistic loss (binary).
//!
//! Two presets stand in for the paper's boosted learners:
//!
//! * [`GbdtConfig::lightgbm_like`] — first-order gradients (unit hessians),
//!   shallow trees, higher learning rate;
//! * [`GbdtConfig::xgboost_like`] — second-order (Newton) leaf weights with
//!   an L2 regulariser λ on the leaves.

use rand::rngs::StdRng;
use rand::SeedableRng;

use autofeat_data::encode::Matrix;

use crate::dataset::FeatureMeans;
use crate::eval::{Classifier, MlError};
use crate::tree::{MaxFeatures, RegressionTree, TreeConfig};

/// Boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// Tree shape per round.
    pub tree_config: TreeConfig,
    /// Leaf L2 regulariser λ.
    pub lambda: f64,
    /// Use true hessians (Newton boosting) instead of unit hessians.
    pub second_order: bool,
}

impl GbdtConfig {
    /// LightGBM-flavoured preset.
    pub fn lightgbm_like() -> Self {
        GbdtConfig {
            n_rounds: 50,
            learning_rate: 0.1,
            tree_config: TreeConfig {
                max_depth: 4,
                min_samples_leaf: 5,
                max_features: MaxFeatures::All,
                n_thresholds: 32,
                ..Default::default()
            },
            lambda: 0.0,
            second_order: false,
        }
    }

    /// XGBoost-flavoured preset (Newton steps, λ-regularised leaves).
    pub fn xgboost_like() -> Self {
        GbdtConfig {
            n_rounds: 50,
            learning_rate: 0.3,
            tree_config: TreeConfig {
                max_depth: 4,
                min_samples_leaf: 2,
                max_features: MaxFeatures::All,
                n_thresholds: 32,
                ..Default::default()
            },
            lambda: 1.0,
            second_order: true,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// A binary GBDT classifier.
#[derive(Debug, Clone)]
pub struct Gbdt {
    /// Hyper-parameters.
    pub config: GbdtConfig,
    seed: u64,
    base_score: f64,
    trees: Vec<RegressionTree>,
    means: FeatureMeans,
    classes: [i64; 2],
    fitted: bool,
}

impl Gbdt {
    /// Unfitted booster.
    pub fn new(config: GbdtConfig, seed: u64) -> Self {
        Gbdt {
            config,
            seed,
            base_score: 0.0,
            trees: Vec::new(),
            means: FeatureMeans::default(),
            classes: [0, 1],
            fitted: false,
        }
    }

    /// Raw margin (log-odds) for a NaN-free row.
    fn margin(&self, row: &[f64]) -> f64 {
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict_row(row))
                .sum::<f64>()
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let mut row = row.to_vec();
        self.means.transform_row(&mut row);
        sigmoid(self.margin(&row))
    }
}

impl Classifier for Gbdt {
    fn fit(&mut self, data: &Matrix) -> Result<(), MlError> {
        if data.n_rows == 0 || data.cols.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let mut classes: Vec<i64> = data.labels.clone();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() > 2 {
            return Err(MlError::NotBinary { n_classes: classes.len() });
        }
        if classes.len() == 1 {
            // Degenerate but legal: constant predictor.
            self.classes = [classes[0], classes[0]];
            self.base_score = 1e6; // always predicts the single class
            self.trees.clear();
            self.means = FeatureMeans::fit(data);
            self.fitted = true;
            return Ok(());
        }
        self.classes = [classes[0], classes[1]];
        self.means = FeatureMeans::fit(data);
        let data = self.means.transform(data);
        let y: Vec<f64> = data
            .labels
            .iter()
            .map(|&l| if l == self.classes[1] { 1.0 } else { 0.0 })
            .collect();

        let pos = y.iter().sum::<f64>() / y.len() as f64;
        self.base_score = (pos.clamp(1e-6, 1.0 - 1e-6) / (1.0 - pos.clamp(1e-6, 1.0 - 1e-6))).ln();

        let n = data.n_rows;
        let mut margins = vec![self.base_score; n];
        let rows: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for _ in 0..self.config.n_rounds {
            let mut grad = Vec::with_capacity(n);
            let mut hess = Vec::with_capacity(n);
            for i in 0..n {
                let p = sigmoid(margins[i]);
                grad.push(p - y[i]);
                hess.push(if self.config.second_order {
                    (p * (1.0 - p)).max(1e-6)
                } else {
                    1.0
                });
            }
            let tree = RegressionTree::fit(
                &data,
                &grad,
                &hess,
                self.config.tree_config.clone(),
                self.config.lambda,
                &rows,
                &mut rng,
            );
            for i in 0..n {
                let row: Vec<f64> = data.cols.iter().map(|c| c[i]).collect();
                margins[i] += self.config.learning_rate * tree.predict_row(&row);
            }
            self.trees.push(tree);
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> i64 {
        if self.predict_proba_row(row) >= 0.5 {
            self.classes[1]
        } else {
            self.classes[0]
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    fn xor_matrix(n: usize) -> Matrix {
        let x0: Vec<f64> = (0..n).map(|i| ((i / 2) % 2) as f64).collect();
        let x1: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let labels: Vec<i64> = (0..n).map(|i| (((i / 2) % 2) ^ (i % 2)) as i64).collect();
        Matrix {
            feature_names: vec!["x0".into(), "x1".into()],
            cols: vec![x0, x1],
            labels,
            n_rows: n,
        }
    }

    #[test]
    fn lightgbm_preset_learns_xor() {
        let m = xor_matrix(120);
        let mut g = Gbdt::new(GbdtConfig::lightgbm_like(), 0);
        g.fit(&m).unwrap();
        assert_eq!(accuracy(&g.predict(&m), &m.labels), 1.0);
    }

    #[test]
    fn xgboost_preset_learns_xor() {
        let m = xor_matrix(120);
        let mut g = Gbdt::new(GbdtConfig::xgboost_like(), 0);
        g.fit(&m).unwrap();
        assert_eq!(accuracy(&g.predict(&m), &m.labels), 1.0);
    }

    #[test]
    fn probabilities_calibrated_directionally() {
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<i64> = (0..n).map(|i| i64::from(i >= n / 2)).collect();
        let m = Matrix { feature_names: vec!["x".into()], cols: vec![x], labels, n_rows: n };
        let mut g = Gbdt::new(GbdtConfig::lightgbm_like(), 0);
        g.fit(&m).unwrap();
        assert!(g.predict_proba_row(&[5.0]) < 0.2);
        assert!(g.predict_proba_row(&[95.0]) > 0.8);
    }

    #[test]
    fn rejects_multiclass() {
        let m = Matrix {
            feature_names: vec!["x".into()],
            cols: vec![vec![1.0, 2.0, 3.0]],
            labels: vec![0, 1, 2],
            n_rows: 3,
        };
        let mut g = Gbdt::new(GbdtConfig::lightgbm_like(), 0);
        assert!(matches!(g.fit(&m), Err(MlError::NotBinary { n_classes: 3 })));
    }

    #[test]
    fn single_class_predicts_constant() {
        let m = Matrix {
            feature_names: vec!["x".into()],
            cols: vec![vec![1.0, 2.0]],
            labels: vec![7, 7],
            n_rows: 2,
        };
        let mut g = Gbdt::new(GbdtConfig::lightgbm_like(), 0);
        g.fit(&m).unwrap();
        assert_eq!(g.predict(&m), vec![7, 7]);
    }

    #[test]
    fn arbitrary_label_codes_preserved() {
        let n = 60;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<i64> = (0..n).map(|i| if i >= n / 2 { 42 } else { -3 }).collect();
        let m = Matrix { feature_names: vec!["x".into()], cols: vec![x], labels: labels.clone(), n_rows: n };
        let mut g = Gbdt::new(GbdtConfig::xgboost_like(), 0);
        g.fit(&m).unwrap();
        let preds = g.predict(&m);
        assert!(preds.iter().all(|&p| p == 42 || p == -3));
        assert!(accuracy(&preds, &labels) > 0.95);
    }

    #[test]
    fn nan_features_handled() {
        let n = 80;
        let mut x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        x[3] = f64::NAN;
        let labels: Vec<i64> = (0..n).map(|i| i64::from(i >= n / 2)).collect();
        let m = Matrix { feature_names: vec!["x".into()], cols: vec![x], labels, n_rows: n };
        let mut g = Gbdt::new(GbdtConfig::lightgbm_like(), 0);
        g.fit(&m).unwrap();
        let acc = accuracy(&g.predict(&m), &m.labels);
        assert!(acc > 0.95, "acc = {acc}");
    }

    #[test]
    fn empty_errors() {
        let m = Matrix { feature_names: vec![], cols: vec![], labels: vec![], n_rows: 0 };
        assert!(Gbdt::new(GbdtConfig::lightgbm_like(), 0).fit(&m).is_err());
    }
}
