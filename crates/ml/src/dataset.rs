//! Dataset utilities shared by the learners: NaN imputation with learned
//! feature means and feature standardization.

use autofeat_data::encode::Matrix;

/// Per-feature means learned at fit time, used to fill `NaN`s at predict
/// time so train and test see a consistent imputation.
#[derive(Debug, Clone, Default)]
pub struct FeatureMeans {
    means: Vec<f64>,
}

impl FeatureMeans {
    /// Learn means from the training matrix (NaNs excluded; all-NaN
    /// features get 0).
    pub fn fit(data: &Matrix) -> Self {
        let means = data
            .cols
            .iter()
            .map(|col| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for &v in col {
                    if v.is_finite() {
                        sum += v;
                        n += 1;
                    }
                }
                if n == 0 {
                    0.0
                } else {
                    sum / n as f64
                }
            })
            .collect();
        FeatureMeans { means }
    }

    /// The learned means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fill NaNs in a matrix (column count must match).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols.len(), self.means.len(), "feature count mismatch");
        let cols = data
            .cols
            .iter()
            .zip(&self.means)
            .map(|(col, &m)| {
                col.iter()
                    .map(|&v| if v.is_finite() { v } else { m })
                    .collect()
            })
            .collect();
        Matrix { feature_names: data.feature_names.clone(), cols, labels: data.labels.clone(), n_rows: data.n_rows }
    }

    /// Fill NaNs in a single row.
    pub fn transform_row(&self, row: &mut [f64]) {
        for (v, &m) in row.iter_mut().zip(&self.means) {
            if !v.is_finite() {
                *v = m;
            }
        }
    }
}

/// Z-score standardizer (mean 0, unit variance; constant features map to 0).
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

/// Fit a standardizer on a matrix (NaNs ignored during fitting).
pub fn standardize_fit(data: &Matrix) -> Standardizer {
    let mut means = Vec::with_capacity(data.cols.len());
    let mut stds = Vec::with_capacity(data.cols.len());
    for col in &data.cols {
        let present: Vec<f64> = col.iter().copied().filter(|v| v.is_finite()).collect();
        let n = present.len().max(1) as f64;
        let m = present.iter().sum::<f64>() / n;
        let var = present.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n;
        means.push(m);
        stds.push(if var > 0.0 { var.sqrt() } else { 1.0 });
    }
    Standardizer { means, stds }
}

impl Standardizer {
    /// Standardize a matrix; NaNs become 0 (the mean) after scaling.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols.len(), self.means.len(), "feature count mismatch");
        let cols = data
            .cols
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(col, (&m, &s))| {
                col.iter()
                    .map(|&v| if v.is_finite() { (v - m) / s } else { 0.0 })
                    .collect()
            })
            .collect();
        Matrix { feature_names: data.feature_names.clone(), cols, labels: data.labels.clone(), n_rows: data.n_rows }
    }
}

/// Extract row `i` of a column-major matrix.
pub fn row_of(data: &Matrix, i: usize) -> Vec<f64> {
    data.cols.iter().map(|c| c[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(cols: Vec<Vec<f64>>, labels: Vec<i64>) -> Matrix {
        let n_rows = labels.len();
        Matrix {
            feature_names: (0..cols.len()).map(|i| format!("f{i}")).collect(),
            cols,
            labels,
            n_rows,
        }
    }

    #[test]
    fn means_skip_nan() {
        let m = matrix(vec![vec![1.0, f64::NAN, 3.0]], vec![0, 1, 0]);
        let fm = FeatureMeans::fit(&m);
        assert_eq!(fm.means(), &[2.0]);
        let t = fm.transform(&m);
        assert_eq!(t.cols[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn all_nan_feature_gets_zero() {
        let m = matrix(vec![vec![f64::NAN, f64::NAN]], vec![0, 1]);
        let fm = FeatureMeans::fit(&m);
        assert_eq!(fm.means(), &[0.0]);
    }

    #[test]
    fn transform_row_in_place() {
        let m = matrix(vec![vec![2.0, 4.0]], vec![0, 1]);
        let fm = FeatureMeans::fit(&m);
        let mut row = vec![f64::NAN];
        fm.transform_row(&mut row);
        assert_eq!(row, vec![3.0]);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let m = matrix(vec![vec![1.0, 2.0, 3.0, 4.0]], vec![0, 0, 1, 1]);
        let s = standardize_fit(&m);
        let t = s.transform(&m);
        let mean: f64 = t.cols[0].iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = t.cols[0].iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let m = matrix(vec![vec![7.0, 7.0]], vec![0, 1]);
        let s = standardize_fit(&m);
        let t = s.transform(&m);
        assert_eq!(t.cols[0], vec![0.0, 0.0]);
    }

    #[test]
    fn row_extraction() {
        let m = matrix(vec![vec![1.0, 2.0], vec![10.0, 20.0]], vec![0, 1]);
        assert_eq!(row_of(&m, 1), vec![2.0, 20.0]);
    }
}
