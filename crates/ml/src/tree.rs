//! CART decision trees: gini-based classification trees and
//! variance-reduction regression trees (the boosting building block).

use rand::rngs::StdRng;
use rand::RngExt;

use autofeat_data::encode::Matrix;

use crate::dataset::FeatureMeans;
use crate::eval::{Classifier, MlError};

/// How many features each split considers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// `ceil(sqrt(d))` random features (Random-Forest style).
    Sqrt,
    /// A fixed fraction of features.
    Fraction(f64),
}

/// Tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Feature subsampling per split.
    pub max_features: MaxFeatures,
    /// Cap on candidate thresholds per feature (quantile-spaced).
    pub n_thresholds: usize,
    /// Extremely-randomized mode: one uniform-random threshold per feature.
    pub random_thresholds: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            n_thresholds: 32,
            random_thresholds: false,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted tree: arena of nodes, root at index 0. `value` at leaves is a
/// class code for classification trees and a regression value for
/// regression trees.
#[derive(Debug, Clone, Default)]
struct TreeNodes {
    nodes: Vec<Node>,
}

impl TreeNodes {
    fn predict_value(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn depth_of(&self, i: usize) -> usize {
        match &self.nodes[i] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => {
                1 + self.depth_of(*left).max(self.depth_of(*right))
            }
        }
    }
}

fn candidate_features(
    n_features: usize,
    max_features: MaxFeatures,
    rng: &mut StdRng,
) -> Vec<usize> {
    let k = match max_features {
        MaxFeatures::All => n_features,
        MaxFeatures::Sqrt => (n_features as f64).sqrt().ceil() as usize,
        MaxFeatures::Fraction(f) => ((n_features as f64 * f).ceil() as usize).max(1),
    }
    .clamp(1, n_features);
    if k == n_features {
        return (0..n_features).collect();
    }
    // Partial Fisher-Yates for k distinct indices.
    let mut idx: Vec<usize> = (0..n_features).collect();
    for i in 0..k {
        let j = rng.random_range(i..n_features);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Candidate thresholds for a feature over the given rows: quantile-spaced
/// midpoints, or a single uniform-random cut in extra-trees mode.
fn thresholds(
    values: &[f64],
    cfg: &TreeConfig,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("imputed, finite"));
    v.dedup();
    if v.len() < 2 {
        return Vec::new();
    }
    if cfg.random_thresholds {
        let lo = v[0];
        let hi = v[v.len() - 1];
        return vec![rng.random_range(lo..hi)];
    }
    if v.len() - 1 <= cfg.n_thresholds {
        return v.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    }
    (1..=cfg.n_thresholds)
        .map(|i| {
            let pos = i * (v.len() - 1) / (cfg.n_thresholds + 1);
            (v[pos] + v[pos + 1]) / 2.0
        })
        .collect()
}

/// Gini impurity from class counts.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

struct ClassificationTarget<'a> {
    labels: &'a [i64],
    classes: &'a [i64],
}

impl ClassificationTarget<'_> {
    fn class_index(&self, label: i64) -> usize {
        self.classes.binary_search(&label).expect("label seen at fit")
    }
}

/// A CART classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Hyper-parameters.
    pub config: TreeConfig,
    seed: u64,
    tree: TreeNodes,
    classes: Vec<i64>,
    means: FeatureMeans,
    fitted: bool,
}

impl DecisionTree {
    /// Unfitted tree.
    pub fn new(config: TreeConfig, seed: u64) -> Self {
        DecisionTree {
            config,
            seed,
            tree: TreeNodes::default(),
            classes: Vec::new(),
            means: FeatureMeans::default(),
            fitted: false,
        }
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        if self.tree.nodes.is_empty() {
            0
        } else {
            self.tree.depth_of(0)
        }
    }

    fn build(
        &self,
        data: &Matrix,
        target: &ClassificationTarget<'_>,
        rows: &[usize],
        depth: usize,
        nodes: &mut Vec<Node>,
        rng: &mut StdRng,
    ) -> usize {
        let n_classes = target.classes.len();
        let mut counts = vec![0usize; n_classes];
        for &r in rows {
            counts[target.class_index(target.labels[r])] += 1;
        }
        let majority = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| target.classes[i])
            .unwrap_or(0);
        let node_gini = gini(&counts, rows.len());
        let stop = depth >= self.config.max_depth
            || rows.len() < self.config.min_samples_split
            || node_gini == 0.0;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(data, target, rows, rng) {
                let (lrows, rrows): (Vec<usize>, Vec<usize>) = rows
                    .iter()
                    .partition(|&&r| data.cols[feature][r] <= threshold);
                if lrows.len() >= self.config.min_samples_leaf
                    && rrows.len() >= self.config.min_samples_leaf
                {
                    let id = nodes.len();
                    nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                    let left = self.build(data, target, &lrows, depth + 1, nodes, rng);
                    let right = self.build(data, target, &rrows, depth + 1, nodes, rng);
                    nodes[id] = Node::Split { feature, threshold, left, right };
                    return id;
                }
            }
        }
        let id = nodes.len();
        nodes.push(Node::Leaf { value: majority as f64 });
        id
    }

    fn best_split(
        &self,
        data: &Matrix,
        target: &ClassificationTarget<'_>,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let n_classes = target.classes.len();
        let mut total = vec![0usize; n_classes];
        for &r in rows {
            total[target.class_index(target.labels[r])] += 1;
        }
        let parent = gini(&total, rows.len());
        let mut best: Option<(usize, f64, f64)> = None; // feature, threshold, gain
        for feature in candidate_features(data.cols.len(), self.config.max_features, rng) {
            let values: Vec<f64> = rows.iter().map(|&r| data.cols[feature][r]).collect();
            for threshold in thresholds(&values, &self.config, rng) {
                let mut left = vec![0usize; n_classes];
                let mut nl = 0usize;
                for &r in rows {
                    if data.cols[feature][r] <= threshold {
                        left[target.class_index(target.labels[r])] += 1;
                        nl += 1;
                    }
                }
                let nr = rows.len() - nl;
                if nl == 0 || nr == 0 {
                    continue;
                }
                let right: Vec<usize> =
                    total.iter().zip(&left).map(|(&t, &l)| t - l).collect();
                let w = rows.len() as f64;
                let gain = parent
                    - (nl as f64 / w) * gini(&left, nl)
                    - (nr as f64 / w) * gini(&right, nr);
                // Gini gain is never negative; accept even a zero-gain split
                // (required to escape XOR-like plateaus) but prefer strictly
                // better ones.
                if gain >= 0.0 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    /// Impurity-based feature importance (total gini gain per feature,
    /// normalized to sum to 1). Requires a fitted tree; returns zeros if the
    /// tree is a single leaf.
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        // Count split usage as a proxy (gains are not stored per node).
        let mut imp = vec![0.0; n_features];
        for node in &self.tree.nodes {
            if let Node::Split { feature, .. } = node {
                imp[*feature] += 1.0;
            }
        }
        let s: f64 = imp.iter().sum();
        if s > 0.0 {
            for v in &mut imp {
                *v /= s;
            }
        }
        imp
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Matrix) -> Result<(), MlError> {
        if data.n_rows == 0 || data.cols.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        self.means = FeatureMeans::fit(data);
        let data = self.means.transform(data);
        let mut classes: Vec<i64> = data.labels.clone();
        classes.sort_unstable();
        classes.dedup();
        self.classes = classes;
        let target = ClassificationTarget { labels: &data.labels, classes: &self.classes };
        let rows: Vec<usize> = (0..data.n_rows).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut nodes = Vec::new();
        self.build(&data, &target, &rows, 0, &mut nodes, &mut rng);
        self.tree = TreeNodes { nodes };
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> i64 {
        let mut row = row.to_vec();
        self.means.transform_row(&mut row);
        self.tree.predict_value(&row) as i64
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

use rand::SeedableRng;

/// A regression tree minimizing squared error, with Newton-style leaf
/// values `Σg / (Σh + λ)` — the boosting building block. First-order
/// boosting passes `h = 1` everywhere.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    config: TreeConfig,
    lambda: f64,
    tree: TreeNodes,
}

impl RegressionTree {
    /// Fit a regression tree to per-row gradients/hessians. `data` must be
    /// NaN-free (the boosting driver imputes once up front).
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        data: &Matrix,
        grad: &[f64],
        hess: &[f64],
        config: TreeConfig,
        lambda: f64,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> Self {
        let mut nodes = Vec::new();
        let mut t = RegressionTree { config, lambda, tree: TreeNodes::default() };
        t.build(data, grad, hess, rows, 0, &mut nodes, rng);
        t.tree = TreeNodes { nodes };
        t
    }

    fn leaf_value(&self, grad_sum: f64, hess_sum: f64) -> f64 {
        -grad_sum / (hess_sum + self.lambda)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &self,
        data: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        depth: usize,
        nodes: &mut Vec<Node>,
        rng: &mut StdRng,
    ) -> usize {
        let gs: f64 = rows.iter().map(|&r| grad[r]).sum();
        let hs: f64 = rows.iter().map(|&r| hess[r]).sum();
        let stop = depth >= self.config.max_depth || rows.len() < self.config.min_samples_split;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(data, grad, hess, rows, rng) {
                let (lrows, rrows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| data.cols[feature][r] <= threshold);
                if lrows.len() >= self.config.min_samples_leaf
                    && rrows.len() >= self.config.min_samples_leaf
                {
                    let id = nodes.len();
                    nodes.push(Node::Leaf { value: 0.0 });
                    let left = self.build(data, grad, hess, &lrows, depth + 1, nodes, rng);
                    let right = self.build(data, grad, hess, &rrows, depth + 1, nodes, rng);
                    nodes[id] = Node::Split { feature, threshold, left, right };
                    return id;
                }
            }
        }
        let id = nodes.len();
        nodes.push(Node::Leaf { value: self.leaf_value(gs, hs) });
        id
    }

    fn best_split(
        &self,
        data: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let gs: f64 = rows.iter().map(|&r| grad[r]).sum();
        let hs: f64 = rows.iter().map(|&r| hess[r]).sum();
        let score = |g: f64, h: f64| g * g / (h + self.lambda);
        let parent = score(gs, hs);
        let mut best: Option<(usize, f64, f64)> = None;
        for feature in candidate_features(data.cols.len(), self.config.max_features, rng) {
            let values: Vec<f64> = rows.iter().map(|&r| data.cols[feature][r]).collect();
            for threshold in thresholds(&values, &self.config, rng) {
                let mut gl = 0.0;
                let mut hl = 0.0;
                let mut nl = 0usize;
                for &r in rows {
                    if data.cols[feature][r] <= threshold {
                        gl += grad[r];
                        hl += hess[r];
                        nl += 1;
                    }
                }
                if nl == 0 || nl == rows.len() {
                    continue;
                }
                let gain = score(gl, hl) + score(gs - gl, hs - hl) - parent;
                // Accept zero-gain splits too (XOR-style plateaus), prefer
                // strictly better ones.
                if gain >= 0.0 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    /// Predicted value for a (NaN-free) row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.tree.predict_value(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    fn xor_matrix(n: usize) -> Matrix {
        // Two features; label = x0 XOR x1 — requires depth ≥ 2.
        let x0: Vec<f64> = (0..n).map(|i| ((i / 2) % 2) as f64).collect();
        let x1: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let labels: Vec<i64> = (0..n).map(|i| (((i / 2) % 2) ^ (i % 2)) as i64).collect();
        Matrix {
            feature_names: vec!["x0".into(), "x1".into()],
            cols: vec![x0, x1],
            labels,
            n_rows: n,
        }
    }

    fn linear_matrix(n: usize) -> Matrix {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<i64> = x.iter().map(|&v| i64::from(v >= n as f64 / 2.0)).collect();
        Matrix { feature_names: vec!["x".into()], cols: vec![x], labels, n_rows: n }
    }

    #[test]
    fn learns_linear_boundary_perfectly() {
        let m = linear_matrix(100);
        let mut t = DecisionTree::new(TreeConfig::default(), 0);
        t.fit(&m).unwrap();
        let preds = t.predict(&m);
        assert_eq!(accuracy(&preds, &m.labels), 1.0);
        assert!(t.is_fitted());
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let m = xor_matrix(80);
        let mut t = DecisionTree::new(TreeConfig::default(), 0);
        t.fit(&m).unwrap();
        assert_eq!(accuracy(&t.predict(&m), &m.labels), 1.0);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn max_depth_zero_is_majority_vote() {
        let mut m = linear_matrix(10);
        m.labels = vec![1, 1, 1, 1, 1, 1, 1, 0, 0, 0];
        let mut t = DecisionTree::new(TreeConfig { max_depth: 0, ..Default::default() }, 0);
        t.fit(&m).unwrap();
        assert!(t.predict(&m).iter().all(|&p| p == 1));
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn handles_nan_via_mean_imputation() {
        let mut m = linear_matrix(50);
        m.cols[0][10] = f64::NAN;
        let mut t = DecisionTree::new(TreeConfig::default(), 0);
        t.fit(&m).unwrap();
        let acc = accuracy(&t.predict(&m), &m.labels);
        assert!(acc > 0.95, "acc = {acc}");
    }

    #[test]
    fn empty_dataset_errors() {
        let m = Matrix { feature_names: vec![], cols: vec![], labels: vec![], n_rows: 0 };
        let mut t = DecisionTree::new(TreeConfig::default(), 0);
        assert!(matches!(t.fit(&m), Err(MlError::EmptyDataset)));
    }

    #[test]
    fn multiclass_majority_leaves() {
        let n = 90;
        let x: Vec<f64> = (0..n).map(|i| (i / 30) as f64).collect();
        let labels: Vec<i64> = (0..n).map(|i| (i / 30) as i64 * 7).collect(); // classes 0,7,14
        let m = Matrix { feature_names: vec!["x".into()], cols: vec![x], labels: labels.clone(), n_rows: n };
        let mut t = DecisionTree::new(TreeConfig::default(), 0);
        t.fit(&m).unwrap();
        assert_eq!(accuracy(&t.predict(&m), &labels), 1.0);
    }

    #[test]
    fn random_thresholds_still_learn() {
        let m = linear_matrix(100);
        let cfg = TreeConfig { random_thresholds: true, max_depth: 12, ..Default::default() };
        let mut t = DecisionTree::new(cfg, 3);
        t.fit(&m).unwrap();
        let acc = accuracy(&t.predict(&m), &m.labels);
        assert!(acc > 0.9, "extra-trees-style split should still work, acc = {acc}");
    }

    #[test]
    fn feature_importances_sum_to_one() {
        let m = xor_matrix(80);
        let mut t = DecisionTree::new(TreeConfig::default(), 0);
        t.fit(&m).unwrap();
        let imp = t.feature_importances(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let n = 60;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Pseudo-residuals of a step at 30.
        let grad: Vec<f64> = x.iter().map(|&v| if v < 30.0 { 1.0 } else { -1.0 }).collect();
        let hess = vec![1.0; n];
        let m = Matrix { feature_names: vec!["x".into()], cols: vec![x], labels: vec![0; n], n_rows: n };
        let mut rng = StdRng::seed_from_u64(0);
        let t = RegressionTree::fit(
            &m,
            &grad,
            &hess,
            TreeConfig { max_depth: 2, ..Default::default() },
            1.0,
            &(0..n).collect::<Vec<_>>(),
            &mut rng,
        );
        // Newton leaf: -Σg/(Σh+λ) = -30/(30+1) ≈ -0.97 on the left.
        assert!(t.predict_row(&[5.0]) < -0.9);
        assert!(t.predict_row(&[55.0]) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = xor_matrix(40);
        let mut a = DecisionTree::new(TreeConfig { max_features: MaxFeatures::Sqrt, ..Default::default() }, 9);
        let mut b = DecisionTree::new(TreeConfig { max_features: MaxFeatures::Sqrt, ..Default::default() }, 9);
        a.fit(&m).unwrap();
        b.fit(&m).unwrap();
        assert_eq!(a.predict(&m), b.predict(&m));
    }
}
