//! # autofeat-ml
//!
//! The ML substrate replacing the paper's AutoGluon model zoo. The paper
//! evaluates four decision-tree learners (LightGBM, XGBoost, Random Forest,
//! Extremely Randomised Trees) plus KNN and L1-regularised linear
//! classification; all six are implemented here from scratch:
//!
//! * [`tree`] — CART decision trees (gini for classification, variance
//!   reduction for the regression trees inside boosting);
//! * [`forest`] — Random Forest (bootstrap + √d feature subsampling);
//! * [`extra`] — Extremely Randomised Trees (random thresholds, no
//!   bootstrap);
//! * [`gbdt`] — gradient-boosted decision trees with logistic loss, in a
//!   LightGBM-like first-order preset and an XGBoost-like second-order
//!   preset;
//! * [`knn`] — K-nearest neighbours on standardized features;
//! * [`linear`] — logistic regression with L1 (proximal gradient);
//! * [`eval`] — the `Classifier` trait, accuracy
//!   scoring, and the train/test evaluation harness the experiments use.
//!
//! Learners consume the column-major [`Matrix`](autofeat_data::encode::Matrix)
//! produced by `autofeat-data`; `NaN` cells are imputed internally with
//! feature means learned at fit time.

pub mod dataset;
pub mod eval;
pub mod extra;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod parallel;
pub mod tree;

pub use dataset::{standardize_fit, Standardizer};
pub use eval::{accuracy, Classifier, MlError, ModelKind};
pub use extra::ExtraTrees;
pub use forest::RandomForest;
pub use gbdt::{Gbdt, GbdtConfig};
pub use knn::Knn;
pub use metrics::{cross_validate, roc_auc, Confusion};
pub use linear::LogisticL1;
pub use tree::{DecisionTree, TreeConfig};
