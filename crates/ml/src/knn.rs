//! K-nearest-neighbours classifier on standardized features.

use autofeat_data::encode::Matrix;

use crate::dataset::{row_of, standardize_fit, Standardizer};
use crate::eval::{Classifier, MlError};
use crate::forest::majority_vote;

/// KNN with Euclidean distance over z-scored features.
#[derive(Debug, Clone)]
pub struct Knn {
    /// Number of neighbours.
    pub k: usize,
    scaler: Standardizer,
    train: Option<Matrix>,
}

impl Knn {
    /// KNN with `k` neighbours.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be >= 1");
        Knn { k, scaler: Standardizer::default(), train: None }
    }
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Matrix) -> Result<(), MlError> {
        if data.n_rows == 0 || data.cols.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        self.scaler = standardize_fit(data);
        self.train = Some(self.scaler.transform(data));
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> i64 {
        let train = self.train.as_ref().expect("fit before predict");
        // Scale the query like the training data.
        let query_matrix = Matrix {
            feature_names: train.feature_names.clone(),
            cols: row.iter().map(|&v| vec![v]).collect(),
            labels: vec![0],
            n_rows: 1,
        };
        let scaled = self.scaler.transform(&query_matrix);
        let q: Vec<f64> = scaled.cols.iter().map(|c| c[0]).collect();

        let k = self.k.min(train.n_rows);
        // Track the k smallest distances with a simple bounded insertion
        // (k is tiny, so this beats a heap in practice).
        let mut best: Vec<(f64, i64)> = Vec::with_capacity(k + 1);
        for i in 0..train.n_rows {
            let r = row_of(train, i);
            let d: f64 = r.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
            let pos = best.partition_point(|&(bd, _)| bd <= d);
            if pos < k {
                best.insert(pos, (d, train.labels[i]));
                best.truncate(k);
            }
        }
        majority_vote(best.into_iter().map(|(_, l)| l))
    }

    fn is_fitted(&self) -> bool {
        self.train.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    fn clusters() -> Matrix {
        // Two well-separated clusters of 20 points each.
        let mut x0 = Vec::new();
        let mut x1 = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            x0.push((i % 5) as f64 * 0.1);
            x1.push((i % 4) as f64 * 0.1);
            labels.push(0);
        }
        for i in 0..20 {
            x0.push(10.0 + (i % 5) as f64 * 0.1);
            x1.push(10.0 + (i % 4) as f64 * 0.1);
            labels.push(1);
        }
        Matrix {
            feature_names: vec!["x0".into(), "x1".into()],
            cols: vec![x0, x1],
            labels,
            n_rows: 40,
        }
    }

    #[test]
    fn classifies_clusters() {
        let m = clusters();
        let mut knn = Knn::new(3);
        knn.fit(&m).unwrap();
        assert_eq!(accuracy(&knn.predict(&m), &m.labels), 1.0);
    }

    #[test]
    fn new_point_near_cluster_gets_its_label() {
        let m = clusters();
        let mut knn = Knn::new(5);
        knn.fit(&m).unwrap();
        assert_eq!(knn.predict_row(&[0.05, 0.05]), 0);
        assert_eq!(knn.predict_row(&[10.05, 10.05]), 1);
    }

    #[test]
    fn k_larger_than_dataset_clamps() {
        let m = clusters();
        let mut knn = Knn::new(1000);
        knn.fit(&m).unwrap();
        // With all points voting equally, the tie breaks deterministically.
        let p = knn.predict_row(&[5.0, 5.0]);
        assert!(p == 0 || p == 1);
    }

    #[test]
    fn scaling_matters_for_unbalanced_features() {
        // Feature 0 has a huge irrelevant scale; feature 1 carries the
        // signal. Standardization keeps KNN usable.
        let n = 40;
        let x0: Vec<f64> = (0..n).map(|i| (i % 3) as f64 * 1e6).collect();
        let x1: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.0 } else { 1.0 }).collect();
        let labels: Vec<i64> = (0..n).map(|i| i64::from(i >= n / 2)).collect();
        let m = Matrix {
            feature_names: vec!["noise".into(), "signal".into()],
            cols: vec![x0, x1],
            labels,
            n_rows: n,
        };
        let mut knn = Knn::new(3);
        knn.fit(&m).unwrap();
        let acc = accuracy(&knn.predict(&m), &m.labels);
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn empty_errors() {
        let m = Matrix { feature_names: vec![], cols: vec![], labels: vec![], n_rows: 0 };
        assert!(Knn::new(3).fit(&m).is_err());
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn zero_k_panics() {
        Knn::new(0);
    }
}
