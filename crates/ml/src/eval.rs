//! The classifier interface, accuracy scoring, and the evaluation harness.

use std::fmt;

use autofeat_data::encode::Matrix;

use crate::dataset::row_of;

/// Errors from learners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Fit was called on an empty matrix.
    EmptyDataset,
    /// The learner supports only binary labels but saw more classes.
    NotBinary { n_classes: usize },
    /// Predict was called before fit.
    NotFitted,
    /// Train/test schema mismatch.
    FeatureMismatch { expected: usize, got: usize },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "empty dataset"),
            MlError::NotBinary { n_classes } => {
                write!(f, "binary classifier got {n_classes} classes")
            }
            MlError::NotFitted => write!(f, "classifier is not fitted"),
            MlError::FeatureMismatch { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
        }
    }
}

impl std::error::Error for MlError {}

/// A supervised classifier over numeric matrices.
pub trait Classifier {
    /// Fit on a training matrix.
    fn fit(&mut self, data: &Matrix) -> Result<(), MlError>;

    /// Predict the class of a single row (same feature order as fit).
    fn predict_row(&self, row: &[f64]) -> i64;

    /// Whether fit has completed.
    fn is_fitted(&self) -> bool;

    /// Predict every row of a matrix.
    fn predict(&self, data: &Matrix) -> Vec<i64> {
        (0..data.n_rows)
            .map(|i| self.predict_row(&row_of(data, i)))
            .collect()
    }
}

/// Fraction of exact label matches; zero for empty input.
pub fn accuracy(predictions: &[i64], labels: &[i64]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / labels.len() as f64
}

/// Fit on `train`, report accuracy on `test`.
pub fn evaluate_split(
    model: &mut dyn Classifier,
    train: &Matrix,
    test: &Matrix,
) -> Result<f64, MlError> {
    let _span = autofeat_obs::span("model_eval");
    if train.n_features() != test.n_features() {
        return Err(MlError::FeatureMismatch {
            expected: train.n_features(),
            got: test.n_features(),
        });
    }
    model.fit(train)?;
    autofeat_obs::incr("ml.models_evaluated");
    Ok(accuracy(&model.predict(test), &test.labels))
}

/// The model zoo of the paper's evaluation (§VII-A): four tree learners for
/// the main results plus the two non-tree models of Figs. 5/7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// First-order GBDT preset (LightGBM stand-in).
    LightGbm,
    /// Second-order GBDT preset (XGBoost stand-in).
    XgBoost,
    /// Random Forest.
    RandomForest,
    /// Extremely Randomised Trees.
    ExtraTrees,
    /// K-nearest neighbours.
    Knn,
    /// Logistic regression with L1 regularisation ("LR" in the paper).
    LogisticL1,
}

impl ModelKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::LightGbm => "LightGBM",
            ModelKind::XgBoost => "XGBoost",
            ModelKind::RandomForest => "RandomForest",
            ModelKind::ExtraTrees => "ExtraTrees",
            ModelKind::Knn => "KNN",
            ModelKind::LogisticL1 => "LR",
        }
    }

    /// The four tree-based models of Figs. 4/6.
    pub fn tree_models() -> [ModelKind; 4] {
        [
            ModelKind::LightGbm,
            ModelKind::XgBoost,
            ModelKind::RandomForest,
            ModelKind::ExtraTrees,
        ]
    }

    /// The non-tree models of Figs. 5/7.
    pub fn non_tree_models() -> [ModelKind; 2] {
        [ModelKind::Knn, ModelKind::LogisticL1]
    }

    /// Instantiate with a seed.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ModelKind::LightGbm => Box::new(crate::gbdt::Gbdt::new(
                crate::gbdt::GbdtConfig::lightgbm_like(),
                seed,
            )),
            ModelKind::XgBoost => Box::new(crate::gbdt::Gbdt::new(
                crate::gbdt::GbdtConfig::xgboost_like(),
                seed,
            )),
            ModelKind::RandomForest => Box::new(crate::forest::RandomForest::default_seeded(seed)),
            ModelKind::ExtraTrees => Box::new(crate::extra::ExtraTrees::default_seeded(seed)),
            ModelKind::Knn => Box::new(crate::knn::Knn::new(5)),
            ModelKind::LogisticL1 => Box::new(crate::linear::LogisticL1::default_config()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[5], &[5]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::LightGbm.name(), "LightGBM");
        assert_eq!(ModelKind::tree_models().len(), 4);
        assert_eq!(ModelKind::non_tree_models().len(), 2);
    }

    #[test]
    fn every_model_kind_builds() {
        for kind in ModelKind::tree_models()
            .into_iter()
            .chain(ModelKind::non_tree_models())
        {
            let m = kind.build(1);
            assert!(!m.is_fitted());
        }
    }

    #[test]
    fn evaluate_split_rejects_schema_mismatch() {
        let train = Matrix {
            feature_names: vec!["a".into()],
            cols: vec![vec![1.0, 2.0]],
            labels: vec![0, 1],
            n_rows: 2,
        };
        let test = Matrix {
            feature_names: vec!["a".into(), "b".into()],
            cols: vec![vec![1.0], vec![2.0]],
            labels: vec![0],
            n_rows: 1,
        };
        let mut m = ModelKind::RandomForest.build(0);
        assert!(matches!(
            evaluate_split(m.as_mut(), &train, &test),
            Err(MlError::FeatureMismatch { .. })
        ));
    }
}
