//! Name-based (linguistic) column similarity.
//!
//! COMA's linguistic matchers compare identifiers after normalization; we
//! implement the same idea: tokenize `snake_case` / `camelCase` / dotted
//! names, then blend token-set Jaccard with Jaro-Winkler string similarity.

/// Split an identifier into lowercase tokens on `_`, `-`, `.`, spaces, and
/// camelCase boundaries; digits form their own tokens.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    let mut prev_digit = false;
    for c in name.chars() {
        if c == '_' || c == '-' || c == '.' || c.is_whitespace() {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
            prev_digit = false;
            continue;
        }
        let boundary = (c.is_uppercase() && prev_lower)
            || (c.is_ascii_digit() != prev_digit && !cur.is_empty() && (c.is_ascii_digit() || prev_digit));
        if boundary && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
        prev_lower = c.is_lowercase();
        prev_digit = c.is_ascii_digit();
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Jaccard similarity of the token sets of two identifiers.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: std::collections::HashSet<String> = tokenize(a).into_iter().collect();
    let tb: std::collections::HashSet<String> = tokenize(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

/// Jaro similarity of two strings, in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut match_idx_b: Vec<usize> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                match_idx_b.push(j);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare matched chars in order of b.
    let mut b_matches: Vec<(usize, char)> = match_idx_b
        .iter()
        .zip(&matches_a)
        .map(|(&j, &c)| (j, c))
        .collect();
    b_matches.sort_by_key(|&(j, _)| j);
    let t = matches_a
        .iter()
        .zip(b_matches.iter().map(|&(_, c)| c))
        .filter(|(a, b)| **a != *b)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by common-prefix length (up to 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// Combined name similarity: the max of token-set Jaccard and Jaro-Winkler
/// over the lowercase raw names (COMA composes matchers by aggregation; max
/// rewards either a shared vocabulary or a near-identical spelling).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let jw = jaro_winkler(&a.to_lowercase(), &b.to_lowercase());
    token_jaccard(a, b).max(jw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_snake_and_camel() {
        assert_eq!(tokenize("applicant_id"), vec!["applicant", "id"]);
        assert_eq!(tokenize("creditScore"), vec!["credit", "score"]);
        assert_eq!(tokenize("Loan.History2"), vec!["loan", "history", "2"]);
    }

    #[test]
    fn tokenize_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("___").is_empty());
    }

    #[test]
    fn jaccard_identical_tokens() {
        assert_eq!(token_jaccard("credit_score", "score_credit"), 1.0);
        assert_eq!(token_jaccard("a_b", "c_d"), 0.0);
        assert!((token_jaccard("credit_score", "credit_id") - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro("dixon", "dicksonx") - 0.766667).abs() < 1e-4);
    }

    #[test]
    fn jaro_winkler_boosts_prefix() {
        let j = jaro("martha", "marhta");
        let jw = jaro_winkler("martha", "marhta");
        assert!(jw > j);
        assert!((jw - 0.961111).abs() < 1e-4);
    }

    #[test]
    fn name_similarity_is_symmetric_and_bounded() {
        let pairs = [("applicant_id", "applicantID"), ("credit", "debit"), ("x", "y")];
        for (a, b) in pairs {
            let s1 = name_similarity(a, b);
            let s2 = name_similarity(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn same_semantics_different_style_scores_high() {
        assert!(name_similarity("applicant_id", "ApplicantId") > 0.9);
        assert!(name_similarity("property_value", "value.property") > 0.9);
    }

    #[test]
    fn unrelated_names_score_low() {
        // Jaro-Winkler is lenient, so "low" means clearly below a strong
        // match; disjoint alphabets score near zero.
        assert!(name_similarity("zip_code", "income") < 0.75);
        assert!(name_similarity("aaaa", "zzzz") < 0.1);
    }
}
