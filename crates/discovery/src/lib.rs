//! # autofeat-discovery
//!
//! Dataset-discovery substrate: a schema/instance matcher standing in for
//! **COMA** (as used by the paper via the Valentine framework, §IV and
//! §VII-A) to build the joinability relationships of the Dataset Relation
//! Graph in the *data-lake setting*.
//!
//! For every column pair across two tables the matcher combines:
//!
//! * **name similarity** — token-set Jaccard + Jaro-Winkler over normalized
//!   identifiers ([`name_sim`]);
//! * **instance similarity** — Jaccard / containment overlap of the value
//!   sets, computable exactly or via MinHash sketches for large columns
//!   ([`value_sim`]).
//!
//! The composite score is a weighted blend in `[0, 1]`; pairs scoring above
//! a threshold (the paper uses **0.55**, chosen to "encourage spurious, but
//! not irrelevant, connections") become candidate join edges. The DRG
//! construction is explicitly independent of the concrete matcher — any
//! scorer emitting a similarity in `[0,1]` plugs in.

pub mod lsh;
pub mod matcher;
pub mod name_sim;
pub mod profile;
pub mod value_sim;

pub use lsh::LshIndex;
pub use matcher::{ColumnMatch, MatcherConfig, SchemaMatcher};
pub use profile::ColumnProfile;
pub use value_sim::MinHash;

/// The similarity threshold the paper uses for the data-lake setting.
pub const PAPER_THRESHOLD: f64 = 0.55;
