//! Instance-based (value-overlap) column similarity.
//!
//! Joinability is fundamentally about overlapping value sets (Def. IV.1:
//! "their intersection is non-empty"). We provide exact Jaccard and
//! containment over hashed value sets, plus a MinHash sketch (in the spirit
//! of Lazo) for estimating Jaccard on large columns without materializing
//! full sets.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Exact Jaccard similarity of two value-hash sets.
pub fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

/// Containment of `a` in `b`: `|a ∩ b| / |a|`. Asymmetric — high when most
/// of `a`'s values appear in `b` (the FK → PK direction).
pub fn containment(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.intersection(b).count() as f64 / a.len() as f64
}

/// Stable 64-bit hash for sketching (FNV-1a — deterministic across runs,
/// unlike `DefaultHasher` with random keys).
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Hash a displayable value into the sketch domain.
pub fn hash_value<T: Hash>(v: &T) -> u64 {
    // Hash through FNV via the std Hash trait with a deterministic state.
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    v.hash(&mut h);
    h.finish()
}

/// A fixed-size MinHash sketch of a value set; the fraction of agreeing
/// slots between two sketches is an unbiased estimate of Jaccard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    mins: Vec<u64>,
    n_values: usize,
}

impl MinHash {
    /// An empty sketch with `k` permutations.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "sketch size must be positive");
        MinHash { mins: vec![u64::MAX; k], n_values: 0 }
    }

    /// Number of permutations.
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// Number of values inserted (with multiplicity).
    pub fn n_values(&self) -> usize {
        self.n_values
    }

    /// The raw per-permutation minima (used by LSH banding).
    pub fn slots(&self) -> &[u64] {
        &self.mins
    }

    /// Insert one value hash.
    pub fn insert(&mut self, value_hash: u64) {
        self.n_values += 1;
        for (i, slot) in self.mins.iter_mut().enumerate() {
            // Derive the i-th permutation by mixing with an odd constant.
            let h = value_hash
                .wrapping_mul(0x9e37_79b9_7f4a_7c15 ^ ((i as u64) << 1 | 1))
                .rotate_left((i % 63) as u32 + 1);
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Build a sketch from an iterator of value hashes.
    pub fn from_hashes<I: IntoIterator<Item = u64>>(k: usize, iter: I) -> Self {
        let mut s = MinHash::new(k);
        for h in iter {
            s.insert(h);
        }
        s
    }

    /// Estimated Jaccard similarity with another sketch of the same size.
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(self.k(), other.k(), "sketch sizes must match");
        if self.n_values == 0 && other.n_values == 0 {
            return 0.0;
        }
        let agree = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.k() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(values: impl IntoIterator<Item = u64>) -> HashSet<u64> {
        values.into_iter().collect()
    }

    #[test]
    fn jaccard_basics() {
        let a = set([1, 2, 3]);
        let b = set([2, 3, 4]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&set([]), &set([])), 0.0);
        assert_eq!(jaccard(&a, &set([])), 0.0);
    }

    #[test]
    fn containment_is_asymmetric() {
        let fk = set([1, 2]);
        let pk = set([1, 2, 3, 4]);
        assert_eq!(containment(&fk, &pk), 1.0);
        assert_eq!(containment(&pk, &fk), 0.5);
        assert_eq!(containment(&set([]), &pk), 0.0);
    }

    #[test]
    fn stable_hash_is_deterministic_and_spread() {
        assert_eq!(stable_hash(b"abc"), stable_hash(b"abc"));
        assert_ne!(stable_hash(b"abc"), stable_hash(b"abd"));
    }

    #[test]
    fn hash_value_matches_types() {
        assert_eq!(hash_value(&42i64), hash_value(&42i64));
        assert_ne!(hash_value(&42i64), hash_value(&43i64));
        assert_eq!(hash_value(&"x"), hash_value(&"x"));
    }

    #[test]
    fn minhash_identical_sets_estimate_one() {
        let hashes: Vec<u64> = (0..500u64).map(|i| stable_hash(&i.to_le_bytes())).collect();
        let a = MinHash::from_hashes(128, hashes.iter().copied());
        let b = MinHash::from_hashes(128, hashes.iter().copied());
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    fn minhash_disjoint_sets_estimate_near_zero() {
        let a = MinHash::from_hashes(128, (0..500u64).map(|i| stable_hash(&i.to_le_bytes())));
        let b = MinHash::from_hashes(
            128,
            (1000..1500u64).map(|i| stable_hash(&i.to_le_bytes())),
        );
        assert!(a.jaccard(&b) < 0.1);
    }

    #[test]
    fn minhash_estimates_half_overlap() {
        let a = MinHash::from_hashes(256, (0..1000u64).map(|i| stable_hash(&i.to_le_bytes())));
        let b = MinHash::from_hashes(
            256,
            (500..1500u64).map(|i| stable_hash(&i.to_le_bytes())),
        );
        // True Jaccard = 500/1500 ≈ 0.333.
        let est = a.jaccard(&b);
        assert!((est - 1.0 / 3.0).abs() < 0.12, "estimate {est}");
    }

    #[test]
    fn minhash_duplicates_do_not_change_sketch() {
        let mut a = MinHash::new(64);
        let mut b = MinHash::new(64);
        for i in 0..100u64 {
            let h = stable_hash(&i.to_le_bytes());
            a.insert(h);
            b.insert(h);
            b.insert(h); // duplicate
        }
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(b.n_values(), 200);
    }

    #[test]
    #[should_panic(expected = "sketch sizes must match")]
    fn mismatched_sketch_sizes_panic() {
        MinHash::new(8).jaccard(&MinHash::new(16));
    }

    #[test]
    fn empty_sketches_score_zero() {
        assert_eq!(MinHash::new(8).jaccard(&MinHash::new(8)), 0.0);
    }
}
