//! Column profiles: the per-column summaries the matcher scores against.

use std::collections::HashSet;

use autofeat_data::{Column, Table};

use crate::value_sim::{hash_value, MinHash};

/// Default MinHash sketch size.
pub const DEFAULT_SKETCH_K: usize = 128;

/// Cap on the exact value set retained per column; columns with more
/// distinct values rely on the MinHash estimate instead.
pub const EXACT_SET_CAP: usize = 100_000;

/// A profile of one column: identity, type, and value-set summaries.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Owning table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Logical type.
    pub dtype: autofeat_data::DType,
    /// Fraction of nulls.
    pub null_ratio: f64,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Exact hashes of distinct values (present iff `distinct <= EXACT_SET_CAP`).
    pub value_hashes: Option<HashSet<u64>>,
    /// MinHash sketch of the value set.
    pub sketch: MinHash,
}

impl ColumnProfile {
    /// Profile one column of a table.
    pub fn build(table_name: &str, column_name: &str, col: &Column) -> Self {
        let mut hashes: HashSet<u64> = HashSet::new();
        let mut sketch = MinHash::new(DEFAULT_SKETCH_K);
        for row in 0..col.len() {
            if let Some(k) = col.key(row) {
                let h = hash_value(&k);
                if hashes.insert(h) {
                    sketch.insert(h);
                }
            }
        }
        let distinct = hashes.len();
        ColumnProfile {
            table: table_name.to_string(),
            column: column_name.to_string(),
            dtype: col.dtype(),
            null_ratio: col.null_ratio(),
            distinct,
            value_hashes: (distinct <= EXACT_SET_CAP).then_some(hashes),
            sketch,
        }
    }

    /// Profile every column of a table.
    pub fn build_all(table: &Table) -> Vec<ColumnProfile> {
        autofeat_obs::add("match.profiles_built", table.n_cols() as u64);
        (0..table.n_cols())
            .map(|i| {
                ColumnProfile::build(
                    table.name(),
                    &table.field_at(i).name,
                    table.column_at(i),
                )
            })
            .collect()
    }

    /// The MinHash sketch's raw slots (for LSH banding).
    pub fn sketch_slots(&self) -> &[u64] {
        self.sketch.slots()
    }

    /// Whether this column looks like a feasible join key: it has at least
    /// one distinct value and is not overwhelmingly null.
    pub fn is_joinable_candidate(&self) -> bool {
        self.distinct > 0 && self.null_ratio < 0.9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::{Column, Table};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("id", Column::from_ints([Some(1), Some(2), Some(2), None])),
                ("name", Column::from_strs([Some("a"), Some("b"), Some("c"), Some("d")])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn profile_counts_distinct_and_nulls() {
        let t = table();
        let p = ColumnProfile::build("t", "id", t.column("id").unwrap());
        assert_eq!(p.distinct, 2);
        assert!((p.null_ratio - 0.25).abs() < 1e-12);
        assert!(p.value_hashes.is_some());
        assert_eq!(p.value_hashes.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn build_all_covers_every_column() {
        let ps = ColumnProfile::build_all(&table());
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].column, "id");
        assert_eq!(ps[1].table, "t");
    }

    #[test]
    fn joinable_candidate_gate() {
        let all_null = Column::from_ints([None, None]);
        let p = ColumnProfile::build("t", "x", &all_null);
        assert!(!p.is_joinable_candidate());
        let ok = ColumnProfile::build("t", "id", table().column("id").unwrap());
        assert!(ok.is_joinable_candidate());
    }

    #[test]
    fn identical_columns_share_sketch() {
        let c = Column::from_ints((0..100).map(Some).collect::<Vec<_>>());
        let p1 = ColumnProfile::build("a", "x", &c);
        let p2 = ColumnProfile::build("b", "y", &c);
        assert_eq!(p1.sketch.jaccard(&p2.sketch), 1.0);
    }
}
