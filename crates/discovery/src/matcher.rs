//! The composite schema matcher (COMA substitute).
//!
//! For every cross-table column pair the matcher blends name similarity and
//! instance (value-overlap) similarity into one score in `[0, 1]`; pairs
//! above the configured threshold become candidate join edges for the DRG.

use autofeat_data::Table;

use crate::name_sim::name_similarity;
use crate::profile::ColumnProfile;
use crate::value_sim::{containment, jaccard};

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Minimum composite score to report a match (paper: 0.55).
    pub threshold: f64,
    /// Weight of name similarity in the blend.
    pub name_weight: f64,
    /// Weight of instance similarity in the blend.
    pub value_weight: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            threshold: crate::PAPER_THRESHOLD,
            name_weight: 0.5,
            value_weight: 0.5,
        }
    }
}

/// A scored column correspondence between two tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatch {
    /// Column in the left table.
    pub left_column: String,
    /// Column in the right table.
    pub right_column: String,
    /// Composite similarity score in `[0, 1]`.
    pub score: f64,
}

/// The schema matcher.
#[derive(Debug, Clone, Default)]
pub struct SchemaMatcher {
    config: MatcherConfig,
}

impl SchemaMatcher {
    /// Matcher with a custom configuration.
    pub fn new(config: MatcherConfig) -> Self {
        SchemaMatcher { config }
    }

    /// Matcher with the paper's 0.55 threshold.
    pub fn paper_default() -> Self {
        SchemaMatcher::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Instance similarity of two profiles: exact Jaccard blended with the
    /// larger containment direction when exact sets are available, MinHash
    /// estimate otherwise.
    pub fn instance_similarity(&self, a: &ColumnProfile, b: &ColumnProfile) -> f64 {
        match (&a.value_hashes, &b.value_hashes) {
            (Some(ha), Some(hb)) => {
                let j = jaccard(ha, hb);
                let c = containment(ha, hb).max(containment(hb, ha));
                // Containment catches FK⊂PK even when sizes differ a lot.
                (j + c) / 2.0
            }
            _ => a.sketch.jaccard(&b.sketch),
        }
    }

    /// Single-pass instance similarity: one hash-set intersection feeding
    /// both the Jaccard and containment terms. Bit-identical to
    /// [`instance_similarity`](Self::instance_similarity) (same arithmetic,
    /// evaluated once) but ~3× cheaper on exact sets — the variant hot
    /// candidate-generation paths use.
    pub fn instance_similarity_fused(&self, a: &ColumnProfile, b: &ColumnProfile) -> f64 {
        match (&a.value_hashes, &b.value_hashes) {
            (Some(ha), Some(hb)) => {
                let (small, large) = if ha.len() <= hb.len() { (ha, hb) } else { (hb, ha) };
                let inter = small.iter().filter(|h| large.contains(h)).count() as f64;
                let j = if ha.is_empty() && hb.is_empty() {
                    0.0
                } else {
                    inter / (ha.len() as f64 + hb.len() as f64 - inter)
                };
                let ca = if ha.is_empty() { 0.0 } else { inter / ha.len() as f64 };
                let cb = if hb.is_empty() { 0.0 } else { inter / hb.len() as f64 };
                (j + ca.max(cb)) / 2.0
            }
            _ => a.sketch.jaccard(&b.sketch),
        }
    }

    /// Composite score of a column pair.
    pub fn score_pair(&self, a: &ColumnProfile, b: &ColumnProfile) -> f64 {
        if !a.is_joinable_candidate() || !b.is_joinable_candidate() {
            return 0.0;
        }
        let name = name_similarity(&a.column, &b.column);
        let inst = self.instance_similarity(a, b);
        self.blend(name, inst)
    }

    /// Composite score with a precomputed name similarity (callers that
    /// cache name sims across many pairs — e.g. the incremental DRG
    /// maintainer — skip recomputing Jaro-Winkler per pair). Uses the fused
    /// instance pass; scores are bit-identical to [`score_pair`](Self::score_pair).
    pub fn score_pair_with_name(&self, name: f64, a: &ColumnProfile, b: &ColumnProfile) -> f64 {
        if !a.is_joinable_candidate() || !b.is_joinable_candidate() {
            return 0.0;
        }
        let inst = self.instance_similarity_fused(a, b);
        self.blend(name, inst)
    }

    fn blend(&self, name: f64, inst: f64) -> f64 {
        let w = self.config.name_weight + self.config.value_weight;
        if w <= 0.0 {
            // Zero (or degenerate) weights would divide 0/0 into NaN and
            // poison every comparison downstream; an all-zero blend scores
            // nothing instead.
            return 0.0;
        }
        ((self.config.name_weight * name + self.config.value_weight * inst) / w).clamp(0.0, 1.0)
    }

    /// Match two pre-profiled tables; returns pairs scoring ≥ threshold,
    /// sorted by descending score.
    pub fn match_profiles(
        &self,
        left: &[ColumnProfile],
        right: &[ColumnProfile],
    ) -> Vec<ColumnMatch> {
        let mut out = Vec::new();
        autofeat_obs::add("match.pairs_scored", (left.len() * right.len()) as u64);
        for a in left {
            for b in right {
                let score = self.score_pair(a, b);
                if score >= self.config.threshold {
                    out.push(ColumnMatch {
                        left_column: a.column.clone(),
                        right_column: b.column.clone(),
                        score,
                    });
                }
            }
        }
        out.sort_by(Self::match_order);
        autofeat_obs::add("match.pairs_matched", out.len() as u64);
        out
    }

    /// The canonical ordering of reported matches: descending score (total
    /// order — scores are finite by construction but a NaN from a hostile
    /// config must not abort the sort), then column names. Exposed so
    /// alternative candidate generators can reproduce `match_profiles`
    /// output exactly.
    pub fn match_order(x: &ColumnMatch, y: &ColumnMatch) -> std::cmp::Ordering {
        y.score
            .total_cmp(&x.score)
            .then_with(|| x.left_column.cmp(&y.left_column))
            .then_with(|| x.right_column.cmp(&y.right_column))
    }

    /// Match two tables directly (profiles them first).
    pub fn match_tables(&self, left: &Table, right: &Table) -> Vec<ColumnMatch> {
        let lp = ColumnProfile::build_all(left);
        let rp = ColumnProfile::build_all(right);
        self.match_profiles(&lp, &rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::{Column, Table};

    fn applicants() -> Table {
        Table::new(
            "applicants",
            vec![
                ("applicant_id", Column::from_ints((0..50).map(Some).collect::<Vec<_>>())),
                ("income", Column::from_floats((0..50).map(|i| Some(i as f64 * 1000.0)).collect::<Vec<_>>())),
            ],
        )
        .unwrap()
    }

    fn credit() -> Table {
        Table::new(
            "credit",
            vec![
                // Same key domain, similar name → strong match.
                ("applicantId", Column::from_ints((0..50).map(Some).collect::<Vec<_>>())),
                // Overlapping values but unrelated name → spurious edge.
                ("credit_score", Column::from_ints((0..50).map(Some).collect::<Vec<_>>())),
                ("notes", Column::from_strs((0..50).map(|i| Some(format!("n{i}"))).collect::<Vec<_>>())),
            ],
        )
        .unwrap()
    }

    #[test]
    fn finds_the_true_key_pair_with_top_score() {
        let m = SchemaMatcher::paper_default();
        let matches = m.match_tables(&applicants(), &credit());
        assert!(!matches.is_empty());
        assert_eq!(matches[0].left_column, "applicant_id");
        assert_eq!(matches[0].right_column, "applicantId");
        assert!(matches[0].score > 0.9);
    }

    #[test]
    fn spurious_value_overlap_also_surfaces() {
        // The paper *wants* spurious-but-not-irrelevant edges at 0.55.
        let m = SchemaMatcher::paper_default();
        let matches = m.match_tables(&applicants(), &credit());
        assert!(
            matches
                .iter()
                .any(|c| c.left_column == "applicant_id" && c.right_column == "credit_score"),
            "value-identical pair should pass the 0.55 threshold: {matches:?}"
        );
    }

    #[test]
    fn unrelated_string_column_does_not_match_keys() {
        let m = SchemaMatcher::paper_default();
        let matches = m.match_tables(&applicants(), &credit());
        assert!(!matches
            .iter()
            .any(|c| c.right_column == "notes" && c.left_column == "applicant_id"));
    }

    #[test]
    fn threshold_is_respected() {
        let strict = SchemaMatcher::new(MatcherConfig { threshold: 0.99, ..Default::default() });
        let matches = strict.match_tables(&applicants(), &credit());
        assert!(matches.iter().all(|c| c.score >= 0.99));
    }

    #[test]
    fn results_sorted_by_score() {
        let m = SchemaMatcher::paper_default();
        let matches = m.match_tables(&applicants(), &credit());
        for w in matches.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn all_null_columns_never_match() {
        let l = Table::new("l", vec![("k", Column::from_ints([None, None]))]).unwrap();
        let r = Table::new("r", vec![("k", Column::from_ints([None, None]))]).unwrap();
        let m = SchemaMatcher::paper_default();
        assert!(m.match_tables(&l, &r).is_empty());
    }

    #[test]
    fn score_pair_bounded() {
        let t = applicants();
        let ps = ColumnProfile::build_all(&t);
        let m = SchemaMatcher::paper_default();
        let s = m.score_pair(&ps[0], &ps[1]);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn zero_weights_do_not_panic_with_nan() {
        // Regression: name_weight + value_weight == 0 made score_pair
        // return 0/0 = NaN and the `partial_cmp(..).expect("finite scores")`
        // sort aborted the process. Now the blend guards the division and
        // the sort is total.
        let m = SchemaMatcher::new(MatcherConfig {
            threshold: 0.0,
            name_weight: 0.0,
            value_weight: 0.0,
        });
        let matches = m.match_tables(&applicants(), &credit());
        assert!(
            matches.iter().all(|c| c.score == 0.0),
            "zero-weight blend must score 0.0, not NaN: {matches:?}"
        );
    }

    #[test]
    fn fused_instance_similarity_is_bit_identical() {
        let lp = ColumnProfile::build_all(&applicants());
        let rp = ColumnProfile::build_all(&credit());
        let m = SchemaMatcher::paper_default();
        for a in lp.iter().chain(rp.iter()) {
            for b in lp.iter().chain(rp.iter()) {
                assert_eq!(
                    m.instance_similarity(a, b).to_bits(),
                    m.instance_similarity_fused(a, b).to_bits(),
                    "fused pass diverged on {}.{} × {}.{}",
                    a.table,
                    a.column,
                    b.table,
                    b.column
                );
            }
        }
    }

    #[test]
    fn score_pair_with_name_matches_score_pair() {
        use crate::name_sim::name_similarity;
        let lp = ColumnProfile::build_all(&applicants());
        let rp = ColumnProfile::build_all(&credit());
        let m = SchemaMatcher::paper_default();
        for a in &lp {
            for b in &rp {
                let name = name_similarity(&a.column, &b.column);
                assert_eq!(
                    m.score_pair(a, b).to_bits(),
                    m.score_pair_with_name(name, a, b).to_bits()
                );
            }
        }
    }
}
