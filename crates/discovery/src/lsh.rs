//! LSH banding over MinHash sketches: find candidate joinable column pairs
//! without scoring all `O(C²)` column combinations (the trick behind
//! Lazo-style joinability discovery at data-lake scale).
//!
//! A sketch of `k` slots is cut into `b` bands of `r` rows (`k = b·r`);
//! two columns collide when any band hashes identically. With Jaccard
//! similarity `s`, the collision probability is `1 − (1 − s^r)^b` — an
//! S-curve whose threshold is tuned by `(b, r)`.

use std::collections::HashMap;

use crate::profile::ColumnProfile;
use crate::value_sim::stable_hash;

/// An LSH index over column profiles.
#[derive(Debug, Clone)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// (band, band-hash) → column ids.
    buckets: HashMap<(usize, u64), Vec<usize>>,
    n_columns: usize,
}

impl LshIndex {
    /// Build an index with `bands × rows` ≤ sketch size.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands >= 1 && rows >= 1, "bands and rows must be positive");
        LshIndex { bands, rows, buckets: HashMap::new(), n_columns: 0 }
    }

    /// A default tuned for the paper's 0.55 threshold: with a 128-slot
    /// sketch, 32 bands of 4 rows put the S-curve's steep section near
    /// s ≈ (1/b)^(1/r) = (1/32)^(1/4) ≈ 0.42 — safely recalling everything
    /// the 0.55 scorer would accept.
    pub fn paper_default() -> Self {
        LshIndex::new(32, 4)
    }

    /// Approximate Jaccard threshold of the S-curve midpoint.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    fn band_hashes(&self, profile: &ColumnProfile) -> Vec<u64> {
        let mins = profile.sketch_slots();
        let mut out = Vec::with_capacity(self.bands);
        for b in 0..self.bands {
            let start = b * self.rows;
            if start + self.rows > mins.len() {
                break;
            }
            let mut bytes = Vec::with_capacity(self.rows * 8);
            for &m in &mins[start..start + self.rows] {
                bytes.extend_from_slice(&m.to_le_bytes());
            }
            out.push(stable_hash(&bytes));
        }
        out
    }

    /// Insert a column profile under the caller's id.
    pub fn insert(&mut self, id: usize, profile: &ColumnProfile) {
        for (band, h) in self.band_hashes(profile).into_iter().enumerate() {
            self.buckets.entry((band, h)).or_default().push(id);
        }
        self.n_columns += 1;
    }

    /// Candidate ids colliding with `profile` in at least one band
    /// (deduplicated, ascending).
    pub fn query(&self, profile: &ColumnProfile) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for (band, h) in self.band_hashes(profile).into_iter().enumerate() {
            if let Some(ids) = self.buckets.get(&(band, h)) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All colliding id pairs in the index (i < j), deduplicated.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for ids in self.buckets.values() {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    pairs.push(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Number of columns inserted.
    pub fn len(&self) -> usize {
        self.n_columns
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_columns == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    fn profile(name: &str, values: std::ops::Range<i64>) -> ColumnProfile {
        let col = Column::from_ints(values.map(Some).collect::<Vec<_>>());
        ColumnProfile::build("t", name, &col)
    }

    #[test]
    fn identical_columns_always_collide() {
        let a = profile("a", 0..500);
        let b = profile("b", 0..500);
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &a);
        assert_eq!(idx.query(&b), vec![0]);
    }

    #[test]
    fn disjoint_columns_rarely_collide() {
        let a = profile("a", 0..500);
        let b = profile("b", 10_000..10_500);
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &a);
        assert!(idx.query(&b).is_empty(), "disjoint sets should not collide");
    }

    #[test]
    fn high_overlap_collides() {
        // 80% overlap ⇒ Jaccard ≈ 2/3, far above the ~0.42 S-curve midpoint.
        let a = profile("a", 0..1000);
        let b = profile("b", 200..1200);
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &a);
        assert_eq!(idx.query(&b), vec![0]);
    }

    #[test]
    fn candidate_pairs_enumerate_collisions() {
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &profile("a", 0..300));
        idx.insert(1, &profile("b", 0..300));
        idx.insert(2, &profile("c", 50_000..50_300));
        let pairs = idx.candidate_pairs();
        assert!(pairs.contains(&(0, 1)));
        assert!(!pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(1, 2)));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn threshold_formula() {
        let idx = LshIndex::new(32, 4);
        assert!((idx.threshold() - (1.0f64 / 32.0).powf(0.25)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bands_panics() {
        LshIndex::new(0, 4);
    }
}
