//! LSH banding over MinHash sketches: find candidate joinable column pairs
//! without scoring all `O(C²)` column combinations (the trick behind
//! Lazo-style joinability discovery at data-lake scale).
//!
//! A sketch of `k` slots is cut into `b` bands of `r` rows (`k = b·r`);
//! two columns collide when any band hashes identically. With Jaccard
//! similarity `s`, the collision probability is `1 − (1 − s^r)^b` — an
//! S-curve whose threshold is tuned by `(b, r)`.
//!
//! The index is mutable: `insert` is idempotent per id and `remove` undoes
//! an insertion, so a lake can churn tables without rebuilding the index.
//! Buckets larger than `bucket_cap` (constant or low-cardinality columns
//! all sketch alike and pile into one bucket) are excluded from candidate
//! generation instead of expanding `O(|bucket|²)` pairs; each skip is
//! counted under `match.lsh_bucket_overflow`. `insert`/`remove` report the
//! buckets whose size crossed the cap so incremental maintainers can
//! rescore exactly the pairs whose candidacy flipped.

use std::collections::HashMap;

use crate::profile::{ColumnProfile, DEFAULT_SKETCH_K};
use crate::value_sim::stable_hash;

/// Largest bucket that still contributes candidate pairs. Beyond this the
/// bucket is treated as degenerate (constant/low-cardinality columns): it
/// is skipped entirely and counted under `match.lsh_bucket_overflow`.
pub const DEFAULT_BUCKET_CAP: usize = 256;

/// An LSH index over column profiles.
#[derive(Debug, Clone)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    bucket_cap: usize,
    /// (band, band-hash) → column ids (no duplicates; order immaterial).
    buckets: HashMap<(usize, u64), Vec<usize>>,
    /// id → its per-band hashes, recorded at insertion. Makes `insert`
    /// idempotent, enables `remove`, and lets `collides` run without
    /// re-hashing profiles.
    members: HashMap<usize, Vec<u64>>,
}

impl LshIndex {
    /// Build an index with `bands × rows` bands over the default sketch.
    ///
    /// # Panics
    /// If either dimension is zero, or if `bands × rows` exceeds
    /// [`DEFAULT_SKETCH_K`] — a larger product would silently truncate the
    /// trailing bands (hashing fewer slots than configured loses recall),
    /// so the configuration is rejected up front.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands >= 1 && rows >= 1, "bands and rows must be positive");
        assert!(
            bands * rows <= DEFAULT_SKETCH_K,
            "bands × rows ({bands}×{rows}) exceeds the {DEFAULT_SKETCH_K}-slot sketch; \
             the extra bands would be silently dropped"
        );
        LshIndex {
            bands,
            rows,
            bucket_cap: DEFAULT_BUCKET_CAP,
            buckets: HashMap::new(),
            members: HashMap::new(),
        }
    }

    /// A default tuned for the paper's 0.55 threshold: with a 128-slot
    /// sketch, 32 bands of 4 rows put the S-curve's steep section near
    /// s ≈ (1/b)^(1/r) = (1/32)^(1/4) ≈ 0.42 — safely recalling everything
    /// the 0.55 scorer would accept.
    pub fn paper_default() -> Self {
        LshIndex::new(32, 4)
    }

    /// The recall-heavy default used for DRG candidate generation: 64 bands
    /// of 2 rows put the S-curve midpoint near (1/64)^(1/2) ≈ 0.125, so even
    /// weak value overlap (Jaccard ≈ 0.2 collides with p ≈ 0.93; ≈ 0.3 with
    /// p ≈ 0.998) survives into full scoring. Precision is the scorer's job;
    /// the index only has to avoid dropping edges the 0.55 blend would keep.
    pub fn hybrid_default() -> Self {
        LshIndex::new(64, 2)
    }

    /// Replace the degenerate-bucket cap (see [`DEFAULT_BUCKET_CAP`]).
    pub fn with_bucket_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "bucket cap must be positive");
        self.bucket_cap = cap;
        self
    }

    /// The configured degenerate-bucket cap.
    pub fn bucket_cap(&self) -> usize {
        self.bucket_cap
    }

    /// Approximate Jaccard threshold of the S-curve midpoint.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    fn band_hashes(&self, profile: &ColumnProfile) -> Vec<u64> {
        let mins = profile.sketch_slots();
        if mins.len() < self.bands * self.rows {
            // `new()` guarantees default-size sketches fit; a caller-built
            // short sketch still clamps, but loudly.
            autofeat_obs::incr("match.lsh_sketch_clamped");
        }
        let mut out = Vec::with_capacity(self.bands);
        for b in 0..self.bands {
            let start = b * self.rows;
            if start + self.rows > mins.len() {
                break;
            }
            let mut bytes = Vec::with_capacity(self.rows * 8);
            for &m in &mins[start..start + self.rows] {
                bytes.extend_from_slice(&m.to_le_bytes());
            }
            out.push(stable_hash(&bytes));
        }
        out
    }

    /// Insert a column profile under the caller's id. Re-inserting an id
    /// replaces its previous sketch (no double counting). Returns the
    /// buckets that grew past `bucket_cap` by this insertion — the pairs
    /// they used to generate just lost candidacy.
    pub fn insert(&mut self, id: usize, profile: &ColumnProfile) -> Vec<(usize, u64)> {
        if self.members.contains_key(&id) {
            self.remove(id);
        }
        let hashes = self.band_hashes(profile);
        let mut crossed = Vec::new();
        for (band, &h) in hashes.iter().enumerate() {
            let bucket = self.buckets.entry((band, h)).or_default();
            bucket.push(id);
            if bucket.len() == self.bucket_cap + 1 {
                crossed.push((band, h));
            }
        }
        self.members.insert(id, hashes);
        crossed
    }

    /// Remove an id inserted earlier; unknown ids are a no-op. Returns the
    /// buckets that shrank back to `bucket_cap` — their pairs just regained
    /// candidacy.
    pub fn remove(&mut self, id: usize) -> Vec<(usize, u64)> {
        let Some(hashes) = self.members.remove(&id) else {
            return Vec::new();
        };
        let mut uncrossed = Vec::new();
        for (band, h) in hashes.into_iter().enumerate() {
            if let Some(bucket) = self.buckets.get_mut(&(band, h)) {
                if let Some(pos) = bucket.iter().position(|&m| m == id) {
                    bucket.swap_remove(pos);
                }
                if bucket.len() == self.bucket_cap {
                    uncrossed.push((band, h));
                }
                if bucket.is_empty() {
                    self.buckets.remove(&(band, h));
                }
            }
        }
        uncrossed
    }

    /// Whether `id` is currently indexed.
    pub fn contains(&self, id: usize) -> bool {
        self.members.contains_key(&id)
    }

    /// Whether two indexed ids share at least one non-degenerate bucket.
    /// Unknown ids never collide. Degenerate (over-cap) buckets do not
    /// count — candidacy through them is what the cap exists to suppress.
    pub fn collides(&self, a: usize, b: usize) -> bool {
        let (Some(ha), Some(hb)) = (self.members.get(&a), self.members.get(&b)) else {
            return false;
        };
        ha.iter().zip(hb.iter()).enumerate().any(|(band, (x, y))| {
            x == y
                && self
                    .buckets
                    .get(&(band, *x))
                    .is_some_and(|bucket| bucket.len() <= self.bucket_cap)
        })
    }

    /// Current members of one bucket (empty slice if absent). Includes
    /// over-cap buckets — maintainers need them to find the pairs affected
    /// by a cap crossing.
    pub fn bucket_members(&self, band: usize, hash: u64) -> &[usize] {
        self.buckets.get(&(band, hash)).map_or(&[], Vec::as_slice)
    }

    /// Ids sharing at least one non-degenerate bucket with `id`
    /// (deduplicated, ascending, `id` excluded).
    pub fn partners(&self, id: usize) -> Vec<usize> {
        let Some(hashes) = self.members.get(&id) else {
            return Vec::new();
        };
        let mut out: Vec<usize> = Vec::new();
        for (band, &h) in hashes.iter().enumerate() {
            if let Some(bucket) = self.buckets.get(&(band, h)) {
                if bucket.len() > self.bucket_cap {
                    autofeat_obs::incr("match.lsh_bucket_overflow");
                    continue;
                }
                out.extend(bucket.iter().copied().filter(|&m| m != id));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate ids colliding with `profile` in at least one band
    /// (deduplicated, ascending). Over-cap buckets are skipped and counted
    /// under `match.lsh_bucket_overflow`.
    pub fn query(&self, profile: &ColumnProfile) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for (band, h) in self.band_hashes(profile).into_iter().enumerate() {
            if let Some(ids) = self.buckets.get(&(band, h)) {
                if ids.len() > self.bucket_cap {
                    autofeat_obs::incr("match.lsh_bucket_overflow");
                    continue;
                }
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All colliding id pairs in the index (i < j), deduplicated. Over-cap
    /// buckets contribute no pairs (counted under
    /// `match.lsh_bucket_overflow`) — the expansion would be `O(|bucket|²)`
    /// on degenerate buckets and the scorer rejects those pairs anyway.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for ids in self.buckets.values() {
            if ids.len() > self.bucket_cap {
                autofeat_obs::incr("match.lsh_bucket_overflow");
                continue;
            }
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    pairs.push(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Number of columns currently indexed.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Rough resident footprint in bytes (buckets + member records).
    pub fn resident_bytes(&self) -> usize {
        let bucket_bytes: usize = self
            .buckets
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<usize>() + 24)
            .sum();
        let member_bytes: usize = self
            .members
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<u64>() + 32)
            .sum();
        bucket_bytes + member_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofeat_data::Column;

    fn profile(name: &str, values: std::ops::Range<i64>) -> ColumnProfile {
        let col = Column::from_ints(values.map(Some).collect::<Vec<_>>());
        ColumnProfile::build("t", name, &col)
    }

    #[test]
    fn identical_columns_always_collide() {
        let a = profile("a", 0..500);
        let b = profile("b", 0..500);
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &a);
        assert_eq!(idx.query(&b), vec![0]);
    }

    #[test]
    fn disjoint_columns_rarely_collide() {
        let a = profile("a", 0..500);
        let b = profile("b", 10_000..10_500);
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &a);
        assert!(idx.query(&b).is_empty(), "disjoint sets should not collide");
    }

    #[test]
    fn high_overlap_collides() {
        // 80% overlap ⇒ Jaccard ≈ 2/3, far above the ~0.42 S-curve midpoint.
        let a = profile("a", 0..1000);
        let b = profile("b", 200..1200);
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &a);
        assert_eq!(idx.query(&b), vec![0]);
    }

    #[test]
    fn candidate_pairs_enumerate_collisions() {
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &profile("a", 0..300));
        idx.insert(1, &profile("b", 0..300));
        idx.insert(2, &profile("c", 50_000..50_300));
        let pairs = idx.candidate_pairs();
        assert!(pairs.contains(&(0, 1)));
        assert!(!pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(1, 2)));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn threshold_formula() {
        let idx = LshIndex::new(32, 4);
        assert!((idx.threshold() - (1.0f64 / 32.0).powf(0.25)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bands_panics() {
        LshIndex::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds the 128-slot sketch")]
    fn oversized_banding_rejected_at_new() {
        // 64 × 4 = 256 > 128 slots: the old code silently hashed only the
        // first 32 bands; now the configuration is rejected up front.
        LshIndex::new(64, 4);
    }

    #[test]
    fn repeated_insert_is_idempotent() {
        let mut idx = LshIndex::paper_default();
        let a = profile("a", 0..300);
        idx.insert(0, &a);
        idx.insert(0, &a);
        idx.insert(0, &a);
        assert_eq!(idx.len(), 1, "re-inserting an id must not double count");
        assert_eq!(idx.query(&profile("b", 0..300)), vec![0]);
    }

    #[test]
    fn remove_undoes_insert() {
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &profile("a", 0..300));
        idx.insert(1, &profile("b", 0..300));
        assert!(idx.collides(0, 1));
        idx.remove(0);
        assert_eq!(idx.len(), 1);
        assert!(!idx.contains(0));
        assert!(!idx.collides(0, 1));
        assert_eq!(idx.query(&profile("c", 0..300)), vec![1]);
        // Removing an unknown id is a no-op.
        assert!(idx.remove(42).is_empty());
    }

    #[test]
    fn bucket_cap_suppresses_degenerate_buckets() {
        // Three identical columns with a cap of 2: every shared bucket is
        // over cap, so no pairs survive and collides() reports false.
        let mut idx = LshIndex::paper_default().with_bucket_cap(2);
        for id in 0..3 {
            idx.insert(id, &profile("x", 0..300));
        }
        assert!(idx.candidate_pairs().is_empty());
        assert!(!idx.collides(0, 1));
        assert!(idx.query(&profile("y", 0..300)).is_empty());
        // Dropping back under the cap restores candidacy.
        let uncrossed = idx.remove(2);
        assert!(!uncrossed.is_empty(), "removal must report cap re-crossings");
        assert!(idx.collides(0, 1));
        assert_eq!(idx.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn insert_reports_cap_crossings() {
        let mut idx = LshIndex::paper_default().with_bucket_cap(2);
        idx.insert(0, &profile("x", 0..300));
        idx.insert(1, &profile("x", 0..300));
        let crossed = idx.insert(2, &profile("x", 0..300));
        assert!(!crossed.is_empty(), "third identical column crosses cap 2");
        for &(band, h) in &crossed {
            assert_eq!(idx.bucket_members(band, h).len(), 3);
        }
    }

    #[test]
    fn partners_respects_cap() {
        let mut idx = LshIndex::paper_default();
        idx.insert(0, &profile("a", 0..300));
        idx.insert(1, &profile("b", 0..300));
        idx.insert(2, &profile("c", 9_000..9_300));
        assert_eq!(idx.partners(0), vec![1]);
        assert!(idx.partners(2).is_empty());
        assert!(idx.partners(99).is_empty());
    }
}
