//! The recording half of the crate: [`Tracer`] handles, RAII [`Span`]s,
//! and the cross-thread [`TraceScope`].

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::trace::{DistSummary, PhaseNode, RunTrace, TraceEvent};
use crate::{thread_key, AMBIENT, Ambient};

/// Maximum number of events retained per trace; later events are counted
/// in [`RunTrace::events_dropped`] instead of stored.
pub(crate) const EVENT_CAP: usize = 256;

/// Number of log₂-spaced histogram buckets per distribution. Bucket `i`
/// has upper bound `1µs × 2^i`, so the range spans 1µs … ~134s.
pub(crate) const N_DIST_BUCKETS: usize = 28;

#[derive(Default)]
struct SpanAcc {
    count: u64,
    nanos: u64,
}

pub(crate) struct DistAcc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; N_DIST_BUCKETS],
}

impl Default for DistAcc {
    fn default() -> DistAcc {
        DistAcc { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, buckets: [0; N_DIST_BUCKETS] }
    }
}

impl DistAcc {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }
}

/// The histogram bucket for an observation of `secs`. Shared with the
/// always-on metrics registry so tracer distributions and service
/// histograms land on the same grid.
pub(crate) fn bucket_index(secs: f64) -> usize {
    if secs.is_nan() || secs <= 1e-6 {
        return 0; // ≤ 1µs, NaN, and negative all land in bucket 0
    }
    let idx = (secs / 1e-6).log2().ceil() as usize;
    idx.min(N_DIST_BUCKETS - 1)
}

/// Upper bound (seconds) of histogram bucket `i`.
pub(crate) fn bucket_le_secs(i: usize) -> f64 {
    1e-6 * (1u64 << i.min(63)) as f64
}

#[derive(Default)]
struct EventBuf {
    entries: Vec<TraceEvent>,
    dropped: u64,
}

pub(crate) struct Inner {
    started: Instant,
    // Keyed by (span path, thread key): per-thread accumulation feeds the
    // max-across-threads wall-time aggregation in `snapshot`.
    spans: Mutex<HashMap<(String, u64), SpanAcc>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    dists: Mutex<BTreeMap<&'static str, DistAcc>>,
    events: Mutex<EventBuf>,
}

impl Inner {
    pub(crate) fn add_counter(&self, name: &'static str, n: u64) {
        if let Ok(mut c) = self.counters.lock() {
            *c.entry(name).or_insert(0) += n;
        }
    }

    pub(crate) fn record_dist(&self, name: &'static str, secs: f64) {
        if let Ok(mut d) = self.dists.lock() {
            d.entry(name).or_default().record(secs);
        }
    }

    pub(crate) fn push_event(&self, kind: &'static str, detail: impl FnOnce() -> String) {
        if let Ok(mut e) = self.events.lock() {
            if e.entries.len() < EVENT_CAP {
                e.entries.push(TraceEvent { kind: kind.to_string(), detail: detail() });
            } else {
                e.dropped += 1;
            }
        }
    }

    fn record_span(&self, path: String, thread: u64, elapsed: Duration) {
        if let Ok(mut s) = self.spans.lock() {
            let acc = s.entry((path, thread)).or_default();
            acc.count += 1;
            acc.nanos += elapsed.as_nanos() as u64;
        }
    }

    fn snapshot(&self) -> RunTrace {
        let wall = self.started.elapsed();

        // Aggregate spans per path: count and cpu sum across threads, wall
        // as the max per-thread sum (critical-path estimate for fan-outs).
        #[derive(Default)]
        struct Agg {
            count: u64,
            cpu: u64,
            wall: u64,
        }
        let mut by_path: BTreeMap<String, Agg> = BTreeMap::new();
        if let Ok(spans) = self.spans.lock() {
            for ((path, _thread), acc) in spans.iter() {
                let agg = by_path.entry(path.clone()).or_default();
                agg.count += acc.count;
                agg.cpu += acc.nanos;
                agg.wall = agg.wall.max(acc.nanos);
            }
        }
        // A worker-recorded path can exist without its parent having been
        // recorded yet (or at all, if the parent span outlives the
        // snapshot); synthesize zero-cost ancestors so the tree is closed.
        let paths: Vec<String> = by_path.keys().cloned().collect();
        for p in paths {
            let mut q = p.as_str();
            while let Some(i) = q.rfind('.') {
                q = &q[..i];
                by_path.entry(q.to_string()).or_default();
            }
        }

        // Lexicographic order lists every parent immediately before its
        // subtree, so one pass with a stack builds the forest.
        let mut roots: Vec<PhaseNode> = Vec::new();
        let mut stack: Vec<PhaseNode> = Vec::new();
        let attach = |stack: &mut Vec<PhaseNode>, roots: &mut Vec<PhaseNode>| {
            if let Some(done) = stack.pop() {
                match stack.last_mut() {
                    Some(parent) => {
                        parent.self_time = parent.self_time.saturating_sub(done.wall);
                        parent.children.push(done);
                    }
                    None => roots.push(done),
                }
            }
        };
        for (path, agg) in by_path {
            while let Some(top) = stack.last() {
                let is_child = path.len() > top.path.len()
                    && path.starts_with(top.path.as_str())
                    && path.as_bytes()[top.path.len()] == b'.';
                if is_child {
                    break;
                }
                attach(&mut stack, &mut roots);
            }
            let name = path.rsplit('.').next().unwrap_or(path.as_str()).to_string();
            let wall = Duration::from_nanos(agg.wall);
            stack.push(PhaseNode {
                name,
                path,
                count: agg.count,
                wall,
                cpu: Duration::from_nanos(agg.cpu),
                self_time: wall,
                children: Vec::new(),
            });
        }
        while !stack.is_empty() {
            attach(&mut stack, &mut roots);
        }

        let counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .map(|c| c.iter().map(|(&k, &v)| (k.to_string(), v)).collect())
            .unwrap_or_default();
        let dists: Vec<(String, DistSummary)> = self
            .dists
            .lock()
            .map(|d| {
                d.iter()
                    .map(|(&k, acc)| {
                        let buckets: Vec<(f64, u64)> = acc
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|&(_, &c)| c > 0)
                            .map(|(i, &c)| (bucket_le_secs(i), c))
                            .collect();
                        (
                            k.to_string(),
                            DistSummary {
                                count: acc.count,
                                sum_secs: acc.sum,
                                min_secs: if acc.count == 0 { 0.0 } else { acc.min },
                                max_secs: if acc.count == 0 { 0.0 } else { acc.max },
                                buckets,
                            },
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        let (events, events_dropped) = self
            .events
            .lock()
            .map(|e| (e.entries.clone(), e.dropped))
            .unwrap_or_default();

        RunTrace { wall, phases: roots, counters, dists, events, events_dropped }
    }
}

/// A handle to one run's trace collector.
///
/// Cloning is an `Arc` bump; all clones feed the same collector. The
/// [disabled](Tracer::disabled) handle records nothing and makes every
/// instrumentation call site a near-free early return. Install a tracer on
/// the current thread with [`with_tracer`](crate::with_tracer); the
/// instrumented pipeline picks it up ambiently.
#[derive(Clone, Default)]
pub struct Tracer {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// A recording tracer; the trace's wall clock starts now.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                started: Instant::now(),
                spans: Mutex::new(HashMap::new()),
                counters: Mutex::new(BTreeMap::new()),
                dists: Mutex::new(BTreeMap::new()),
                events: Mutex::new(EventBuf::default()),
            })),
        }
    }

    /// The inert tracer: records nothing, snapshots empty.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Aggregate everything recorded so far into a [`RunTrace`]
    /// (deterministically ordered). Empty for a disabled tracer.
    pub fn snapshot(&self) -> RunTrace {
        match &self.inner {
            Some(inner) => inner.snapshot(),
            None => RunTrace::default(),
        }
    }
}

/// A captured `(tracer, span path)` pair, for carrying the ambient tracing
/// context across a thread boundary — see
/// [`ambient_scope`](crate::ambient_scope).
#[derive(Clone)]
pub struct TraceScope {
    tracer: Tracer,
    prefix: Arc<str>,
}

impl TraceScope {
    pub(crate) fn new(tracer: Tracer, prefix: &str) -> TraceScope {
        TraceScope { tracer, prefix: Arc::from(prefix) }
    }

    /// Install the captured context on the current thread, returning a
    /// guard that restores the previous context on drop. Inert (and
    /// allocation-free) when the captured tracer is disabled.
    pub fn enter(&self) -> ScopeGuard {
        if self.tracer.inner.is_none() {
            return ScopeGuard(None);
        }
        let prev = AMBIENT.with(|a| {
            std::mem::replace(
                &mut *a.borrow_mut(),
                Ambient { tracer: self.tracer.clone(), prefix: self.prefix.to_string() },
            )
        });
        ScopeGuard(Some(prev))
    }
}

/// Restores the previous ambient context when dropped.
pub struct ScopeGuard(Option<Ambient>);

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            AMBIENT.with(|a| *a.borrow_mut() = prev);
        }
    }
}

/// RAII span timer returned by [`span`](crate::span): records the elapsed
/// wall time against its path when dropped.
pub struct Span {
    live: Option<SpanLive>,
}

struct SpanLive {
    inner: Arc<Inner>,
    path: String,
    prev_len: usize,
    start: Instant,
}

impl Span {
    pub(crate) fn noop() -> Span {
        Span { live: None }
    }

    pub(crate) fn live(inner: Arc<Inner>, path: String, prev_len: usize, start: Instant) -> Span {
        Span { live: Some(SpanLive { inner, path, prev_len, start }) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let elapsed = live.start.elapsed();
            AMBIENT.with(|a| a.borrow_mut().prefix.truncate(live.prev_len));
            live.inner.record_span(live.path, thread_key(), elapsed);
        }
    }
}
