//! Always-on service metrics: a lock-cheap registry of atomic counters,
//! gauges, and fixed-bucket histograms with streaming quantile reads.
//!
//! This is the *service-lifetime* half of the crate, deliberately distinct
//! from the per-run [`Tracer`](crate::Tracer):
//!
//! | | [`Tracer`] | [`MetricsRegistry`] |
//! |---|---|---|
//! | lifetime | one discovery run | the process |
//! | reset | fresh per run | never |
//! | sharing | ambient thread-local scope | `Arc`-shared handles |
//! | output | post-hoc [`RunTrace`](crate::RunTrace) artifact | live [`MetricsSnapshot`] scrapes |
//!
//! A `RunTrace` answers "what did *that request* do"; the registry answers
//! "what is *this deployment* doing right now" — latency quantiles,
//! outcome rates, cache pressure — the numbers an operator watches on a
//! resident service. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! cloned `Arc`s around atomics: updates are single `fetch_add`s, with no
//! lock on any hot path. The registry's only lock guards the name → handle
//! map, taken at registration and snapshot time.
//!
//! Nothing here feeds back into discovery decisions — instrumented code
//! paths stay bit-identical with telemetry enabled or disabled (gated by
//! the `serve_throughput` bench).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂-spaced histogram buckets, sharing the
/// [`RunTrace`](crate::RunTrace) distribution grid: bucket `i` has upper
/// bound `1µs × 2^i`, spanning 1µs … ~134s. See
/// [`bucket_bounds_secs`](crate::dist_bucket_bounds_secs).
pub const N_HIST_BUCKETS: usize = crate::tracer::N_DIST_BUCKETS;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; a detached (unregistered) counter still counts, it just never
/// appears in a snapshot.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Mirror an externally maintained monotonic total into this counter
    /// (used to re-export totals owned by another subsystem, e.g. the lake
    /// cache's hit count, at scrape time). Monotonic: the stored value
    /// never decreases even if `total` regresses.
    pub fn record_total(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down, stored as an `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; N_HIST_BUCKETS],
    sum_nanos: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log₂ histogram of durations in seconds, supporting
/// lock-free concurrent observation and streaming quantile reads.
///
/// The observation count is *derived* (the sum over buckets), never stored
/// separately — so a concurrent snapshot can never see a count that
/// disagrees with its own bucket totals.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation, in seconds.
    pub fn observe_secs(&self, secs: f64) {
        self.0.buckets[crate::tracer::bucket_index(secs)].fetch_add(1, Ordering::Relaxed);
        let nanos = if secs.is_finite() && secs > 0.0 { (secs * 1e9) as u64 } else { 0 };
        self.0.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] observation.
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_secs(d.as_secs_f64());
    }

    /// A tear-free point-in-time copy. Buckets are read in one pass and the
    /// count is their sum, so `count == Σ buckets` holds in every snapshot
    /// taken during concurrent load. `sum_secs` is read separately and may
    /// trail the buckets by in-flight observations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum_secs: self.0.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            buckets,
        }
    }
}

/// Point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations (always equals the sum over `buckets`).
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_secs: f64,
    /// Per-bucket (non-cumulative) observation counts; bucket `i`'s upper
    /// bound is [`crate::dist_bucket_bounds_secs`]`()[i]`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum_secs / self.count as f64 }
    }

    /// Streaming quantile estimate (`q` in `[0, 1]`): find the bucket where
    /// the cumulative count crosses `q × total` and interpolate linearly
    /// within it. Resolution is bounded by the log₂ grid (a factor-of-two
    /// band), which is exactly what a latency dashboard needs. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let bounds = crate::dist_bucket_bounds_secs();
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev_cum = cum;
            cum += c;
            if (cum as f64) >= rank {
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let upper = bounds[i];
                let frac = (rank - prev_cum as f64) / c as f64;
                return lower + (upper - lower) * frac.clamp(0.0, 1.0);
            }
        }
        bounds[N_HIST_BUCKETS - 1]
    }
}

/// What one registered metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down `f64` gauge.
    Gauge,
    /// Fixed-bucket duration histogram.
    Histogram,
}

#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A process-lifetime registry of named metrics.
///
/// Registration is idempotent: asking for an existing name (with the same
/// kind) returns a clone of the existing handle, so independent subsystems
/// can share an instrument by name. A kind clash returns a *detached*
/// handle — it works, it is just never exported — rather than panicking,
/// keeping the fail-soft discipline (telemetry must never take down the
/// service it observes).
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry").field("metrics", &n).finish()
    }
}

impl MetricsRegistry {
    /// An empty registry, ready to share behind an `Arc`.
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::default())
    }

    fn register(&self, name: &str, help: &str, make: Instrument) -> Instrument {
        let Ok(mut entries) = self.entries.lock() else {
            return make; // poisoned registry: hand out a detached handle
        };
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if e.instrument.kind() == make.kind() {
                return e.instrument.clone();
            }
            return make; // kind clash: detached, never exported
        }
        entries.push(Entry { name: name.to_string(), help: help.to_string(), instrument: make.clone() });
        make
    }

    /// Get or register the named counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, Instrument::Counter(Counter::default())) {
            Instrument::Counter(c) => c,
            _ => Counter::default(),
        }
    }

    /// Get or register the named gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            _ => Gauge::default(),
        }
    }

    /// Get or register the named histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, Instrument::Histogram(Histogram::default())) {
            Instrument::Histogram(h) => h,
            _ => Histogram::default(),
        }
    }

    /// A consistent point-in-time read of every registered metric, sorted
    /// by name. Lock-cheap: the registry lock is held only to clone the
    /// handle list; the values themselves are atomic loads.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let handles: Vec<(String, String, Instrument)> = self
            .entries
            .lock()
            .map(|e| {
                e.iter()
                    .map(|e| (e.name.clone(), e.help.clone(), e.instrument.clone()))
                    .collect()
            })
            .unwrap_or_default();
        let mut metrics: Vec<MetricValue> = handles
            .into_iter()
            .map(|(name, help, instrument)| {
                let value = match instrument {
                    Instrument::Counter(c) => MetricData::Counter(c.get()),
                    Instrument::Gauge(g) => MetricData::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricData::Histogram(h.snapshot()),
                };
                MetricValue { name, help, value }
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { metrics }
    }
}

/// One metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct MetricValue {
    /// Registered metric name (e.g. `autofeat_requests_ok_total`).
    pub name: String,
    /// One-line human description, rendered as `# HELP`.
    pub help: String,
    /// The value, by kind.
    pub value: MetricData,
}

/// A snapshot value, by metric kind.
#[derive(Debug, Clone)]
pub enum MetricData {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram copy.
    Histogram(HistogramSnapshot),
}

/// Everything a [`MetricsRegistry`] knew at one instant, sorted by metric
/// name. Render with [`expose::render_prometheus`](crate::expose::render_prometheus)
/// or [`expose::render_json`](crate::expose::render_json).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All metrics, ascending by name.
    pub metrics: Vec<MetricValue>,
}

impl MetricsSnapshot {
    /// The named metric, if registered.
    pub fn get(&self, name: &str) -> Option<&MetricData> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].value)
    }

    /// Counter total by name (`None` when absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricData::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name (`None` when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricData::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by name (`None` when absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricData::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("req_total", "requests");
        let b = reg.counter("req_total", "requests");
        a.incr();
        b.add(4);
        a.add(0); // no-op
        assert_eq!(a.get(), 5, "same name = same atomic");
        assert_eq!(reg.snapshot().counter("req_total"), Some(5));
    }

    #[test]
    fn record_total_is_monotonic() {
        let c = Counter::default();
        c.record_total(10);
        c.record_total(7); // regression ignored
        assert_eq!(c.get(), 10);
        c.record_total(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauges_go_up_and_down() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("in_flight", "concurrent requests");
        g.set(3.0);
        assert_eq!(g.get(), 3.0);
        g.set(0.5);
        assert_eq!(reg.snapshot().gauge("in_flight"), Some(0.5));
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn kind_clash_returns_detached_handle() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x", "");
        c.add(2);
        let g = reg.gauge("x", ""); // clash: detached
        g.set(99.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(2), "registered counter untouched");
        assert_eq!(snap.metrics.len(), 1, "clashing gauge never exported");
    }

    #[test]
    fn histogram_count_always_equals_bucket_sum() {
        let h = Histogram::default();
        for i in 0..100 {
            h.observe_secs(1e-6 * (i as f64 + 1.0) * 37.0);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.count, s.buckets.iter().sum::<u64>());
        assert!(s.sum_secs > 0.0);
        assert!(s.mean_secs() > 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::default();
        // 90 fast observations (~1ms) and 10 slow ones (~1s).
        for _ in 0..90 {
            h.observe_secs(0.001);
        }
        for _ in 0..10 {
            h.observe_secs(1.0);
        }
        let s = h.snapshot();
        let (p50, p90, p99) = (s.quantile(0.50), s.quantile(0.90), s.quantile(0.99));
        assert!((0.0005..=0.002).contains(&p50), "p50 in the fast band: {p50}");
        assert!((0.5..=2.0).contains(&p99), "p99 in the slow band: {p99}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles are ordered");
        assert_eq!(Histogram::default().snapshot().quantile(0.5), 0.0, "empty = 0");
    }

    #[test]
    fn histogram_extremes_land_in_edge_buckets() {
        let h = Histogram::default();
        h.observe_secs(0.0); // bucket 0
        h.observe_secs(f64::NAN); // bucket 0, no sum contribution
        h.observe_secs(1e9); // clamped to the last bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[N_HIST_BUCKETS - 1], 1);
        assert!(s.quantile(1.0) <= crate::dist_bucket_bounds_secs()[N_HIST_BUCKETS - 1]);
    }

    #[test]
    fn snapshot_is_sorted_and_lookup_works() {
        let reg = MetricsRegistry::new();
        reg.counter("zzz", "").incr();
        reg.gauge("aaa", "").set(1.0);
        reg.histogram("mmm", "").observe_secs(0.01);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["aaa", "mmm", "zzz"]);
        assert!(snap.histogram("mmm").is_some());
        assert!(snap.get("nope").is_none());
    }

    #[test]
    fn concurrent_observation_loses_nothing() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits", "");
        let h = reg.histogram("lat", "");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (c, h) = (c.clone(), h.clone());
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                        h.observe_secs(0.001);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }
}
