//! Exposition of a [`MetricsSnapshot`]: Prometheus-style text, a
//! stable-schema JSON document, and a zero-dependency TCP stats listener.
//!
//! The text format follows the Prometheus exposition conventions —
//! `# HELP` / `# TYPE` comment lines, `name value` samples, histograms as
//! cumulative `_bucket{le="…"}` series plus `_sum`/`_count`, and
//! pre-computed quantile gauges (`…_p50`/`…_p90`/`…_p99`) so a bare
//! `curl /metrics | grep p99` answers the latency question without a query
//! engine. The JSON layout is versioned like the run-trace schema: the
//! authoritative schema lives in `metrics.schema.json` at the repository
//! root; any breaking change bumps [`METRICS_SCHEMA_VERSION`].
//!
//! [`StatsListener`] is the first brick of the roadmap's network
//! front-end: an std-only HTTP/1.0 responder on a background thread,
//! serving `GET /metrics` (text), `GET /metrics.json`, and `GET /healthz`
//! from whatever [`StatsSource`] it wraps. It is scrape-oriented by
//! design — one request per connection, no keep-alive, no framework — and
//! shuts down with its owner ([`StatsListener::stop`], also on drop).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{MetricData, MetricsSnapshot};
use crate::trace::escape_json;

/// Version of the JSON metrics layout emitted by [`render_json`].
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Quantiles pre-computed for every histogram in both renderings.
pub const EXPOSED_QUANTILES: [(f64, &str); 3] = [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")];

/// Format a sample value the way Prometheus text exposition expects:
/// integers bare, floats with enough digits to round-trip.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.9}")
    }
}

/// Render a snapshot as Prometheus-style text exposition.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for m in &snap.metrics {
        if !m.help.is_empty() {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
        }
        match &m.value {
            MetricData::Counter(v) => {
                out.push_str(&format!("# TYPE {} counter\n{} {v}\n", m.name, m.name));
            }
            MetricData::Gauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n{} {}\n", m.name, m.name, fmt_value(*v)));
            }
            MetricData::Histogram(h) => {
                out.push_str(&format!("# TYPE {} histogram\n", m.name));
                let bounds = crate::dist_bucket_bounds_secs();
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    cum += c;
                    // Elide empty leading/inner buckets only when nothing
                    // has landed yet; cumulative counts stay correct.
                    if c == 0 && cum == 0 {
                        continue;
                    }
                    out.push_str(&format!(
                        "{}_bucket{{le=\"{:.9}\"}} {cum}\n",
                        m.name, bounds[i]
                    ));
                }
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", m.name, h.count));
                out.push_str(&format!("{}_sum {:.9}\n", m.name, h.sum_secs));
                out.push_str(&format!("{}_count {}\n", m.name, h.count));
                for (q, suffix) in EXPOSED_QUANTILES {
                    out.push_str(&format!(
                        "# TYPE {}_{suffix} gauge\n{}_{suffix} {:.9}\n",
                        m.name,
                        m.name,
                        h.quantile(q)
                    ));
                }
            }
        }
    }
    out
}

/// Render a snapshot as the stable JSON layout (`metrics.schema.json`).
pub fn render_json(snap: &MetricsSnapshot) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"schema_version\": {METRICS_SCHEMA_VERSION},\n"));
    s.push_str("  \"generator\": \"autofeat-obs\",\n");
    s.push_str("  \"metrics\": {");
    for (i, m) in snap.metrics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\": ", escape_json(&m.name)));
        match &m.value {
            MetricData::Counter(v) => {
                s.push_str(&format!("{{\"type\": \"counter\", \"value\": {v}}}"));
            }
            MetricData::Gauge(v) => {
                s.push_str(&format!("{{\"type\": \"gauge\", \"value\": {v:.9}}}"));
            }
            MetricData::Histogram(h) => {
                s.push_str(&format!(
                    "{{\"type\": \"histogram\", \"count\": {}, \"sum_secs\": {:.9}",
                    h.count, h.sum_secs
                ));
                for (q, suffix) in EXPOSED_QUANTILES {
                    s.push_str(&format!(", \"{suffix}_secs\": {:.9}", h.quantile(q)));
                }
                s.push_str(", \"buckets\": [");
                let bounds = crate::dist_bucket_bounds_secs();
                let mut first = true;
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push_str(&format!("{{\"le_secs\": {:.9}, \"count\": {c}}}", bounds[i]));
                }
                s.push_str("]}");
            }
        }
    }
    s.push_str(if snap.metrics.is_empty() { "}\n" } else { "\n  }\n" });
    s.push_str("}\n");
    s
}

/// What a [`StatsListener`] serves. Implementations render fresh state per
/// request — the listener itself caches nothing.
pub trait StatsSource: Send + Sync + 'static {
    /// Body for `GET /metrics` (Prometheus-style text).
    fn metrics_text(&self) -> String;
    /// Body for `GET /metrics.json` (stable-schema JSON).
    fn metrics_json(&self) -> String;
    /// Health for `GET /healthz`: `true` = 200 `ok`, `false` = 503
    /// `shutting down`.
    fn healthy(&self) -> bool;
}

/// A minimal HTTP/1.0 stats endpoint on a background thread.
///
/// Routes: `GET /metrics`, `GET /metrics.json`, `GET /healthz`; everything
/// else is 404. One request per connection; responses close the stream.
#[derive(Debug)]
pub struct StatsListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatsListener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `source` from a background thread.
    pub fn serve(addr: impl ToSocketAddrs, source: Arc<dyn StatsSource>) -> std::io::Result<StatsListener> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept + short sleep: lets the accept loop poll the
        // shutdown flag without platform-specific wakeup machinery.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("autofeat-stats".to_string())
            .spawn(move || accept_loop(&listener, &flag, source.as_ref()))?;
        Ok(StatsListener { addr, shutdown, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the background thread. Idempotent; also runs
    /// on drop.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsListener {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &AtomicBool, source: &dyn StatsSource) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare (seconds apart) and small,
                // so one connection at a time keeps the listener trivial.
                let _ = serve_connection(stream, source);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Read the request head (bounded), route it, write the response.
fn serve_connection(mut stream: TcpStream, source: &dyn StatsSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 16 * 1024 {
            break;
        }
    }
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", "text/plain; version=0.0.4", source.metrics_text()),
        ("GET", "/metrics.json") => ("200 OK", "application/json", source.metrics_json()),
        ("GET", "/healthz") => {
            if source.healthy() {
                ("200 OK", "text/plain", "ok\n".to_string())
            } else {
                ("503 Service Unavailable", "text/plain", "shutting down\n".to_string())
            }
        }
        ("GET", _) => ("404 Not Found", "text/plain", "not found\n".to_string()),
        _ => ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("svc_requests_ok_total", "requests that completed").add(7);
        reg.gauge("svc_in_flight", "currently executing").set(2.0);
        let h = reg.histogram("svc_latency_seconds", "request latency");
        for _ in 0..9 {
            h.observe_secs(0.002);
        }
        h.observe_secs(0.5);
        reg.snapshot()
    }

    /// Every non-comment exposition line must be `name[{labels}] value`
    /// with a float-parseable value — the "parseable Prometheus text"
    /// acceptance gate, asserted the same way the bench asserts it.
    fn assert_parseable(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!name.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        }
    }

    #[test]
    fn prometheus_rendering_is_parseable_and_complete() {
        let text = render_prometheus(&sample_snapshot());
        assert_parseable(&text);
        assert!(text.contains("# TYPE svc_requests_ok_total counter"));
        assert!(text.contains("svc_requests_ok_total 7"));
        assert!(text.contains("svc_in_flight 2"));
        assert!(text.contains("svc_latency_seconds_bucket{le=\"+Inf\"} 10"));
        assert!(text.contains("svc_latency_seconds_count 10"));
        assert!(text.contains("svc_latency_seconds_p50"));
        assert!(text.contains("svc_latency_seconds_p99"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = render_prometheus(&sample_snapshot());
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("svc_latency_seconds_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "non-decreasing: {cums:?}");
        assert_eq!(*cums.last().unwrap(), 10, "+Inf bucket equals count");
    }

    #[test]
    fn json_rendering_has_stable_fields() {
        let json = render_json(&sample_snapshot());
        for field in ["\"schema_version\"", "\"generator\"", "\"metrics\""] {
            assert!(json.contains(field), "missing {field}");
        }
        assert!(json.contains(&format!("\"schema_version\": {METRICS_SCHEMA_VERSION}")));
        assert!(json.contains("\"type\": \"counter\", \"value\": 7"));
        assert!(json.contains("\"type\": \"histogram\", \"count\": 10"));
        assert!(json.contains("\"p99_secs\""));
        assert!(render_json(&MetricsSnapshot::default()).contains("\"metrics\": {}"));
    }

    struct FixedSource(std::sync::atomic::AtomicBool);
    impl StatsSource for FixedSource {
        fn metrics_text(&self) -> String {
            render_prometheus(&sample_snapshot())
        }
        fn metrics_json(&self) -> String {
            render_json(&sample_snapshot())
        }
        fn healthy(&self) -> bool {
            self.0.load(Ordering::SeqCst)
        }
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn listener_serves_metrics_health_and_404() {
        let source = Arc::new(FixedSource(std::sync::atomic::AtomicBool::new(true)));
        let mut listener =
            StatsListener::serve("127.0.0.1:0", Arc::clone(&source) as Arc<dyn StatsSource>)
                .expect("bind ephemeral port");
        let addr = listener.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_parseable(&body);
        assert!(body.contains("svc_latency_seconds_p50"));

        let (head, body) = http_get(addr, "/metrics.json");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"schema_version\""));

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "ok\n");

        source.0.store(false, Ordering::SeqCst);
        let (head, _) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 503"), "unhealthy: {head}");

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        listener.stop();
        listener.stop(); // idempotent
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close on some platforms;
                // what matters is the thread has exited (stop() joined it).
                true
            }
        );
    }
}
