//! # autofeat-obs
//!
//! Zero-dependency structured tracing for the AutoFeat pipeline: per-phase
//! RAII span timers, typed pipeline counters, bounded event logs, and
//! value distributions, aggregated into a deterministic [`RunTrace`].
//!
//! ## Design
//!
//! * **No-op when disabled.** A [`Tracer`] is an `Option<Arc<…>>`; the
//!   disabled handle records nothing, and every ambient helper
//!   ([`span`], [`add`], [`event`], …) bails out after one thread-local
//!   check. Instrumented library code pays a few nanoseconds per call site
//!   when no tracer is installed.
//! * **Ambient, not threaded-through.** Rather than plumbing a handle
//!   through every signature in every crate, the active tracer lives in a
//!   thread-local *scope* together with the current span path. Fan-out
//!   points capture the scope with [`ambient_scope`] and re-install it in
//!   worker threads via [`TraceScope::enter`], so worker-side spans nest
//!   under the phase that spawned them.
//! * **Deterministic output.** Span paths, counters, and distributions are
//!   emitted in lexicographic order; events are only recorded from
//!   sequential pipeline sections. Wall-time *values* naturally vary run to
//!   run, but the *shape* of a [`RunTrace`] — which phases, which counters,
//!   which events, and every counter total — is invariant across worker
//!   thread counts (asserted by the integration tests).
//! * **Max-across-threads phase timing.** Spans are accumulated per
//!   `(path, thread)`. A phase's `wall` is the **maximum** per-thread sum —
//!   the critical-path estimate for a fan-out phase — while `cpu` is the
//!   sum across threads. `self` subtracts child wall from parent wall, so
//!   self times telescope: they sum to (approximately) the root phase's
//!   wall clock.
//!
//! Tracing must never perturb results: nothing in this crate feeds back
//! into discovery decisions, and the instrumented pipeline is asserted
//! bit-identical traced vs untraced.

mod expose;
mod metrics;
mod tracer;
mod trace;

pub use expose::{
    render_json, render_prometheus, StatsListener, StatsSource, EXPOSED_QUANTILES,
    METRICS_SCHEMA_VERSION,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricData, MetricKind, MetricValue,
    MetricsRegistry, MetricsSnapshot, N_HIST_BUCKETS,
};
pub use trace::{DistSummary, PhaseNode, RunTrace, TraceEvent, TRACE_SCHEMA_VERSION};
pub use tracer::{ScopeGuard, Span, TraceScope, Tracer};

/// Upper bounds (seconds) of the shared log₂ histogram grid used by both
/// tracer distributions and metrics-registry histograms: bucket `i` covers
/// observations ≤ `1µs × 2^i`, spanning 1µs … ~134s over
/// [`N_HIST_BUCKETS`] buckets. The last bucket additionally absorbs
/// anything larger (it renders as `+Inf` in Prometheus exposition).
pub fn dist_bucket_bounds_secs() -> Vec<f64> {
    (0..tracer::N_DIST_BUCKETS).map(tracer::bucket_le_secs).collect()
}

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonically increasing key identifying the recording thread, used to
/// bucket span accumulation per thread (max-across-threads aggregation).
static NEXT_THREAD_KEY: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_KEY: u64 = NEXT_THREAD_KEY.fetch_add(1, Ordering::Relaxed);
    static AMBIENT: RefCell<Ambient> = const {
        RefCell::new(Ambient { tracer: Tracer { inner: None }, prefix: String::new() })
    };
}

pub(crate) fn thread_key() -> u64 {
    THREAD_KEY.with(|k| *k)
}

/// The per-thread tracing state: the installed tracer and the dotted path
/// of the currently open span stack (empty = at the root).
pub(crate) struct Ambient {
    pub(crate) tracer: Tracer,
    pub(crate) prefix: String,
}

/// The tracer currently installed on this thread (disabled when none).
pub fn current() -> Tracer {
    AMBIENT.with(|a| a.borrow().tracer.clone())
}

/// Install `tracer` as this thread's ambient tracer for the duration of
/// `f`, resetting the span path to the root. The previous ambient state is
/// restored afterwards (also on panic).
pub fn with_tracer<R>(tracer: &Tracer, f: impl FnOnce() -> R) -> R {
    let prev = AMBIENT.with(|a| {
        std::mem::replace(
            &mut *a.borrow_mut(),
            Ambient { tracer: tracer.clone(), prefix: String::new() },
        )
    });
    let _restore = RestoreAmbient(Some(prev));
    f()
}

struct RestoreAmbient(Option<Ambient>);

impl Drop for RestoreAmbient {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            AMBIENT.with(|a| *a.borrow_mut() = prev);
        }
    }
}

/// Capture this thread's tracer and span path for re-installation in a
/// worker thread (see [`TraceScope::enter`]). Cheap to clone and inert when
/// no tracer is installed.
pub fn ambient_scope() -> TraceScope {
    AMBIENT.with(|a| {
        let amb = a.borrow();
        TraceScope::new(amb.tracer.clone(), amb.prefix.as_str())
    })
}

/// The dotted span path currently open on this thread (`""` at the root,
/// or when no tracer is installed). Used to label diagnostics — e.g. a
/// worker-panic report — with the pipeline phase they occurred in.
pub fn current_span_path() -> String {
    AMBIENT.with(|a| a.borrow().prefix.clone())
}

/// Open a span named `name` under the current span path on the ambient
/// tracer. Returns an RAII guard that records the elapsed wall time on
/// drop; a no-op guard when no tracer is installed.
///
/// Spans must be dropped in LIFO order on the thread that opened them
/// (the natural behaviour of a `let _guard = obs::span("…");` binding).
pub fn span(name: &'static str) -> Span {
    AMBIENT.with(|a| {
        let mut amb = a.borrow_mut();
        let Some(inner) = amb.tracer.inner.clone() else {
            return Span::noop();
        };
        let prev_len = amb.prefix.len();
        if prev_len > 0 {
            amb.prefix.push('.');
        }
        amb.prefix.push_str(name);
        Span::live(inner, amb.prefix.clone(), prev_len, Instant::now())
    })
}

/// Add `n` to the named counter on the ambient tracer (no-op when
/// disabled). Counter names are flat, dot-namespaced by pipeline stage
/// (`"cache.hits"`, `"discover.joins_evaluated"`), independent of the span
/// path.
pub fn add(name: &'static str, n: u64) {
    if n == 0 {
        return;
    }
    AMBIENT.with(|a| {
        if let Some(inner) = a.borrow().tracer.inner.as_ref() {
            inner.add_counter(name, n);
        }
    });
}

/// [`add`]`(name, 1)`.
pub fn incr(name: &'static str) {
    AMBIENT.with(|a| {
        if let Some(inner) = a.borrow().tracer.inner.as_ref() {
            inner.add_counter(name, 1);
        }
    });
}

/// Record one observation (in seconds) into the named distribution —
/// powering e.g. the per-entry index build-time histogram.
pub fn record_secs(name: &'static str, secs: f64) {
    AMBIENT.with(|a| {
        if let Some(inner) = a.borrow().tracer.inner.as_ref() {
            inner.record_dist(name, secs);
        }
    });
}

/// Append an event to the bounded event log. `detail` is lazy so callers
/// pay no formatting cost when tracing is disabled or the log is full.
///
/// Events should only be emitted from sequential pipeline sections (e.g.
/// the Stage B merge), so the log order is deterministic.
pub fn event(kind: &'static str, detail: impl FnOnce() -> String) {
    AMBIENT.with(|a| {
        if let Some(inner) = a.borrow().tracer.inner.as_ref() {
            inner.push_event(kind, detail);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ambient_is_inert() {
        assert!(!current().is_enabled());
        let _s = span("phase");
        add("c", 3);
        incr("c");
        record_secs("d", 0.5);
        event("e", || unreachable!("detail must not be formatted when disabled"));
        let t = current().snapshot();
        assert!(t.phases.is_empty());
        assert!(t.counters.is_empty());
    }

    #[test]
    fn spans_nest_by_scope_and_counters_accumulate() {
        let tracer = Tracer::enabled();
        with_tracer(&tracer, || {
            let _root = span("root");
            for _ in 0..3 {
                let _child = span("child");
                incr("n.iterations");
            }
            add("n.items", 10);
        });
        let t = tracer.snapshot();
        assert_eq!(t.counter("n.iterations"), Some(3));
        assert_eq!(t.counter("n.items"), Some(10));
        let root = t.phase("root").expect("root phase recorded");
        assert_eq!(root.count, 1);
        assert_eq!(root.children.len(), 1);
        let child = t.phase("root.child").expect("nested path");
        assert_eq!(child.count, 3);
        assert!(root.wall >= child.wall, "parent wall covers child wall");
    }

    #[test]
    fn scope_propagates_into_worker_threads() {
        let tracer = Tracer::enabled();
        with_tracer(&tracer, || {
            let _fanout = span("fanout");
            let scope = ambient_scope();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let scope = scope.clone();
                    s.spawn(move || {
                        let _g = scope.enter();
                        let _w = span("work");
                        incr("worker.items");
                    });
                }
            });
        });
        let t = tracer.snapshot();
        assert_eq!(t.counter("worker.items"), Some(2));
        let work = t.phase("fanout.work").expect("worker span nests under fanout");
        assert_eq!(work.count, 2);
        // cpu sums across threads; wall takes the per-thread max.
        assert!(work.cpu >= work.wall);
    }

    #[test]
    fn with_tracer_restores_previous_ambient() {
        let outer = Tracer::enabled();
        let inner = Tracer::enabled();
        with_tracer(&outer, || {
            incr("outer.before");
            with_tracer(&inner, || incr("inner.only"));
            incr("outer.after");
        });
        assert_eq!(outer.snapshot().counter("inner.only"), None);
        assert_eq!(outer.snapshot().counter("outer.after"), Some(1));
        assert_eq!(inner.snapshot().counter("inner.only"), Some(1));
    }

    #[test]
    fn event_log_is_bounded_with_drop_count() {
        let tracer = Tracer::enabled();
        with_tracer(&tracer, || {
            for i in 0..500 {
                event("tick", || format!("event {i}"));
            }
        });
        let t = tracer.snapshot();
        assert_eq!(t.events.len(), 256);
        assert_eq!(t.events_dropped, 244);
        assert_eq!(t.events[0].detail, "event 0");
    }

    #[test]
    fn distributions_summarize() {
        let tracer = Tracer::enabled();
        with_tracer(&tracer, || {
            record_secs("build", 0.001);
            record_secs("build", 0.004);
            record_secs("build", 0.000_000_5);
        });
        let t = tracer.snapshot();
        let (_, d) = t
            .dists
            .iter()
            .find(|(n, _)| n == "build")
            .expect("distribution present");
        assert_eq!(d.count, 3);
        assert!((d.sum_secs - 0.0050005).abs() < 1e-9);
        assert!(d.min_secs <= 0.000_001);
        assert!((d.max_secs - 0.004).abs() < 1e-12);
        let total: u64 = d.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3, "every observation lands in a bucket");
    }
}
