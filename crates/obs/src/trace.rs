//! The aggregated, immutable output of a tracer: [`RunTrace`] and its
//! pretty-text / JSON serializations.
//!
//! The JSON schema is **stable** — downstream tooling (CI artifacts, perf
//! dashboards) parses it. The authoritative schema lives in
//! `trace.schema.json` at the repository root; bump `schema_version` on any
//! breaking change.

use std::time::Duration;

/// Version of the JSON trace layout emitted by [`RunTrace::to_json`].
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// One phase in the wall-time tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    /// Last segment of [`path`](PhaseNode::path) (`"eval"`).
    pub name: String,
    /// Full dotted span path (`"discover.level.eval"`).
    pub path: String,
    /// Times a span at this path was opened (across all threads).
    pub count: u64,
    /// Wall-clock estimate: the **maximum** per-thread time at this path.
    /// For single-threaded phases this is the exact elapsed time; for a
    /// fan-out it is the critical path, so a parent's wall is never
    /// exceeded by work that ran concurrently inside it.
    pub wall: Duration,
    /// Total time across all threads (≥ `wall` for fan-out phases).
    pub cpu: Duration,
    /// `wall` minus the wall of direct children (saturating): time spent
    /// in this phase itself. Self times telescope — summed over the whole
    /// tree they approximate the root's wall clock.
    pub self_time: Duration,
    /// Child phases, lexicographically ordered by name.
    pub children: Vec<PhaseNode>,
}

/// Summary of one value distribution (e.g. per-entry index build times).
#[derive(Debug, Clone, PartialEq)]
pub struct DistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_secs: f64,
    /// Smallest observation (0 when empty).
    pub min_secs: f64,
    /// Largest observation (0 when empty).
    pub max_secs: f64,
    /// Non-empty log₂ histogram buckets as `(upper bound in seconds,
    /// count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl DistSummary {
    /// Mean observation in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum_secs / self.count as f64 }
    }
}

/// One entry of the bounded event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind (`"path_ranked"`, `"quarantine"`, `"truncated"`, …).
    pub kind: String,
    /// Human-readable detail line.
    pub detail: String,
}

/// Everything one tracer observed, deterministically ordered: the
/// per-phase wall-time tree, flat pipeline counters, value distributions,
/// and the bounded event log.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Wall time from tracer creation to snapshot.
    pub wall: Duration,
    /// Root phases (usually exactly one, e.g. `discover`).
    pub phases: Vec<PhaseNode>,
    /// `(name, total)` pipeline counters, lexicographic by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` distributions, lexicographic by name.
    pub dists: Vec<(String, DistSummary)>,
    /// Recorded events, in recording order (deterministic: events are only
    /// emitted from sequential pipeline sections).
    pub events: Vec<TraceEvent>,
    /// Events discarded once the log reached its cap.
    pub events_dropped: u64,
}

impl RunTrace {
    /// The total of the named counter, or `None` when never incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The phase node at the given full dotted path, if recorded.
    pub fn phase(&self, path: &str) -> Option<&PhaseNode> {
        fn find<'a>(nodes: &'a [PhaseNode], path: &str) -> Option<&'a PhaseNode> {
            for n in nodes {
                if n.path == path {
                    return Some(n);
                }
                if path.starts_with(n.path.as_str())
                    && path.as_bytes().get(n.path.len()) == Some(&b'.')
                {
                    return find(&n.children, path);
                }
            }
            None
        }
        find(&self.phases, path)
    }

    /// Sum of `self_time` over every phase in the tree. By the telescoping
    /// property this approximates the root phases' combined wall clock.
    pub fn self_time_total(&self) -> Duration {
        fn walk(nodes: &[PhaseNode], acc: &mut Duration) {
            for n in nodes {
                *acc += n.self_time;
                walk(&n.children, acc);
            }
        }
        let mut acc = Duration::ZERO;
        walk(&self.phases, &mut acc);
        acc
    }

    /// Append the indented phase-timing tree (the section the health
    /// report embeds). Each line: `path  count×  wall (self …, cpu …)`.
    pub fn render_phases_into(&self, out: &mut String) {
        fn walk(nodes: &[PhaseNode], depth: usize, out: &mut String) {
            for n in nodes {
                out.push_str(&" ".repeat(2 + depth * 2));
                out.push_str(&format!(
                    "{:<w$} {:>5}x {:>10} (self {}, cpu {})\n",
                    n.name,
                    n.count,
                    fmt_dur(n.wall),
                    fmt_dur(n.self_time),
                    fmt_dur(n.cpu),
                    w = 24usize.saturating_sub(depth * 2),
                ));
                walk(&n.children, depth + 1, out);
            }
        }
        walk(&self.phases, 0, out);
    }

    /// Full pretty-text rendering: phases, counters, distributions, events.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("run trace ({} wall):\n", fmt_dur(self.wall)));
        if self.phases.is_empty() {
            out.push_str("  (no phases recorded)\n");
        } else {
            self.render_phases_into(&mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.dists.is_empty() {
            out.push_str("distributions:\n");
            for (name, d) in &self.dists {
                out.push_str(&format!(
                    "  {name}: n={} mean={} min={} max={} total={}\n",
                    d.count,
                    fmt_secs(d.mean_secs()),
                    fmt_secs(d.min_secs),
                    fmt_secs(d.max_secs),
                    fmt_secs(d.sum_secs),
                ));
                for &(le, c) in &d.buckets {
                    out.push_str(&format!("    <= {:<10} {c}\n", fmt_secs(le)));
                }
            }
        }
        if !self.events.is_empty() {
            out.push_str(&format!(
                "events ({} recorded, {} dropped):\n",
                self.events.len(),
                self.events_dropped
            ));
            for e in &self.events {
                out.push_str(&format!("  [{}] {}\n", e.kind, e.detail));
            }
        }
        out
    }

    /// Serialize to the stable JSON layout (`trace.schema.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {TRACE_SCHEMA_VERSION},\n"));
        s.push_str("  \"generator\": \"autofeat-obs\",\n");
        s.push_str(&format!("  \"wall_secs\": {:.9},\n", self.wall.as_secs_f64()));
        s.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            phase_json(p, 2, &mut s);
        }
        s.push_str(if self.phases.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {v}", escape_json(name)));
        }
        s.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        // The full histogram grid, so distributions are plottable without
        // reading tracer.rs: per-distribution buckets only list non-empty
        // bins, but every `le_secs` they mention appears in this array.
        s.push_str("  \"dist_bucket_bounds_secs\": [");
        for (i, le) in crate::dist_bucket_bounds_secs().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{le:.9}"));
        }
        s.push_str("],\n");
        s.push_str("  \"distributions\": {");
        for (i, (name, d)) in self.dists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_secs\": {:.9}, \"min_secs\": {:.9}, \
                 \"max_secs\": {:.9}, \"mean_secs\": {:.9}, \"buckets\": [",
                escape_json(name),
                d.count,
                d.sum_secs,
                d.min_secs,
                d.max_secs,
                d.mean_secs(),
            ));
            for (j, &(le, c)) in d.buckets.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{{\"le_secs\": {le:.9}, \"count\": {c}}}"));
            }
            s.push_str("]}");
        }
        s.push_str(if self.dists.is_empty() { "},\n" } else { "\n  },\n" });
        s.push_str("  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"detail\": \"{}\"}}",
                escape_json(&e.kind),
                escape_json(&e.detail)
            ));
        }
        s.push_str(if self.events.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str(&format!("  \"events_dropped\": {}\n", self.events_dropped));
        s.push_str("}\n");
        s
    }
}

fn phase_json(p: &PhaseNode, indent: usize, s: &mut String) {
    let pad = " ".repeat(indent * 2);
    s.push_str(&format!(
        "{pad}{{\"name\": \"{}\", \"path\": \"{}\", \"count\": {}, \"wall_secs\": {:.9}, \
         \"cpu_secs\": {:.9}, \"self_secs\": {:.9}, \"children\": [",
        escape_json(&p.name),
        escape_json(&p.path),
        p.count,
        p.wall.as_secs_f64(),
        p.cpu.as_secs_f64(),
        p.self_time.as_secs_f64(),
    ));
    for (i, c) in p.children.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        phase_json(c, indent + 1, s);
    }
    if !p.children.is_empty() {
        s.push('\n');
        s.push_str(&pad);
    }
    s.push_str("]}");
}

/// JSON string escaping (quotes, backslashes, control characters).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Compact human duration: `1.23s`, `45.6ms`, `789µs`.
pub fn fmt_dur(d: Duration) -> String {
    fmt_secs(d.as_secs_f64())
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, with_tracer, Tracer};

    fn sample_trace() -> RunTrace {
        let t = Tracer::enabled();
        with_tracer(&t, || {
            let _root = span("discover");
            {
                let _lvl = span("level");
                let _eval = span("eval");
                std::thread::sleep(Duration::from_millis(2));
            }
            crate::add("discover.joins_evaluated", 7);
            crate::record_secs("cache.index_build_secs", 0.002);
            crate::event("truncated", || "max_joins".to_string());
        });
        t.snapshot()
    }

    #[test]
    fn json_contains_stable_top_level_fields() {
        let json = sample_trace().to_json();
        for field in [
            "\"schema_version\"",
            "\"generator\"",
            "\"wall_secs\"",
            "\"phases\"",
            "\"counters\"",
            "\"dist_bucket_bounds_secs\"",
            "\"distributions\"",
            "\"events\"",
            "\"events_dropped\"",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        assert!(json.contains("\"discover.joins_evaluated\": 7"));
        assert!(json.contains("\"path\": \"discover.level.eval\""));
    }

    #[test]
    fn bucket_bounds_cover_every_emitted_bucket() {
        let bounds = crate::dist_bucket_bounds_secs();
        assert_eq!(bounds.len(), crate::N_HIST_BUCKETS);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        let t = sample_trace();
        for (name, d) in &t.dists {
            for &(le, _) in &d.buckets {
                assert!(
                    bounds.iter().any(|&b| (b - le).abs() < 1e-15),
                    "{name}: bucket bound {le} missing from grid"
                );
            }
        }
        let json = t.to_json();
        assert!(json.contains("\"dist_bucket_bounds_secs\": [0.000001000, "));
    }

    #[test]
    fn empty_trace_serializes() {
        let json = RunTrace::default().to_json();
        assert!(json.contains("\"phases\": []"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events_dropped\": 0"));
    }

    #[test]
    fn self_times_telescope_to_root_wall() {
        let t = sample_trace();
        let root = &t.phases[0];
        assert_eq!(root.path, "discover");
        let sum = t.self_time_total();
        let diff = sum.abs_diff(root.wall);
        assert!(
            diff <= Duration::from_micros(50),
            "self-time sum {sum:?} vs root wall {:?}",
            root.wall
        );
    }

    #[test]
    fn phase_lookup_walks_the_tree() {
        let t = sample_trace();
        assert!(t.phase("discover").is_some());
        assert!(t.phase("discover.level").is_some());
        assert!(t.phase("discover.level.eval").is_some());
        assert!(t.phase("discover.nope").is_none());
        assert_eq!(t.phase("discover.level.eval").unwrap().count, 1);
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_text_mentions_every_section() {
        let text = sample_trace().render_text();
        assert!(text.contains("run trace"));
        assert!(text.contains("discover"));
        assert!(text.contains("counters:"));
        assert!(text.contains("distributions:"));
        assert!(text.contains("[truncated] max_joins"));
    }
}
