//! Typed, null-aware columns.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{DataError, Result};
use crate::value::{DType, Key, Value};

/// A typed column of nullable values.
///
/// Each variant stores `Option<T>` per row; `None` is the SQL NULL. Float
/// `NaN`s are normalized to `None` on insertion so that nulls have exactly
/// one representation.
///
/// The dense payload is behind an [`Arc`], so **cloning a column is O(1)**:
/// tables produced by joins share their left-hand columns with the input
/// table instead of deep-copying them (the frontier tables of the discovery
/// BFS grow by one table's worth of columns per hop, not by a full copy of
/// the accumulated table). Mutating operations ([`Column::push`],
/// [`Column::push_null`]) copy-on-write via [`Arc::make_mut`], so sharing is
/// never observable.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Arc<Vec<Option<i64>>>),
    /// 64-bit floats (never `NaN`; `NaN` is stored as `None`).
    Float(Arc<Vec<Option<f64>>>),
    /// UTF-8 strings with cheap `Arc` clones.
    Str(Arc<Vec<Option<Arc<str>>>>),
    /// Booleans.
    Bool(Arc<Vec<Option<bool>>>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dtype: DType) -> Self {
        match dtype {
            DType::Int => Column::Int(Arc::new(Vec::new())),
            DType::Float => Column::Float(Arc::new(Vec::new())),
            DType::Str => Column::Str(Arc::new(Vec::new())),
            DType::Bool => Column::Bool(Arc::new(Vec::new())),
        }
    }

    /// An empty column of the given type with pre-reserved capacity.
    pub fn with_capacity(dtype: DType, cap: usize) -> Self {
        match dtype {
            DType::Int => Column::Int(Arc::new(Vec::with_capacity(cap))),
            DType::Float => Column::Float(Arc::new(Vec::with_capacity(cap))),
            DType::Str => Column::Str(Arc::new(Vec::with_capacity(cap))),
            DType::Bool => Column::Bool(Arc::new(Vec::with_capacity(cap))),
        }
    }

    /// Build an int column from an iterator of optional values.
    pub fn from_ints<I: IntoIterator<Item = Option<i64>>>(iter: I) -> Self {
        Column::Int(Arc::new(iter.into_iter().collect()))
    }

    /// Build a float column; `NaN`s become nulls.
    pub fn from_floats<I: IntoIterator<Item = Option<f64>>>(iter: I) -> Self {
        Column::Float(Arc::new(
            iter.into_iter()
                .map(|v| v.filter(|f| !f.is_nan()))
                .collect(),
        ))
    }

    /// Build a string column from anything string-like.
    pub fn from_strs<S: AsRef<str>, I: IntoIterator<Item = Option<S>>>(iter: I) -> Self {
        Column::Str(Arc::new(
            iter.into_iter()
                .map(|v| v.map(|s| Arc::from(s.as_ref())))
                .collect(),
        ))
    }

    /// Build a bool column.
    pub fn from_bools<I: IntoIterator<Item = Option<bool>>>(iter: I) -> Self {
        Column::Bool(Arc::new(iter.into_iter().collect()))
    }

    /// Whether two columns share the same underlying payload allocation —
    /// true after an O(1) clone, false once either side has been mutated
    /// (copy-on-write) or was built independently.
    pub fn shares_payload(&self, other: &Column) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => Arc::ptr_eq(a, b),
            (Column::Float(a), Column::Float(b)) => Arc::ptr_eq(a, b),
            (Column::Str(a), Column::Str(b)) => Arc::ptr_eq(a, b),
            (Column::Bool(a), Column::Bool(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::Int(_) => DType::Int,
            Column::Float(_) => DType::Float,
            Column::Str(_) => DType::Str,
            Column::Bool(_) => DType::Bool,
        }
    }

    /// Whether two columns share one underlying payload allocation (O(1)
    /// clones of the same column). Used as a cheap *data-version identity*:
    /// two logically equal but separately built columns answer `false`,
    /// which is exactly what version-sensitive consumers (the join-index
    /// cache's slot verification) need. Copy-on-write mutation breaks the
    /// sharing, so a `true` answer also implies equal contents.
    pub fn same_data(&self, other: &Column) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => Arc::ptr_eq(a, b),
            (Column::Float(a), Column::Float(b)) => Arc::ptr_eq(a, b),
            (Column::Str(a), Column::Str(b)) => Arc::ptr_eq(a, b),
            (Column::Bool(a), Column::Bool(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Fraction of null entries in `[0, 1]`; zero for an empty column.
    pub fn null_ratio(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.null_count() as f64 / self.len() as f64
        }
    }

    /// Get the value at `row` (panics if out of bounds — use
    /// [`Column::try_get`] for a checked variant).
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v[row].map_or(Value::Null, Value::Int),
            Column::Float(v) => v[row].map_or(Value::Null, Value::Float),
            Column::Str(v) => v[row]
                .as_ref()
                .map_or(Value::Null, |s| Value::Str(Arc::clone(s))),
            Column::Bool(v) => v[row].map_or(Value::Null, Value::Bool),
        }
    }

    /// Checked access.
    pub fn try_get(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(DataError::RowOutOfBounds { index: row, len: self.len() });
        }
        Ok(self.get(row))
    }

    /// Numeric view of a row: ints/floats/bools coerce to f64, strings and
    /// nulls are `None`.
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => v[row].map(|i| i as f64),
            Column::Float(v) => v[row],
            Column::Bool(v) => v[row].map(|b| if b { 1.0 } else { 0.0 }),
            Column::Str(_) => None,
        }
    }

    /// Join key of a row (`None` when null).
    pub fn key(&self, row: usize) -> Option<Key> {
        self.get(row).key()
    }

    /// Feed one cell's stable fingerprint into `h` without materializing a
    /// [`Value`] (no `Arc` bump for strings, no enum construction) — the
    /// hot path of join-index builds, where every duplicate-key row hashes
    /// every cell. Byte-for-byte identical to hashing [`Column::get`]'s
    /// value: nulls and float `NaN`s write tag 0, `-0.0` hashes as `0.0`.
    pub fn hash_cell_into(&self, row: usize, h: &mut crate::stable_hash::StableHasher) {
        use std::hash::Hasher as _;
        match self {
            Column::Int(v) => match v[row] {
                None => h.write_u8(0),
                Some(i) => {
                    h.write_u8(1);
                    h.write_i64(i);
                }
            },
            Column::Float(v) => match v[row] {
                None => h.write_u8(0),
                Some(f) if f.is_nan() => h.write_u8(0),
                Some(f) => {
                    h.write_u8(2);
                    let f = if f == 0.0 { 0.0 } else { f };
                    h.write_u64(f.to_bits());
                }
            },
            Column::Str(v) => match v[row].as_ref() {
                None => h.write_u8(0),
                Some(s) => {
                    h.write_u8(3);
                    h.write(s.as_bytes());
                    h.write_u8(0xff);
                }
            },
            Column::Bool(v) => match v[row] {
                None => h.write_u8(0),
                Some(b) => {
                    h.write_u8(4);
                    h.write_u8(u8::from(b));
                }
            },
        }
    }

    /// Append a value; coerces ints→floats into float columns, errors on any
    /// other type mismatch. Nulls (and float NaNs) append as null.
    ///
    /// Copy-on-write: a column still sharing its payload with a clone
    /// detaches (deep-copies) before the append.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (col, Value::Null) => {
                col.push_null();
                Ok(())
            }
            (Column::Int(v), Value::Int(i)) => {
                Arc::make_mut(v).push(Some(i));
                Ok(())
            }
            (Column::Float(v), Value::Float(f)) => {
                Arc::make_mut(v).push(if f.is_nan() { None } else { Some(f) });
                Ok(())
            }
            (Column::Float(v), Value::Int(i)) => {
                Arc::make_mut(v).push(Some(i as f64));
                Ok(())
            }
            (Column::Str(v), Value::Str(s)) => {
                Arc::make_mut(v).push(Some(s));
                Ok(())
            }
            (Column::Bool(v), Value::Bool(b)) => {
                Arc::make_mut(v).push(Some(b));
                Ok(())
            }
            (col, value) => Err(DataError::TypeMismatch {
                expected: col.dtype().name(),
                got: value.dtype().map_or("null", DType::name),
            }),
        }
    }

    /// Append a null (copy-on-write, as [`Column::push`]).
    pub fn push_null(&mut self) {
        match self {
            Column::Int(v) => Arc::make_mut(v).push(None),
            Column::Float(v) => Arc::make_mut(v).push(None),
            Column::Str(v) => Arc::make_mut(v).push(None),
            Column::Bool(v) => Arc::make_mut(v).push(None),
        }
    }

    /// Gather rows by index; `None` indices produce null rows (used for the
    /// unmatched side of a left join).
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        match self {
            Column::Int(v) => Column::Int(Arc::new(
                indices.iter().map(|ix| ix.and_then(|i| v[i])).collect(),
            )),
            Column::Float(v) => Column::Float(Arc::new(
                indices.iter().map(|ix| ix.and_then(|i| v[i])).collect(),
            )),
            Column::Str(v) => Column::Str(Arc::new(
                indices
                    .iter()
                    .map(|ix| ix.and_then(|i| v[i].clone()))
                    .collect(),
            )),
            Column::Bool(v) => Column::Bool(Arc::new(
                indices.iter().map(|ix| ix.and_then(|i| v[i])).collect(),
            )),
        }
    }

    /// Gather rows by index (all present).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::from_ints(indices.iter().map(|&i| v[i])),
            Column::Float(v) => {
                Column::Float(Arc::new(indices.iter().map(|&i| v[i]).collect()))
            }
            Column::Str(v) => {
                Column::Str(Arc::new(indices.iter().map(|&i| v[i].clone()).collect()))
            }
            Column::Bool(v) => Column::from_bools(indices.iter().map(|&i| v[i])),
        }
    }

    /// Approximate heap footprint of the dense payload in bytes (used for
    /// cache observability; string payloads count the `Arc<str>` headers,
    /// not the shared string bytes).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * std::mem::size_of::<Option<i64>>(),
            Column::Float(v) => v.len() * std::mem::size_of::<Option<f64>>(),
            Column::Str(v) => v.len() * std::mem::size_of::<Option<Arc<str>>>(),
            Column::Bool(v) => v.len() * std::mem::size_of::<Option<bool>>(),
        }
    }

    /// Iterate values as [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Number of distinct non-null keys.
    pub fn distinct_count(&self) -> usize {
        let mut seen: std::collections::HashSet<Key> = std::collections::HashSet::new();
        for i in 0..self.len() {
            if let Some(k) = self.key(i) {
                seen.insert(k);
            }
        }
        seen.len()
    }

    /// The most frequent non-null value (mode). Ties break toward the value
    /// first encountered, making the result deterministic.
    pub fn mode(&self) -> Option<Value> {
        let mut counts: HashMap<Key, (usize, usize)> = HashMap::new(); // key -> (count, first row)
        for i in 0..self.len() {
            if let Some(k) = self.key(i) {
                let e = counts.entry(k).or_insert((0, i));
                e.0 += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
            .map(|(_, (_, row))| self.get(row))
    }

    /// Mean of the numeric view over non-null rows; `None` for string
    /// columns or all-null columns.
    pub fn mean(&self) -> Option<f64> {
        if matches!(self, Column::Str(_)) {
            return None;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            if let Some(x) = self.get_f64(i) {
                sum += x;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Extract the numeric view as a dense vector, with `f64::NAN` at nulls
    /// and for string cells.
    pub fn to_f64_lossy(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.write_f64_lossy(&mut out);
        out
    }

    /// [`Column::to_f64_lossy`] into a caller-owned buffer (cleared first),
    /// so hot loops extracting one column after another reuse a single
    /// warm allocation instead of growing a fresh vec per column.
    pub fn write_f64_lossy(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len());
        out.extend((0..self.len()).map(|i| self.get_f64(i).unwrap_or(f64::NAN)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::from_ints([Some(1), None, Some(3), Some(3)])
    }

    #[test]
    fn len_and_nulls() {
        let c = int_col();
        assert_eq!(c.len(), 4);
        assert_eq!(c.null_count(), 1);
        assert!((c.null_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_column_null_ratio_is_zero() {
        assert_eq!(Column::empty(DType::Int).null_ratio(), 0.0);
    }

    #[test]
    fn nan_is_normalized_to_null() {
        let c = Column::from_floats([Some(1.0), Some(f64::NAN), None]);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn push_coerces_int_into_float_column() {
        let mut c = Column::empty(DType::Float);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Value::Float(3.0));
    }

    #[test]
    fn push_type_mismatch_errors() {
        let mut c = Column::empty(DType::Int);
        let err = c.push(Value::str("x")).unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
    }

    #[test]
    fn take_opt_inserts_nulls() {
        let c = int_col();
        let t = c.take_opt(&[Some(0), None, Some(2)]);
        assert_eq!(t.get(0), Value::Int(1));
        assert_eq!(t.get(1), Value::Null);
        assert_eq!(t.get(2), Value::Int(3));
    }

    #[test]
    fn take_preserves_order() {
        let c = int_col();
        let t = c.take(&[3, 0]);
        assert_eq!(t.get(0), Value::Int(3));
        assert_eq!(t.get(1), Value::Int(1));
    }

    #[test]
    fn distinct_count_ignores_nulls() {
        assert_eq!(int_col().distinct_count(), 2);
    }

    #[test]
    fn mode_returns_most_frequent() {
        assert_eq!(int_col().mode(), Some(Value::Int(3)));
        assert_eq!(Column::empty(DType::Int).mode(), None);
    }

    #[test]
    fn mode_all_null_is_none() {
        let c = Column::from_ints([None, None]);
        assert_eq!(c.mode(), None);
    }

    #[test]
    fn mean_skips_nulls() {
        let c = Column::from_floats([Some(1.0), None, Some(3.0)]);
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(Column::from_strs([Some("a")]).mean(), None);
    }

    #[test]
    fn try_get_bounds() {
        let c = int_col();
        assert!(c.try_get(10).is_err());
        assert_eq!(c.try_get(0).unwrap(), Value::Int(1));
    }

    #[test]
    fn to_f64_lossy_marks_nulls_nan() {
        let v = int_col().to_f64_lossy();
        assert_eq!(v[0], 1.0);
        assert!(v[1].is_nan());
    }

    #[test]
    fn bool_numeric_view() {
        let c = Column::from_bools([Some(true), Some(false), None]);
        assert_eq!(c.get_f64(0), Some(1.0));
        assert_eq!(c.get_f64(1), Some(0.0));
        assert_eq!(c.get_f64(2), None);
    }

    #[test]
    fn clone_is_zero_copy() {
        let c = int_col();
        let d = c.clone();
        assert!(c.shares_payload(&d), "clone must share the payload Arc");
        // Independent builds never share, even with equal contents.
        assert!(!c.shares_payload(&int_col()));
    }

    #[test]
    fn mutation_detaches_shared_payload() {
        let c = int_col();
        let mut d = c.clone();
        d.push(Value::Int(99)).unwrap();
        assert!(!c.shares_payload(&d), "push must copy-on-write");
        assert_eq!(c.len(), 4, "original untouched by clone's mutation");
        assert_eq!(d.len(), 5);
        assert_eq!(d.get(4), Value::Int(99));

        let mut e = c.clone();
        e.push_null();
        assert_eq!(c.len(), 4);
        assert_eq!(e.null_count(), c.null_count() + 1);
    }

    #[test]
    fn payload_bytes_scales_with_len() {
        let c = int_col();
        assert_eq!(c.payload_bytes(), 4 * std::mem::size_of::<Option<i64>>());
        assert_eq!(Column::empty(DType::Str).payload_bytes(), 0);
    }
}
