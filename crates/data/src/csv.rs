//! Minimal CSV reader/writer with type inference.
//!
//! Supports RFC-4180-style quoting (`"..."` with `""` escapes), a header
//! row, and per-column type inference over the full file: a column is `Int`
//! if every non-empty cell parses as an integer, else `Float` if every cell
//! parses as a float, else `Bool` if every cell is `true`/`false`, else
//! `Str`. Empty cells are nulls.

use std::fs;
use std::path::Path;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::table::Table;
use crate::value::DType;

/// Parse one CSV record (handles quotes); returns the fields.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        cur.push(c);
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv { line: line_no, message: "unterminated quote".into() });
    }
    fields.push(cur);
    Ok(fields)
}

fn infer_dtype(cells: &[Option<String>]) -> DType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    let mut any = false;
    for c in cells.iter().flatten() {
        any = true;
        if all_int && c.parse::<i64>().is_err() {
            all_int = false;
        }
        if all_float && c.parse::<f64>().is_err() {
            all_float = false;
        }
        if all_bool && !matches!(c.as_str(), "true" | "false" | "True" | "False") {
            all_bool = false;
        }
        if !all_int && !all_float && !all_bool {
            return DType::Str;
        }
    }
    if !any {
        // All-null column: default to string.
        return DType::Str;
    }
    if all_int {
        DType::Int
    } else if all_float {
        DType::Float
    } else if all_bool {
        DType::Bool
    } else {
        DType::Str
    }
}

/// Parse CSV text into a table named `name`.
pub fn read_csv_str(name: &str, text: &str) -> Result<Table> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| DataError::Csv { line: 0, message: "empty input".into() })?;
    let headers = parse_record(header, 1)?;
    let n_cols = headers.len();
    let mut cells: Vec<Vec<Option<String>>> = vec![Vec::new(); n_cols];
    for (i, line) in lines {
        let rec = parse_record(line, i + 1)?;
        if rec.len() != n_cols {
            return Err(DataError::Csv {
                line: i + 1,
                message: format!("expected {n_cols} fields, got {}", rec.len()),
            });
        }
        for (c, field) in rec.into_iter().enumerate() {
            cells[c].push(if field.is_empty() { None } else { Some(field) });
        }
    }
    let mut cols = Vec::with_capacity(n_cols);
    for (h, col_cells) in headers.into_iter().zip(cells) {
        let dtype = infer_dtype(&col_cells);
        let col = match dtype {
            DType::Int => Column::from_ints(
                col_cells.iter().map(|c| c.as_ref().and_then(|s| s.parse().ok())),
            ),
            DType::Float => Column::from_floats(
                col_cells.iter().map(|c| c.as_ref().and_then(|s| s.parse().ok())),
            ),
            DType::Bool => Column::from_bools(
                col_cells
                    .iter()
                    .map(|c| c.as_ref().map(|s| matches!(s.as_str(), "true" | "True"))),
            ),
            DType::Str => Column::from_strs(col_cells.iter().map(|c| c.as_deref())),
        };
        cols.push((h, col));
    }
    Table::new(name, cols)
}

/// Read a CSV file into a table named after the file stem.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string();
    let text = fs::read_to_string(path)?;
    read_csv_str(&name, &text)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize a table to CSV text (header + rows; nulls as empty fields).
pub fn write_csv_str(table: &Table) -> String {
    let mut out = String::new();
    let names = table.column_names();
    out.push_str(
        &names.iter().map(|n| escape(n)).collect::<Vec<_>>().join(","),
    );
    out.push('\n');
    for r in 0..table.n_rows() {
        let row: Vec<String> = (0..table.n_cols())
            .map(|c| escape(&table.column_at(c).get(r).to_string()))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, write_csv_str(table))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn roundtrip_basic_types() {
        let csv = "id,score,name,flag\n1,0.5,alice,true\n2,1.5,bob,false\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(t.column("id").unwrap().dtype(), DType::Int);
        assert_eq!(t.column("score").unwrap().dtype(), DType::Float);
        assert_eq!(t.column("name").unwrap().dtype(), DType::Str);
        assert_eq!(t.column("flag").unwrap().dtype(), DType::Bool);
        let back = read_csv_str("t", &write_csv_str(&t)).unwrap();
        assert_eq!(back.value("name", 1).unwrap(), Value::str("bob"));
        assert_eq!(back.n_rows(), 2);
    }

    #[test]
    fn empty_cells_are_null() {
        let t = read_csv_str("t", "a,b\n1,\n,2\n").unwrap();
        assert_eq!(t.value("a", 1).unwrap(), Value::Null);
        assert_eq!(t.value("b", 0).unwrap(), Value::Null);
        assert_eq!(t.column("a").unwrap().null_count(), 1);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = read_csv_str("t", "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.value("a", 0).unwrap(), Value::str("x,y"));
        assert_eq!(t.value("b", 0).unwrap(), Value::str("he said \"hi\""));
    }

    #[test]
    fn quoted_roundtrip() {
        let t = read_csv_str("t", "a\n\"x,y\"\n").unwrap();
        let again = read_csv_str("t", &write_csv_str(&t)).unwrap();
        assert_eq!(again.value("a", 0).unwrap(), Value::str("x,y"));
    }

    #[test]
    fn mixed_int_float_column_is_float() {
        let t = read_csv_str("t", "a\n1\n2.5\n").unwrap();
        assert_eq!(t.column("a").unwrap().dtype(), DType::Float);
    }

    #[test]
    fn all_null_column_defaults_to_str() {
        let t = read_csv_str("t", "a,b\n,1\n,2\n").unwrap();
        assert_eq!(t.column("a").unwrap().dtype(), DType::Str);
    }

    #[test]
    fn ragged_row_errors() {
        let r = read_csv_str("t", "a,b\n1\n");
        assert!(matches!(r, Err(DataError::Csv { line: 2, .. })));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv_str("t", "a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_csv_str("t", "").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let t = read_csv_str("x", "a,b\n1,hello\n").unwrap();
        let dir = std::env::temp_dir().join("autofeat_csv_test.csv");
        write_csv(&t, &dir).unwrap();
        let back = read_csv(&dir).unwrap();
        assert_eq!(back.name(), "autofeat_csv_test");
        assert_eq!(back.value("b", 0).unwrap(), Value::str("hello"));
        std::fs::remove_file(dir).ok();
    }
}
