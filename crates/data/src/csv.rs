//! Minimal CSV reader/writer with type inference and a fail-soft mode.
//!
//! Supports RFC-4180-style quoting (`"..."` with `""` escapes), CRLF line
//! endings, a header row, and per-column type inference over the full file:
//! a column is `Int` if every non-empty cell parses as an integer, else
//! `Float` if every cell parses as a float, else `Bool` if every cell is
//! `true`/`false`, else `Str`. Empty cells are nulls.
//!
//! Two ingestion modes ([`CsvReadOptions`]):
//!
//! * **strict** — any structural defect (ragged row, unterminated quote,
//!   duplicate header) aborts with a typed [`DataError`]; this is the
//!   historical behaviour of [`read_csv_str`].
//! * **lenient** — the reader repairs what it can (pads/truncates ragged
//!   rows, skips unparseable lines, renames duplicate headers, nulls cells
//!   that miss a column's majority dtype) up to a configurable bad-row
//!   budget, and reports everything it did in [`IngestDiagnostics`]. Data
//!   lakes are full of files that are 99% fine; lenient mode keeps the 99%
//!   instead of aborting on the 1% (§IV of the paper's lake setting).

use std::fs;
use std::path::Path;

use autofeat_obs as obs;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::table::Table;
use crate::value::DType;

/// How tolerant CSV ingestion is of malformed input.
#[derive(Debug, Clone)]
pub struct CsvReadOptions {
    /// Repair defects instead of aborting on them.
    pub lenient: bool,
    /// Lenient mode: maximum fraction of data rows that may need repair or
    /// skipping before ingestion gives up on the file anyway. `0.2` means a
    /// file with more than 20% bad rows is rejected as unreadable.
    pub bad_row_budget: f64,
    /// Lenient mode: maximum fraction of a column's non-empty cells allowed
    /// to miss the majority dtype and be nulled; above it the column falls
    /// back to `Str` and keeps every cell verbatim.
    pub cell_coercion_budget: f64,
    /// Cap on per-issue samples retained in [`IngestDiagnostics::issues`]
    /// (counts are always exact; samples keep memory bounded).
    pub max_issue_samples: usize,
}

impl Default for CsvReadOptions {
    fn default() -> Self {
        CsvReadOptions::strict()
    }
}

impl CsvReadOptions {
    /// Abort on the first structural defect (historical behaviour).
    pub fn strict() -> Self {
        CsvReadOptions {
            lenient: false,
            bad_row_budget: 0.0,
            cell_coercion_budget: 0.0,
            max_issue_samples: 20,
        }
    }

    /// Repair defects up to a 20% bad-row budget and a 10% per-column cell
    /// coercion budget.
    pub fn lenient() -> Self {
        CsvReadOptions {
            lenient: true,
            bad_row_budget: 0.2,
            cell_coercion_budget: 0.1,
            max_issue_samples: 20,
        }
    }

    /// Builder-style bad-row budget override.
    pub fn with_bad_row_budget(mut self, budget: f64) -> Self {
        self.bad_row_budget = budget;
        self
    }
}

/// What kind of defect an [`IngestIssue`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestIssueKind {
    /// A data row with more or fewer fields than the header.
    RaggedRow,
    /// A line that could not be parsed at all (e.g. unterminated quote).
    UnparseableRow,
    /// A cell nulled because it missed its column's majority dtype.
    CoercedCell,
    /// A header repeated verbatim; the duplicate was renamed.
    DuplicateHeader,
}

/// One recorded ingestion defect (a bounded sample; see
/// [`CsvReadOptions::max_issue_samples`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestIssue {
    /// 1-based source line the defect was found on (0 when not line-bound).
    pub line: usize,
    /// Defect category.
    pub kind: IngestIssueKind,
    /// Human-readable specifics (expected vs got counts, offending cell…).
    pub detail: String,
}

/// Structured account of everything lenient ingestion repaired or dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestDiagnostics {
    /// Data rows kept in the resulting table.
    pub n_rows: usize,
    /// Ragged rows padded or truncated to the header width.
    pub n_repaired_rows: usize,
    /// Rows dropped because they could not be parsed at all.
    pub n_skipped_rows: usize,
    /// Cells nulled because they missed their column's majority dtype.
    pub n_coerced_cells: usize,
    /// Duplicate headers renamed with `#k` suffixes.
    pub n_renamed_headers: usize,
    /// Bounded sample of individual defects (counts above are exact).
    pub issues: Vec<IngestIssue>,
    /// Exact total number of defects observed (≥ `issues.len()`).
    pub n_issues_total: usize,
}

impl IngestDiagnostics {
    /// True when the file was ingested without a single repair.
    pub fn is_clean(&self) -> bool {
        self.n_issues_total == 0
    }

    fn record(&mut self, max_samples: usize, line: usize, kind: IngestIssueKind, detail: String) {
        self.n_issues_total += 1;
        if self.issues.len() < max_samples {
            self.issues.push(IngestIssue { line, kind, detail });
        }
    }
}

/// A parsed table together with the diagnostics of its ingestion.
#[derive(Debug, Clone)]
pub struct CsvIngest {
    /// The parsed table.
    pub table: Table,
    /// What (if anything) had to be repaired to produce it.
    pub diagnostics: IngestDiagnostics,
}

/// Parse one CSV record (handles quotes); returns the fields.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        cur.push(c);
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv { line: line_no, message: "unterminated quote".into() });
    }
    fields.push(cur);
    Ok(fields)
}

fn infer_dtype(cells: &[Option<String>]) -> DType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    let mut any = false;
    for c in cells.iter().flatten() {
        any = true;
        if all_int && c.parse::<i64>().is_err() {
            all_int = false;
        }
        if all_float && c.parse::<f64>().is_err() {
            all_float = false;
        }
        if all_bool && !matches!(c.as_str(), "true" | "false" | "True" | "False") {
            all_bool = false;
        }
        if !all_int && !all_float && !all_bool {
            return DType::Str;
        }
    }
    if !any {
        // All-null column: default to string.
        return DType::Str;
    }
    if all_int {
        DType::Int
    } else if all_float {
        DType::Float
    } else if all_bool {
        DType::Bool
    } else {
        DType::Str
    }
}

/// Lenient majority-dtype inference: the dtype most cells parse as, with the
/// losing minority (≤ `budget` of non-empty cells) destined to become nulls.
/// Falls back to `Str` (which accepts everything) when no dtype reaches the
/// threshold.
fn infer_dtype_majority(cells: &[Option<String>], budget: f64) -> DType {
    let mut n = 0usize;
    let mut int_ok = 0usize;
    let mut float_ok = 0usize;
    let mut bool_ok = 0usize;
    for c in cells.iter().flatten() {
        n += 1;
        if c.parse::<i64>().is_ok() {
            int_ok += 1;
        }
        if c.parse::<f64>().is_ok() {
            float_ok += 1;
        }
        if matches!(c.as_str(), "true" | "false" | "True" | "False") {
            bool_ok += 1;
        }
    }
    if n == 0 {
        return DType::Str;
    }
    let needed = ((1.0 - budget) * n as f64).ceil() as usize;
    if int_ok >= needed {
        DType::Int
    } else if float_ok >= needed {
        DType::Float
    } else if bool_ok >= needed {
        DType::Bool
    } else {
        DType::Str
    }
}

/// Strip a trailing carriage return so CRLF input parses identically to LF
/// input even when lines were split manually.
fn strip_cr(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

/// Rename duplicate headers with `#k` suffixes (`x`, `x#2`, `x#3`, …).
fn dedupe_headers(
    headers: Vec<String>,
    diags: &mut IngestDiagnostics,
    max_samples: usize,
) -> Vec<String> {
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(headers.len());
    for h in headers {
        if seen.insert(h.clone()) {
            out.push(h);
            continue;
        }
        let mut k = 2usize;
        let renamed = loop {
            let candidate = format!("{h}#{k}");
            if seen.insert(candidate.clone()) {
                break candidate;
            }
            k += 1;
        };
        diags.n_renamed_headers += 1;
        diags.record(
            max_samples,
            1,
            IngestIssueKind::DuplicateHeader,
            format!("duplicate header `{h}` renamed to `{renamed}`"),
        );
        out.push(renamed);
    }
    out
}

/// Parse CSV text into a table named `name`, honouring `opts`. Returns the
/// table plus diagnostics; in strict mode any defect is an `Err` instead.
pub fn read_csv_str_opts(name: &str, text: &str, opts: &CsvReadOptions) -> Result<CsvIngest> {
    let _span = obs::span("csv_parse");
    let mut diags = IngestDiagnostics::default();
    let max_samples = opts.max_issue_samples;

    let mut lines = text
        .lines()
        .map(strip_cr)
        .enumerate()
        .filter(|(_, l)| !l.is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| DataError::Csv { line: 0, message: "empty input".into() })?;
    let headers = parse_record(header, 1)?;
    // In strict mode duplicate headers fall through to `Table::new`, which
    // rejects them with `DuplicateColumn`; lenient mode renames them.
    let headers = if opts.lenient {
        dedupe_headers(headers, &mut diags, max_samples)
    } else {
        headers
    };
    let n_cols = headers.len();

    let mut cells: Vec<Vec<Option<String>>> = vec![Vec::new(); n_cols];
    // Source line of each kept row, for cell-level diagnostics later.
    let mut row_lines: Vec<usize> = Vec::new();
    let mut n_data_rows = 0usize;
    for (i, line) in lines {
        let line_no = i + 1;
        n_data_rows += 1;
        let mut rec = match parse_record(line, line_no) {
            Ok(rec) => rec,
            Err(e) => {
                if !opts.lenient {
                    return Err(e);
                }
                diags.n_skipped_rows += 1;
                diags.record(
                    max_samples,
                    line_no,
                    IngestIssueKind::UnparseableRow,
                    format!("row dropped: {e}"),
                );
                continue;
            }
        };
        if rec.len() != n_cols {
            if !opts.lenient {
                return Err(DataError::CsvRagged {
                    line: line_no,
                    expected: n_cols,
                    got: rec.len(),
                });
            }
            diags.n_repaired_rows += 1;
            diags.record(
                max_samples,
                line_no,
                IngestIssueKind::RaggedRow,
                format!("expected {n_cols} fields, got {} (repaired)", rec.len()),
            );
            rec.resize(n_cols, String::new());
        }
        row_lines.push(line_no);
        for (c, field) in rec.into_iter().enumerate() {
            cells[c].push(if field.is_empty() { None } else { Some(field) });
        }
    }

    let bad_rows = diags.n_repaired_rows + diags.n_skipped_rows;
    if opts.lenient && n_data_rows > 0 {
        let frac = bad_rows as f64 / n_data_rows as f64;
        if frac > opts.bad_row_budget {
            return Err(DataError::Csv {
                line: 0,
                message: format!(
                    "bad-row budget exceeded: {bad_rows}/{n_data_rows} rows malformed \
                     ({:.0}% > {:.0}% allowed)",
                    frac * 100.0,
                    opts.bad_row_budget * 100.0
                ),
            });
        }
    }

    let mut cols = Vec::with_capacity(n_cols);
    for (h, col_cells) in headers.into_iter().zip(cells) {
        let dtype = if opts.lenient {
            infer_dtype_majority(&col_cells, opts.cell_coercion_budget)
        } else {
            infer_dtype(&col_cells)
        };
        // In lenient mode a cell that misses the majority dtype becomes a
        // null; record each such coercion.
        let mut coerce = |row: usize, cell: &str, to: DType| {
            diags.n_coerced_cells += 1;
            diags.record(
                max_samples,
                row_lines.get(row).copied().unwrap_or(0),
                IngestIssueKind::CoercedCell,
                format!("cell `{cell}` in column `{h}` nulled (column is {to:?})"),
            );
        };
        let col = match dtype {
            DType::Int => Column::from_ints(col_cells.iter().enumerate().map(|(r, c)| {
                c.as_ref().and_then(|s| {
                    let v = s.parse().ok();
                    if v.is_none() {
                        coerce(r, s, DType::Int);
                    }
                    v
                })
            })),
            DType::Float => Column::from_floats(col_cells.iter().enumerate().map(|(r, c)| {
                c.as_ref().and_then(|s| {
                    let v = s.parse().ok();
                    if v.is_none() {
                        coerce(r, s, DType::Float);
                    }
                    v
                })
            })),
            DType::Bool => Column::from_bools(col_cells.iter().enumerate().map(|(r, c)| {
                c.as_ref().and_then(|s| match s.as_str() {
                    "true" | "True" => Some(true),
                    "false" | "False" => Some(false),
                    other => {
                        coerce(r, other, DType::Bool);
                        None
                    }
                })
            })),
            DType::Str => Column::from_strs(col_cells.iter().map(|c| c.as_deref())),
        };
        cols.push((h, col));
    }
    // Ingest is the one place every lake table passes through exactly once:
    // build the per-column key dictionaries and row fingerprints here, where
    // their cost amortizes over every subsequent join, index build, and
    // encode instead of sitting on the discovery hot path.
    let table = Table::new(name, cols)?.with_key_dicts();
    diags.n_rows = table.n_rows();
    obs::add("ingest.rows_loaded", diags.n_rows as u64);
    obs::add("ingest.rows_repaired", diags.n_repaired_rows as u64);
    obs::add("ingest.rows_skipped", diags.n_skipped_rows as u64);
    obs::add("ingest.cells_coerced", diags.n_coerced_cells as u64);
    Ok(CsvIngest { table, diagnostics: diags })
}

/// Parse CSV text into a table named `name` (strict mode).
pub fn read_csv_str(name: &str, text: &str) -> Result<Table> {
    read_csv_str_opts(name, text, &CsvReadOptions::strict()).map(|i| i.table)
}

/// Read a CSV file honouring `opts`; the table is named after the file stem.
pub fn read_csv_opts(path: impl AsRef<Path>, opts: &CsvReadOptions) -> Result<CsvIngest> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string();
    let text = fs::read_to_string(path)?;
    read_csv_str_opts(&name, &text, opts)
}

/// Read a CSV file into a table named after the file stem (strict mode).
pub fn read_csv(path: impl AsRef<Path>) -> Result<Table> {
    read_csv_opts(path, &CsvReadOptions::strict()).map(|i| i.table)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize a table to CSV text (header + rows; nulls as empty fields).
pub fn write_csv_str(table: &Table) -> String {
    let mut out = String::new();
    let names = table.column_names();
    out.push_str(
        &names.iter().map(|n| escape(n)).collect::<Vec<_>>().join(","),
    );
    out.push('\n');
    for r in 0..table.n_rows() {
        let row: Vec<String> = (0..table.n_cols())
            .map(|c| escape(&table.column_at(c).get(r).to_string()))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, write_csv_str(table))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn roundtrip_basic_types() {
        let csv = "id,score,name,flag\n1,0.5,alice,true\n2,1.5,bob,false\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(t.column("id").unwrap().dtype(), DType::Int);
        assert_eq!(t.column("score").unwrap().dtype(), DType::Float);
        assert_eq!(t.column("name").unwrap().dtype(), DType::Str);
        assert_eq!(t.column("flag").unwrap().dtype(), DType::Bool);
        let back = read_csv_str("t", &write_csv_str(&t)).unwrap();
        assert_eq!(back.value("name", 1).unwrap(), Value::str("bob"));
        assert_eq!(back.n_rows(), 2);
    }

    #[test]
    fn empty_cells_are_null() {
        let t = read_csv_str("t", "a,b\n1,\n,2\n").unwrap();
        assert_eq!(t.value("a", 1).unwrap(), Value::Null);
        assert_eq!(t.value("b", 0).unwrap(), Value::Null);
        assert_eq!(t.column("a").unwrap().null_count(), 1);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = read_csv_str("t", "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.value("a", 0).unwrap(), Value::str("x,y"));
        assert_eq!(t.value("b", 0).unwrap(), Value::str("he said \"hi\""));
    }

    #[test]
    fn quoted_roundtrip() {
        let t = read_csv_str("t", "a\n\"x,y\"\n").unwrap();
        let again = read_csv_str("t", &write_csv_str(&t)).unwrap();
        assert_eq!(again.value("a", 0).unwrap(), Value::str("x,y"));
    }

    #[test]
    fn mixed_int_float_column_is_float() {
        let t = read_csv_str("t", "a\n1\n2.5\n").unwrap();
        assert_eq!(t.column("a").unwrap().dtype(), DType::Float);
    }

    #[test]
    fn all_null_column_defaults_to_str() {
        let t = read_csv_str("t", "a,b\n,1\n,2\n").unwrap();
        assert_eq!(t.column("a").unwrap().dtype(), DType::Str);
    }

    #[test]
    fn ragged_row_errors() {
        let r = read_csv_str("t", "a,b\n1\n");
        assert!(matches!(
            r,
            Err(DataError::CsvRagged { line: 2, expected: 2, got: 1 })
        ));
    }

    #[test]
    fn ragged_row_error_reports_expected_vs_got() {
        let r = read_csv_str("t", "a,b,c\n1,2,3\n1,2,3,4,5\n");
        match r {
            Err(DataError::CsvRagged { line, expected, got }) => {
                assert_eq!((line, expected, got), (3, 3, 5));
            }
            other => panic!("expected CsvRagged, got {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let t = read_csv_str("t", "a,b\r\n1,x\r\n2,y\r\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column("a").unwrap().dtype(), DType::Int);
        assert_eq!(t.value("b", 1).unwrap(), Value::str("y"));
    }

    #[test]
    fn lenient_pads_and_truncates_ragged_rows() {
        let opts = CsvReadOptions::lenient().with_bad_row_budget(1.0);
        let ingest =
            read_csv_str_opts("t", "a,b\n1,x\n2\n3,y,EXTRA\n", &opts).unwrap();
        assert_eq!(ingest.table.n_rows(), 3);
        // Short row padded with a null; long row truncated.
        assert_eq!(ingest.table.value("b", 1).unwrap(), Value::Null);
        assert_eq!(ingest.table.value("b", 2).unwrap(), Value::str("y"));
        assert_eq!(ingest.diagnostics.n_repaired_rows, 2);
        assert!(!ingest.diagnostics.is_clean());
        assert!(ingest
            .diagnostics
            .issues
            .iter()
            .all(|i| i.kind == IngestIssueKind::RaggedRow));
    }

    #[test]
    fn lenient_skips_unparseable_rows() {
        let opts = CsvReadOptions::lenient().with_bad_row_budget(1.0);
        let ingest = read_csv_str_opts("t", "a\nok\n\"oops\nfine\n", &opts).unwrap();
        // The unterminated quote swallows the rest of its line only.
        assert_eq!(ingest.diagnostics.n_skipped_rows, 1);
        assert!(ingest.table.n_rows() >= 1);
    }

    #[test]
    fn lenient_renames_duplicate_headers() {
        let opts = CsvReadOptions::lenient();
        let ingest = read_csv_str_opts("t", "a,a,a\n1,2,3\n", &opts).unwrap();
        let names = ingest.table.column_names();
        assert_eq!(names, vec!["a", "a#2", "a#3"]);
        assert_eq!(ingest.diagnostics.n_renamed_headers, 2);
    }

    #[test]
    fn strict_rejects_duplicate_headers() {
        let r = read_csv_str("t", "a,a\n1,2\n");
        assert!(matches!(r, Err(DataError::DuplicateColumn { .. })));
    }

    #[test]
    fn lenient_coerces_minority_cells_to_null() {
        let opts = CsvReadOptions::lenient();
        let csv = "a\n1\n2\n3\n4\n5\n6\n7\n8\n9\noops\n";
        let ingest = read_csv_str_opts("t", csv, &opts).unwrap();
        assert_eq!(ingest.table.column("a").unwrap().dtype(), DType::Int);
        assert_eq!(ingest.table.value("a", 9).unwrap(), Value::Null);
        assert_eq!(ingest.diagnostics.n_coerced_cells, 1);
        assert!(ingest
            .diagnostics
            .issues
            .iter()
            .any(|i| i.kind == IngestIssueKind::CoercedCell));
        // Strict mode falls back to Str for the same input instead.
        let strict = read_csv_str("t", csv).unwrap();
        assert_eq!(strict.column("a").unwrap().dtype(), DType::Str);
    }

    #[test]
    fn bad_row_budget_enforced() {
        // 2 of 3 rows ragged > 20% default budget.
        let opts = CsvReadOptions::lenient();
        let r = read_csv_str_opts("t", "a,b\n1\n2\n3,x\n", &opts);
        match r {
            Err(DataError::Csv { message, .. }) => {
                assert!(message.contains("budget"), "{message}");
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn strict_ingest_is_clean() {
        let ingest =
            read_csv_str_opts("t", "a,b\n1,x\n", &CsvReadOptions::strict()).unwrap();
        assert!(ingest.diagnostics.is_clean());
        assert_eq!(ingest.diagnostics.n_rows, 1);
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv_str("t", "a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_csv_str("t", "").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let t = read_csv_str("x", "a,b\n1,hello\n").unwrap();
        let dir = std::env::temp_dir().join("autofeat_csv_test.csv");
        write_csv(&t, &dir).unwrap();
        let back = read_csv(&dir).unwrap();
        assert_eq!(back.name(), "autofeat_csv_test");
        assert_eq!(back.value("b", 0).unwrap(), Value::str("hello"));
        std::fs::remove_file(dir).ok();
    }
}
