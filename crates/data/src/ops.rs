//! Relational operations on tables: filter, sort, group-aggregate, and
//! vertical concatenation. These complement the join engine when preparing
//! lakes (deduplication, per-key aggregation) and when examples slice data.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::table::Table;
use crate::value::{Key, Value};

/// Keep only the rows where `predicate(row_index)` is true.
pub fn filter_rows(table: &Table, predicate: impl Fn(usize) -> bool) -> Table {
    let keep: Vec<usize> = (0..table.n_rows()).filter(|&i| predicate(i)).collect();
    table.take(&keep)
}

/// Keep only the rows where `column`'s value satisfies `predicate`.
pub fn filter(
    table: &Table,
    column: &str,
    predicate: impl Fn(&Value) -> bool,
) -> Result<Table> {
    let col = table.column(column)?.clone();
    Ok(filter_rows(table, |i| predicate(&col.get(i))))
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending (nulls last).
    Ascending,
    /// Descending (nulls last).
    Descending,
}

/// Stable sort by one column. Nulls sort last in either direction; string
/// columns sort lexicographically, numeric columns numerically.
pub fn sort_by(table: &Table, column: &str, order: Order) -> Result<Table> {
    let col = table.column(column)?;
    let mut idx: Vec<usize> = (0..table.n_rows()).collect();
    let key = |i: usize| -> (bool, Option<f64>, Option<String>) {
        let v = col.get(i);
        match &v {
            Value::Null => (true, None, None),
            Value::Str(s) => (false, None, Some(s.to_string())),
            _ => (false, v.as_f64(), None),
        }
    };
    idx.sort_by(|&a, &b| {
        let (na, fa, sa) = key(a);
        let (nb, fb, sb) = key(b);
        // Nulls last regardless of direction.
        let ord = na
            .cmp(&nb)
            .then_with(|| match (&fa, &fb) {
                // total_cmp: NaN cells must not panic the sort.
                (Some(x), Some(y)) => x.total_cmp(y),
                _ => std::cmp::Ordering::Equal,
            })
            .then_with(|| sa.cmp(&sb));
        if order == Order::Descending && !na && !nb {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(table.take(&idx))
}

/// An aggregate function over a group's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count of the group (ignores the target column's nulls).
    Count,
    /// Sum of the numeric view.
    Sum,
    /// Mean of the numeric view.
    Mean,
    /// Minimum of the numeric view.
    Min,
    /// Maximum of the numeric view.
    Max,
    /// First non-null value in row order.
    First,
}

/// Group `table` by `key_column` and compute one aggregate per `(column,
/// aggregate)` pair. Output columns are named `{column}_{agg}` (and the key
/// keeps its name). Null keys form their own group, keyed first.
pub fn group_by(
    table: &Table,
    key_column: &str,
    aggregates: &[(&str, Aggregate)],
) -> Result<Table> {
    let key_col = table.column(key_column)?;
    // Group rows by key, deterministic order by first appearance.
    let mut order: Vec<Option<Key>> = Vec::new();
    let mut groups: HashMap<Option<Key>, Vec<usize>> = HashMap::new();
    for i in 0..table.n_rows() {
        let k = key_col.key(i);
        let entry = groups.entry(k.clone()).or_default();
        if entry.is_empty() {
            order.push(k);
        }
        entry.push(i);
    }

    // Key output column: representative value per group.
    let mut key_out = Column::empty(key_col.dtype());
    for k in &order {
        let rows = &groups[k];
        key_out.push(key_col.get(rows[0]))?;
    }
    let mut cols: Vec<(String, Column)> = vec![(key_column.to_string(), key_out)];

    for &(cname, agg) in aggregates {
        let col = table.column(cname)?;
        let mut out: Vec<Option<f64>> = Vec::with_capacity(order.len());
        let mut first_out: Vec<Value> = Vec::with_capacity(order.len());
        for k in &order {
            let rows = &groups[k];
            let values: Vec<f64> = rows.iter().filter_map(|&i| col.get_f64(i)).collect();
            match agg {
                Aggregate::Count => out.push(Some(values.len() as f64)),
                Aggregate::Sum => out.push(Some(values.iter().sum())),
                Aggregate::Mean => out.push(if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }),
                Aggregate::Min => {
                    out.push(values.iter().copied().fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.min(v)))
                    }))
                }
                Aggregate::Max => {
                    out.push(values.iter().copied().fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.max(v)))
                    }))
                }
                Aggregate::First => {
                    let v = rows
                        .iter()
                        .map(|&i| col.get(i))
                        .find(|v| !v.is_null())
                        .unwrap_or(Value::Null);
                    first_out.push(v);
                }
            }
        }
        let suffix = match agg {
            Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Mean => "mean",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
            Aggregate::First => "first",
        };
        let out_name = format!("{cname}_{suffix}");
        let out_col = if agg == Aggregate::First {
            let mut c = Column::empty(col.dtype());
            for v in first_out {
                c.push(v)?;
            }
            c
        } else {
            Column::from_floats(out)
        };
        cols.push((out_name, out_col));
    }
    Table::new(format!("{}_by_{key_column}", table.name()), cols)
}

/// Vertically concatenate tables with identical schemas (names and types,
/// in order).
pub fn concat(tables: &[&Table]) -> Result<Table> {
    let Some(first) = tables.first() else {
        return Ok(Table::empty("concat"));
    };
    let schema = first.schema();
    for t in &tables[1..] {
        if t.schema() != schema {
            return Err(DataError::Invalid(format!(
                "schema mismatch: `{}` differs from `{}`",
                t.name(),
                first.name()
            )));
        }
    }
    let mut cols: Vec<(String, Column)> = Vec::with_capacity(first.n_cols());
    for c in 0..first.n_cols() {
        let field = first.field_at(c);
        let mut col = Column::with_capacity(
            field.dtype,
            tables.iter().map(|t| t.n_rows()).sum(),
        );
        for t in tables {
            let src = t.column_at(c);
            for i in 0..src.len() {
                col.push(src.get(i))?;
            }
        }
        cols.push((field.name.clone(), col));
    }
    Table::new(first.name().to_string(), cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("g", Column::from_strs([Some("a"), Some("b"), Some("a"), None, Some("b")])),
                ("x", Column::from_floats([Some(1.0), Some(2.0), Some(3.0), Some(4.0), None])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_by_value() {
        let t = filter(&table(), "g", |v| *v == Value::str("a")).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value("x", 1).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn filter_rows_by_index() {
        let t = filter_rows(&table(), |i| i % 2 == 0);
        assert_eq!(t.n_rows(), 3);
    }

    #[test]
    fn sort_ascending_nulls_last() {
        let t = sort_by(&table(), "x", Order::Ascending).unwrap();
        assert_eq!(t.value("x", 0).unwrap(), Value::Float(1.0));
        assert_eq!(t.value("x", 3).unwrap(), Value::Float(4.0));
        assert_eq!(t.value("x", 4).unwrap(), Value::Null);
    }

    #[test]
    fn sort_descending_nulls_still_last() {
        let t = sort_by(&table(), "x", Order::Descending).unwrap();
        assert_eq!(t.value("x", 0).unwrap(), Value::Float(4.0));
        assert_eq!(t.value("x", 4).unwrap(), Value::Null);
    }

    #[test]
    fn sort_strings_lexicographically() {
        let t = sort_by(&table(), "g", Order::Ascending).unwrap();
        assert_eq!(t.value("g", 0).unwrap(), Value::str("a"));
        assert_eq!(t.value("g", 4).unwrap(), Value::Null);
    }

    #[test]
    fn group_by_aggregates() {
        let g = group_by(
            &table(),
            "g",
            &[("x", Aggregate::Sum), ("x", Aggregate::Count), ("x", Aggregate::Mean)],
        )
        .unwrap();
        assert_eq!(g.n_rows(), 3); // a, b, null
        // Group "a": rows 0,2 → sum 4.
        assert_eq!(g.value("x_sum", 0).unwrap(), Value::Float(4.0));
        assert_eq!(g.value("x_count", 0).unwrap(), Value::Float(2.0));
        assert_eq!(g.value("x_mean", 0).unwrap(), Value::Float(2.0));
        // Group "b": rows 1,4 → x = {2.0, null} → count 1.
        assert_eq!(g.value("x_count", 1).unwrap(), Value::Float(1.0));
        assert_eq!(g.value("x_sum", 1).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn group_by_min_max_first() {
        let g = group_by(
            &table(),
            "g",
            &[("x", Aggregate::Min), ("x", Aggregate::Max), ("x", Aggregate::First)],
        )
        .unwrap();
        assert_eq!(g.value("x_min", 0).unwrap(), Value::Float(1.0));
        assert_eq!(g.value("x_max", 0).unwrap(), Value::Float(3.0));
        assert_eq!(g.value("x_first", 0).unwrap(), Value::Float(1.0));
        // Group "b"'s mean over {2.0} only.
        assert_eq!(g.value("x_max", 1).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn group_null_keys_form_a_group() {
        let g = group_by(&table(), "g", &[("x", Aggregate::Count)]).unwrap();
        // Third group is the null key (row 3).
        assert_eq!(g.value("g", 2).unwrap(), Value::Null);
        assert_eq!(g.value("x_count", 2).unwrap(), Value::Float(1.0));
    }

    #[test]
    fn concat_stacks_rows() {
        let t = table();
        let c = concat(&[&t, &t]).unwrap();
        assert_eq!(c.n_rows(), 10);
        assert_eq!(c.n_cols(), 2);
        assert_eq!(c.value("x", 5).unwrap(), Value::Float(1.0));
    }

    #[test]
    fn concat_schema_mismatch_rejected() {
        let t = table();
        let other = t.rename_column("x", "y").unwrap();
        assert!(concat(&[&t, &other]).is_err());
    }

    #[test]
    fn concat_empty_is_empty() {
        let c = concat(&[]).unwrap();
        assert_eq!(c.n_rows(), 0);
    }
}
