//! Sampling: stratified sampling and train/test splitting.
//!
//! AutoFeat stratified-samples the base table before feature selection (§VI,
//! "From Ranked Paths to Training ML Models") and uses an 80/20 train/test
//! split for evaluation (§V-B).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::error::{DataError, Result};
use crate::table::Table;
use crate::value::Key;

/// Group row indices by the label column's key; rows with a null label form
/// their own stratum keyed separately.
fn strata(table: &Table, label: &str) -> Result<Vec<Vec<usize>>> {
    let col = table.column(label)?;
    let mut groups: HashMap<Option<Key>, Vec<usize>> = HashMap::new();
    for row in 0..col.len() {
        groups.entry(col.key(row)).or_default().push(row);
    }
    let mut v: Vec<(Option<Key>, Vec<usize>)> = groups.into_iter().collect();
    // Deterministic order: by first row index of each stratum.
    v.sort_by_key(|(_, rows)| rows[0]);
    Ok(v.into_iter().map(|(_, rows)| rows).collect())
}

/// Stratified sample of approximately `frac * n_rows` rows, preserving the
/// label distribution. Each stratum contributes `ceil(frac * |stratum|)`
/// rows so small classes never vanish.
pub fn stratified_sample(
    table: &Table,
    label: &str,
    frac: f64,
    rng: &mut StdRng,
) -> Result<Table> {
    if !(0.0..=1.0).contains(&frac) {
        return Err(DataError::Invalid(format!("frac must be in [0,1], got {frac}")));
    }
    let mut picked: Vec<usize> = Vec::new();
    for mut rows in strata(table, label)? {
        let k = ((frac * rows.len() as f64).ceil() as usize).min(rows.len());
        rows.shuffle(rng);
        picked.extend_from_slice(&rows[..k]);
    }
    picked.sort_unstable();
    Ok(table.take(&picked))
}

/// A train/test split of a table.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training partition.
    pub train: Table,
    /// Test partition.
    pub test: Table,
}

/// Stratified train/test split: `test_frac` of each label stratum goes to
/// the test set (at least one row per stratum stays in train when the
/// stratum has ≥ 2 rows).
pub fn train_test_split(
    table: &Table,
    label: &str,
    test_frac: f64,
    rng: &mut StdRng,
) -> Result<Split> {
    if !(0.0..1.0).contains(&test_frac) {
        return Err(DataError::Invalid(format!(
            "test_frac must be in [0,1), got {test_frac}"
        )));
    }
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for mut rows in strata(table, label)? {
        rows.shuffle(rng);
        let mut k = (test_frac * rows.len() as f64).round() as usize;
        if k >= rows.len() && rows.len() > 1 {
            k = rows.len() - 1;
        }
        test_idx.extend_from_slice(&rows[..k]);
        train_idx.extend_from_slice(&rows[k..]);
    }
    train_idx.sort_unstable();
    test_idx.sort_unstable();
    Ok(Split { train: table.take(&train_idx), test: table.take(&test_idx) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn table(n_pos: usize, n_neg: usize) -> Table {
        let labels: Vec<Option<bool>> = (0..n_pos)
            .map(|_| Some(true))
            .chain((0..n_neg).map(|_| Some(false)))
            .collect();
        let ids: Vec<Option<i64>> = (0..(n_pos + n_neg) as i64).map(Some).collect();
        Table::new(
            "t",
            vec![("id", Column::from_ints(ids)), ("y", Column::from_bools(labels))],
        )
        .unwrap()
    }

    fn count_true(t: &Table) -> usize {
        let c = t.column("y").unwrap();
        (0..c.len()).filter(|&i| c.get_f64(i) == Some(1.0)).count()
    }

    #[test]
    fn stratified_sample_preserves_ratio() {
        let t = table(80, 20);
        let s = stratified_sample(&t, "y", 0.5, &mut rng()).unwrap();
        assert_eq!(s.n_rows(), 50);
        assert_eq!(count_true(&s), 40);
    }

    #[test]
    fn small_strata_never_vanish() {
        let t = table(99, 1);
        let s = stratified_sample(&t, "y", 0.1, &mut rng()).unwrap();
        assert!(count_true(&s) >= 10);
        assert!(s.n_rows() > count_true(&s)); // the lone negative survives
    }

    #[test]
    fn frac_one_returns_everything() {
        let t = table(5, 5);
        let s = stratified_sample(&t, "y", 1.0, &mut rng()).unwrap();
        assert_eq!(s.n_rows(), 10);
    }

    #[test]
    fn invalid_frac_rejected() {
        let t = table(5, 5);
        assert!(stratified_sample(&t, "y", 1.5, &mut rng()).is_err());
        assert!(stratified_sample(&t, "y", -0.1, &mut rng()).is_err());
    }

    #[test]
    fn split_partitions_all_rows() {
        let t = table(60, 40);
        let s = train_test_split(&t, "y", 0.2, &mut rng()).unwrap();
        assert_eq!(s.train.n_rows() + s.test.n_rows(), 100);
        assert_eq!(s.test.n_rows(), 20);
        assert_eq!(count_true(&s.test), 12);
    }

    #[test]
    fn split_is_disjoint() {
        let t = table(30, 30);
        let s = train_test_split(&t, "y", 0.25, &mut rng()).unwrap();
        let ids = |tab: &Table| -> Vec<i64> {
            let c = tab.column("id").unwrap();
            (0..c.len()).map(|i| c.get_f64(i).unwrap() as i64).collect()
        };
        let train_ids = ids(&s.train);
        for id in ids(&s.test) {
            assert!(!train_ids.contains(&id));
        }
    }

    #[test]
    fn tiny_strata_keep_a_train_row() {
        let t = table(2, 2);
        let s = train_test_split(&t, "y", 0.9, &mut rng()).unwrap();
        assert!(count_true(&s.train) >= 1);
    }

    #[test]
    fn split_deterministic_per_seed() {
        let t = table(50, 50);
        let a = train_test_split(&t, "y", 0.2, &mut rng()).unwrap();
        let b = train_test_split(&t, "y", 0.2, &mut rng()).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn missing_label_errors() {
        let t = table(3, 3);
        assert!(train_test_split(&t, "nope", 0.2, &mut rng()).is_err());
    }
}
